//! Offline stand-in for `parking_lot`.
//!
//! Wraps `std::sync` locks behind parking_lot's panic-free API: `lock()`,
//! `read()`, and `write()` return guards directly and ignore poisoning (a
//! panicking holder does not wedge later acquisitions — matching
//! parking_lot, whose locks have no poisoning at all).
//!
//! Delete `vendor/` and the `[patch.crates-io]` section in the workspace
//! `Cargo.toml` to switch back to the real crate when a registry is
//! reachable.

use std::sync;

/// Guard for shared access to a [`RwLock`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Guard for exclusive access to a [`RwLock`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;
/// Guard for a [`Mutex`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

/// Reader-writer lock with parking_lot's non-poisoning interface.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Wraps `value`.
    pub fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared access, ignoring poison.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires exclusive access, ignoring poison.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// Mutex with parking_lot's non-poisoning interface.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Wraps `value`.
    pub fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consumes the lock, returning the value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, ignoring poison.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}
