//! Offline stand-in for `proptest`.
//!
//! Implements the subset of the proptest API this workspace uses —
//! `proptest!`, `prop_assert*!`, `prop_oneof!`, `Just`, `prop_map`, numeric
//! range strategies, `prop::collection::{vec, hash_set}`, `any::<T>()`, and
//! `ProptestConfig::with_cases` — as a deterministic seeded-random harness.
//! Inputs derive from a per-test seed (a hash of the test's module path and
//! name mixed with the case index), so failures are reproducible run to run.
//! There is no shrinking: a failing case reports its seed and re-panics.
//!
//! Delete `vendor/` and the `[patch.crates-io]` section in the workspace
//! `Cargo.toml` to switch back to the real crate when a registry is
//! reachable.

pub mod rng {
    //! Deterministic generator (SplitMix64) backing every strategy.

    /// Test-case RNG handed to [`crate::strategy::Strategy::generate`].
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds the generator.
        pub fn new(seed: u64) -> Self {
            TestRng {
                state: seed ^ 0x9E37_79B9_7F4A_7C15,
            }
        }

        /// Next 64 random bits (SplitMix64).
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform value in `[0, bound)`; returns 0 for `bound == 0`.
        pub fn below(&mut self, bound: u64) -> u64 {
            if bound == 0 {
                0
            } else {
                self.next_u64() % bound
            }
        }

        /// Uniform float in `[0, 1)`.
        pub fn uniform(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    /// FNV-1a hash used to derive a stable per-test base seed.
    pub fn fnv1a(s: &str) -> u64 {
        let mut h: u64 = 0xCBF2_9CE4_8422_2325;
        for b in s.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        h
    }
}

pub mod strategy {
    //! Value-generation strategies (no shrinking).

    use crate::rng::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// Generates values of an associated type from a seeded RNG.
    pub trait Strategy {
        /// The type of value this strategy produces.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f` (mirror of proptest's
        /// `prop_map`).
        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { inner: self, f }
        }

        /// Erases the strategy type.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// Type-erased strategy.
    pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

    impl<S: Strategy + ?Sized> Strategy for Box<S> {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (**self).generate(rng)
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (**self).generate(rng)
        }
    }

    /// Always produces a clone of the wrapped value.
    #[derive(Clone, Copy, Debug)]
    pub struct Just<T>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Output of [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, U, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> U,
    {
        type Value = U;
        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Uniform choice between alternative strategies (`prop_oneof!`).
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// Builds a union; panics if `options` is empty.
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let idx = rng.below(self.options.len() as u64) as usize;
            self.options[idx].generate(rng)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as u64).wrapping_sub(self.start as u64);
                    self.start.wrapping_add(rng.below(span) as $t)
                }
            }

            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                    if span == 0 {
                        // Full-width inclusive range.
                        rng.next_u64() as $t
                    } else {
                        lo.wrapping_add(rng.below(span) as $t)
                    }
                }
            }
        )*};
    }

    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            self.start + rng.uniform() * (self.end - self.start)
        }
    }

    impl Strategy for Range<f32> {
        type Value = f32;
        fn generate(&self, rng: &mut TestRng) -> f32 {
            self.start + (rng.uniform() as f32) * (self.end - self.start)
        }
    }

    macro_rules! tuple_strategy {
        ($(($($s:ident / $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }

    tuple_strategy! {
        (A / 0)
        (A / 0, B / 1)
        (A / 0, B / 1, C / 2)
        (A / 0, B / 1, C / 2, D / 3)
    }
}

pub mod arbitrary {
    //! `any::<T>()` support for primitive types.

    use crate::rng::TestRng;
    use crate::strategy::Strategy;
    use std::marker::PhantomData;

    /// Types with a canonical full-domain strategy.
    pub trait Arbitrary: Sized {
        /// Draws an arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! arb_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            rng.uniform()
        }
    }

    /// Strategy returned by [`any`].
    #[derive(Clone, Copy, Debug)]
    pub struct Any<A>(PhantomData<A>);

    impl<A: Arbitrary> Strategy for Any<A> {
        type Value = A;
        fn generate(&self, rng: &mut TestRng) -> A {
            A::arbitrary(rng)
        }
    }

    /// Full-domain strategy for `A` (mirror of `proptest::arbitrary::any`).
    pub fn any<A: Arbitrary>() -> Any<A> {
        Any(PhantomData)
    }
}

pub mod collection {
    //! Collection strategies (`prop::collection::{vec, hash_set}`).

    use crate::rng::TestRng;
    use crate::strategy::Strategy;
    use std::collections::HashSet;
    use std::hash::Hash;
    use std::ops::{Range, RangeInclusive};

    /// Element-count range for collection strategies.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl SizeRange {
        fn sample(&self, rng: &mut TestRng) -> usize {
            let span = (self.hi - self.lo).max(1) as u64;
            self.lo + rng.below(span) as usize
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            SizeRange {
                lo: r.start,
                hi: r.end.max(r.start + 1),
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: r.end() + 1,
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    /// Strategy for `Vec<S::Value>`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.sample(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// `Vec` strategy with an element strategy and a length range.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// Strategy for `HashSet<S::Value>`.
    pub struct HashSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S> Strategy for HashSetStrategy<S>
    where
        S: Strategy,
        S::Value: Eq + Hash,
    {
        type Value = HashSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> HashSet<S::Value> {
            let target = self.size.sample(rng);
            let mut out = HashSet::with_capacity(target);
            // Bounded attempts: a narrow element domain may not hold `target`
            // distinct values.
            for _ in 0..target.saturating_mul(8).max(8) {
                if out.len() >= target {
                    break;
                }
                out.insert(self.element.generate(rng));
            }
            out
        }
    }

    /// `HashSet` strategy with an element strategy and a size range.
    pub fn hash_set<S>(element: S, size: impl Into<SizeRange>) -> HashSetStrategy<S>
    where
        S: Strategy,
        S::Value: Eq + Hash,
    {
        HashSetStrategy {
            element,
            size: size.into(),
        }
    }
}

pub mod config {
    //! Run configuration (`ProptestConfig`).

    /// Mirror of `proptest::test_runner::Config`: only `cases` matters here.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of random cases each test runs.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config running `cases` random cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 32 }
        }
    }
}

pub mod prelude {
    //! One-stop import mirroring `proptest::prelude`.

    pub use crate as prop;
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::config::ProptestConfig;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Defines `#[test]` functions whose arguments are drawn from strategies.
///
/// Supports the `#![proptest_config(...)]` header and `name in strategy`
/// argument lists. Each case's inputs derive deterministically from the
/// test name and case index; a failing case reports its base seed before
/// re-panicking.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { config = $crate::config::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = $cfg:expr;
     $($(#[$meta:meta])*
       fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config = $cfg;
                let __base =
                    $crate::rng::fnv1a(concat!(module_path!(), "::", stringify!($name)));
                for __case in 0..__config.cases {
                    let mut __rng = $crate::rng::TestRng::new(
                        __base ^ u64::from(__case).wrapping_mul(0x9E37_79B9_7F4A_7C15),
                    );
                    $(let $arg =
                        $crate::strategy::Strategy::generate(&($strat), &mut __rng);)*
                    let __outcome = ::std::panic::catch_unwind(
                        ::std::panic::AssertUnwindSafe(|| $body),
                    );
                    if let ::std::result::Result::Err(__panic) = __outcome {
                        eprintln!(
                            "[proptest stub] {} failed on case {}/{} (base seed {:#x})",
                            stringify!($name),
                            __case + 1,
                            __config.cases,
                            __base,
                        );
                        ::std::panic::resume_unwind(__panic);
                    }
                }
            }
        )*
    };
}

/// `assert!` under proptest's spelling.
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// `assert_eq!` under proptest's spelling.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// `assert_ne!` under proptest's spelling.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

/// Uniform choice among strategies producing a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(::std::boxed::Box::new($s) as $crate::strategy::BoxedStrategy<_>),+
        ])
    };
}
