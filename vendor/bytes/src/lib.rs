//! Offline stand-in for `bytes`.
//!
//! Implements the subset `ra-workloads` uses for trace encode/decode:
//! big-endian `get_*`/`put_*` through `Buf`/`BufMut`, `BytesMut::freeze`,
//! and `Bytes`/`BytesMut` deref to `[u8]`. Backed by plain `Vec<u8>` — no
//! refcounted zero-copy splitting.
//!
//! Delete `vendor/` and the `[patch.crates-io]` section in the workspace
//! `Cargo.toml` to switch back to the real crate when a registry is
//! reachable.

use std::ops::Deref;

/// Read-side cursor over a byte source (big-endian, like real `bytes`).
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// Reads `n` bytes into `dst`; panics if not enough remain.
    fn copy_to_slice(&mut self, dst: &mut [u8]);

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    /// Reads a big-endian u32.
    fn get_u32(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_be_bytes(b)
    }

    /// Reads a big-endian u64.
    fn get_u64(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_be_bytes(b)
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(
            self.len() >= dst.len(),
            "buffer underflow: {} bytes remaining, {} requested",
            self.len(),
            dst.len()
        );
        let (head, tail) = self.split_at(dst.len());
        dst.copy_from_slice(head);
        *self = tail;
    }
}

/// Write-side sink for bytes (big-endian, like real `bytes`).
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a big-endian u32.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian u64.
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

/// Immutable byte buffer.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Bytes {
    inner: Vec<u8>,
}

impl Bytes {
    /// Empty buffer.
    pub fn new() -> Self {
        Bytes::default()
    }

    /// Buffer length.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.inner
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.inner
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(inner: Vec<u8>) -> Self {
        Bytes { inner }
    }
}

/// Growable byte buffer.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BytesMut {
    inner: Vec<u8>,
}

impl BytesMut {
    /// Empty buffer.
    pub fn new() -> Self {
        BytesMut::default()
    }

    /// Empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            inner: Vec::with_capacity(cap),
        }
    }

    /// Buffer length.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// Converts into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes { inner: self.inner }
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.inner
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.inner
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.inner.extend_from_slice(src);
    }
}
