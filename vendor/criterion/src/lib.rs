//! Offline stand-in for `criterion`.
//!
//! Provides the API surface the `ra-bench` benches use — `Criterion`,
//! `benchmark_group`, `bench_with_input`, `bench_function`, `BenchmarkId`,
//! `black_box`, and the `criterion_group!`/`criterion_main!` macros — as a
//! small wall-clock harness: each benchmark runs a fixed number of timed
//! iterations and prints mean time per iteration. No statistics, plots, or
//! comparison to baselines.
//!
//! Delete `vendor/` and the `[patch.crates-io]` section in the workspace
//! `Cargo.toml` to switch back to the real crate when a registry is
//! reachable.

use std::fmt::Display;
use std::time::Instant;

/// Number of timed iterations per benchmark (after one warm-up call).
const DEFAULT_ITERS: u32 = 10;

/// Prevents the optimizer from discarding a value.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Benchmark identifier: function name plus a parameter label.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Id from a function name and a displayed parameter.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", function.into(), parameter),
        }
    }

    /// Id from a displayed parameter only.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { label: s.into() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { label: s }
    }
}

/// Runs a routine a fixed number of times and records the mean.
pub struct Bencher {
    iters: u32,
}

impl Bencher {
    /// Times `routine`, printing nothing; the caller prints the result.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        black_box(routine()); // warm-up
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        let per_iter = start.elapsed() / self.iters;
        println!("    {:>12?}/iter over {} iters", per_iter, self.iters);
    }
}

/// Top-level harness handle.
#[derive(Default)]
pub struct Criterion {
    sample_size: Option<u32>,
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        println!("group {}", name.into());
        BenchmarkGroup {
            parent: self,
            sample_size: None,
        }
    }

    /// Runs a single named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        println!("  bench {name}");
        let mut b = Bencher {
            iters: self.sample_size.unwrap_or(DEFAULT_ITERS),
        };
        f(&mut b);
        self
    }
}

/// A named group of benchmarks sharing settings.
pub struct BenchmarkGroup<'a> {
    parent: &'a mut Criterion,
    sample_size: Option<u32>,
}

impl BenchmarkGroup<'_> {
    /// Overrides the per-benchmark iteration count.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n as u32);
        self
    }

    fn run_one<F: FnMut(&mut Bencher)>(&mut self, label: &str, mut f: F) {
        println!("  bench {label}");
        let mut b = Bencher {
            iters: self
                .sample_size
                .or(self.parent.sample_size)
                .unwrap_or(DEFAULT_ITERS),
        };
        f(&mut b);
    }

    /// Runs a benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.run_one(&id.label.clone(), |b| f(b, input));
        self
    }

    /// Runs a named benchmark inside the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: F,
    ) -> &mut Self {
        self.run_one(&id.into().label.clone(), |b| f(b));
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Declares a bench group function, as in real criterion.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench `main` that runs each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
