//! Offline stand-in for `serde`.
//!
//! The workspace only ever *derives* `Serialize`/`Deserialize`; nothing
//! serializes at runtime (there is no serializer backend in the dependency
//! tree). This stub keeps the trait names and derive syntax compiling without
//! network access: the traits are markers with blanket impls, and the derive
//! macros (re-exported from the stub `serde_derive`) expand to nothing.
//!
//! Delete `vendor/` and the `[patch.crates-io]` section in the workspace
//! `Cargo.toml` to switch back to the real crates when a registry is
//! reachable.

/// Marker trait standing in for `serde::Serialize`.
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker trait standing in for `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}
impl<'de, T> Deserialize<'de> for T {}

/// Marker trait standing in for `serde::de::DeserializeOwned`.
pub trait DeserializeOwned: for<'de> Deserialize<'de> {}
impl<T> DeserializeOwned for T {}

/// Mirror of `serde::de` far enough for common bounds.
pub mod de {
    pub use crate::{Deserialize, DeserializeOwned};
}

/// Mirror of `serde::ser` far enough for common bounds.
pub mod ser {
    pub use crate::Serialize;
}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
