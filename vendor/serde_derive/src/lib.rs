//! Offline stand-in for `serde_derive`.
//!
//! The workspace derives `Serialize`/`Deserialize` on stats and config types
//! but never actually serializes anything (no `serde_json`-style backend is a
//! dependency). The real crate is unavailable in the offline build
//! environment, so this stub accepts the same derive syntax — including
//! `#[serde(...)]` helper attributes — and expands to nothing; the companion
//! `serde` stub provides blanket trait impls so bounds still hold.

use proc_macro::TokenStream;

/// Accepts `#[derive(Serialize)]` and expands to nothing.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Accepts `#[derive(Deserialize)]` and expands to nothing.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
