//! Reciprocal abstraction for computer architecture co-simulation.
//!
//! Umbrella crate re-exporting the workspace, matching the paper's system
//! decomposition (ISPASS 2015, Moeng/Jones/Melhem — see README.md and
//! DESIGN.md):
//!
//! * [`cosim`] — the contribution: the reciprocal-abstraction framework;
//! * [`noc`] — cycle-level virtual-channel NoC simulator;
//! * [`fullsys`] — coarse-grain tiled-CMP full-system simulator;
//! * [`netmodel`] — abstract latency models, including the calibrated one;
//! * [`gpu`] — data-parallel execution engine (GPU-coprocessor stand-in);
//! * [`workloads`] — application profiles and trace record/replay;
//! * [`obs`] — zero-cost-when-disabled observability (tracing, metrics,
//!   profiling spans);
//! * [`serve`] — concurrent simulation-job service (canonical job specs,
//!   result memoization, bounded admission, line-JSON wire protocol);
//! * [`sim`] — shared primitives.
//!
//! # Example
//!
//! ```
//! use reciprocal_abstraction::cosim::{ModeSpec, RunSpec, Target};
//! use reciprocal_abstraction::obs::{ObsSink, RingRecorder};
//! use reciprocal_abstraction::workloads::AppProfile;
//!
//! let target = Target::cmp(4, 4);
//! let app = AppProfile::water();
//! let (sink, recorder) = ObsSink::attach(RingRecorder::new(1_024));
//! let result = RunSpec::new(&target, &app)
//!     .mode(ModeSpec::Reciprocal { quantum: 500, workers: 0, pipeline: false })
//!     .instructions(100)
//!     .budget(200_000)
//!     .seed(1)
//!     .recorder(sink)
//!     .run()?;
//! assert!(result.cycles > 0);
//! assert!(!recorder.lock().unwrap().is_empty(), "the run emitted events");
//! # Ok::<(), reciprocal_abstraction::sim::SimError>(())
//! ```

pub use ra_cosim as cosim;
pub use ra_fullsys as fullsys;
pub use ra_gpu as gpu;
pub use ra_netmodel as netmodel;
pub use ra_noc as noc;
pub use ra_obs as obs;
pub use ra_serve as serve;
pub use ra_sim as sim;
pub use ra_workloads as workloads;
