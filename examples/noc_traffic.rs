//! Isolated cycle-level NoC study: the latency-vs-load curve under
//! synthetic traffic patterns — the classic in-vacuum methodology the
//! paper's experiment F1 shows to be misleading for real workloads.
//!
//! ```text
//! cargo run --release --example noc_traffic
//! ```

use reciprocal_abstraction::noc::{
    InjectionProcess, NocConfig, NocNetwork, TrafficGen, TrafficPattern,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("8x8 mesh, 4 VCs x 4 flits, XY routing; 20k warm cycles per point\n");
    for (name, pattern) in [
        ("uniform", TrafficPattern::Uniform),
        ("transpose", TrafficPattern::Transpose),
        ("tornado", TrafficPattern::Tornado),
    ] {
        println!("pattern: {name}");
        println!("{:>8} {:>12} {:>12}", "rate", "avg-lat", "thru(f/n/c)");
        for rate in [0.005, 0.02, 0.05, 0.10, 0.20, 0.30] {
            let mut net = NocNetwork::new(NocConfig::new(8, 8))?;
            let mut gen = TrafficGen::new(
                8,
                8,
                pattern.clone(),
                InjectionProcess::Bernoulli { rate },
                1,
            );
            gen.run(&mut net, 20_000);
            let s = net.stats();
            println!(
                "{:>8.3} {:>12.2} {:>12.4}",
                rate,
                s.avg_latency(),
                s.throughput(64)
            );
        }
        println!();
    }
    println!("latency climbs towards saturation as offered load approaches capacity");
    Ok(())
}
