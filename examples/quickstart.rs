//! Quickstart: run one workload under the full mode ladder and compare.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use reciprocal_abstraction::cosim::{format_row, percent_error, ModeSpec, RunSpec, Target};
use reciprocal_abstraction::workloads::AppProfile;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let target = Target::preset(64).expect("64-core preset");
    let app = AppProfile::radix();
    println!("{}", target.config_table());
    println!("running '{}' under four network abstractions...\n", app.name);

    let instructions = 800;
    let budget = 10_000_000;
    let run = |mode: ModeSpec| {
        RunSpec::new(&target, &app)
            .mode(mode)
            .instructions(instructions)
            .budget(budget)
            .seed(1)
            .run()
    };
    let truth = run(ModeSpec::Lockstep)?;
    let modes = [
        ModeSpec::Fixed(15),
        ModeSpec::Hop,
        ModeSpec::Reciprocal { quantum: 2_000, workers: 0, pipeline: false },
    ];
    println!("{}", format_row(&truth));
    for mode in modes {
        let r = run(mode)?;
        println!(
            "{}   latency error vs truth: {:.1}%",
            format_row(&r),
            percent_error(r.avg_latency(), truth.avg_latency())
        );
    }
    println!("\nreciprocal abstraction should sit closest to the lockstep truth");
    Ok(())
}
