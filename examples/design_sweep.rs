//! Design exploration with the full system in the loop: how many virtual
//! channels does the router actually need, judged by *target runtime*
//! rather than isolated NoC latency? This is the workflow reciprocal
//! abstraction enables (paper experiment F8 in miniature).
//!
//! ```text
//! cargo run --release --example design_sweep
//! ```

use reciprocal_abstraction::cosim::{ModeSpec, RunSpec, Target};
use reciprocal_abstraction::workloads::AppProfile;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let app = AppProfile::ocean();
    println!("sweeping VC count under co-simulation, workload '{}'\n", app.name);
    println!("{:>4} {:>14} {:>12} {:>8}", "VCs", "runtime (cyc)", "avg-lat", "ipc");
    for vcs in [1u32, 2, 4, 8] {
        let mut target = Target::cmp(8, 8);
        target.noc = target.noc.with_vcs_per_vnet(vcs);
        let r = RunSpec::new(&target, &app)
            .mode(ModeSpec::Reciprocal { quantum: 2_000, workers: 0, pipeline: false })
            .instructions(600)
            .budget(10_000_000)
            .seed(3)
            .run()?;
        println!("{:>4} {:>14} {:>12.2} {:>8.2}", vcs, r.cycles, r.avg_latency(), r.ipc);
    }
    println!("\ndiminishing returns past a few VCs: the full system tells you when to stop");
    Ok(())
}
