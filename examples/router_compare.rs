//! Compare two detailed router architectures — buffered virtual-channel vs
//! bufferless deflection — under the same full-system workload, including
//! the energy view. The "design choices in the detailed component model"
//! workflow from the paper, as a runnable example.
//!
//! ```text
//! cargo run --release --example router_compare
//! ```

use reciprocal_abstraction::fullsys::{FullSysConfig, FullSystem};
use reciprocal_abstraction::noc::{
    DeflectionConfig, DeflectionNetwork, EnergyParams, NocConfig, NocNetwork,
};
use reciprocal_abstraction::workloads::{AppProfile, AppWorkload};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let app = AppProfile::radix();
    let instructions = 800;
    println!("workload '{}', 64-core lockstep co-simulation\n", app.name);

    // Buffered VC router.
    let cfg = FullSysConfig::new(8, 8);
    let net = NocNetwork::new(NocConfig::new(8, 8))?;
    let w = AppWorkload::new(app.clone(), 64, 7);
    let mut sys = FullSystem::new(cfg.clone(), net, w)?;
    let vc_cycles = sys.run_until_instructions(instructions, 10_000_000)?;
    let vc = sys.into_network();
    let vc_energy = vc.energy(&EnergyParams::default());

    // Bufferless deflection router.
    let net = DeflectionNetwork::new(DeflectionConfig::new(8, 8))?;
    let w = AppWorkload::new(app.clone(), 64, 7);
    let mut sys = FullSystem::new(cfg, net, w)?;
    let defl_cycles = sys.run_until_instructions(instructions, 10_000_000)?;
    let defl = sys.into_network();

    println!("{:<26} {:>14} {:>14}", "", "VC router", "deflection");
    println!(
        "{:<26} {:>14} {:>14}",
        "target runtime (cycles)", vc_cycles, defl_cycles
    );
    println!(
        "{:<26} {:>14.2} {:>14.2}",
        "avg packet latency",
        vc.stats().avg_latency(),
        defl.stats().avg_latency()
    );
    println!(
        "{:<26} {:>14} {:>14}",
        "messages delivered",
        vc.stats().delivered,
        defl.stats().delivered
    );
    println!(
        "{:<26} {:>14.1} {:>14}",
        "dynamic energy (nJ)",
        vc_energy.dynamic() / 1_000.0,
        "n/a (no buffers)"
    );
    println!(
        "{:<26} {:>14} {:>14}",
        "deflections",
        "-",
        defl.deflections()
    );
    println!("\nthe bufferless router's single-stage pipeline wins latency at this load;");
    println!("its cost shows up as deflections (wasted link traversals) under contention");
    Ok(())
}
