//! Record a workload's operation stream once, write it to disk, then
//! stream-replay the identical stream against two network abstractions —
//! the controlled-comparison methodology behind the accuracy figures,
//! without ever holding the whole trace in memory on the replay side.
//!
//! ```text
//! cargo run --release --example trace_replay
//! ```

use reciprocal_abstraction::fullsys::{FullSysConfig, FullSystem};
use reciprocal_abstraction::netmodel::{AbstractNetwork, FixedLatency, HopLatency, HopMetric};
use reciprocal_abstraction::workloads::{AppProfile, AppWorkload, TraceRecorder, TraceStream};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cfg = FullSysConfig::new(4, 4);
    let metric = HopMetric::Mesh(cfg.shape);

    // 1. Record while running against a hop-latency network.
    let workload = TraceRecorder::new(
        AppWorkload::new(AppProfile::fft(), cfg.tiles(), 7),
        cfg.tiles(),
    );
    let net = AbstractNetwork::new(HopLatency::default(), metric, 16);
    let mut sys = FullSystem::new(cfg.clone(), net, workload)?;
    let cycles_recorded = sys.run_until_instructions(500, 5_000_000)?;
    println!(
        "recorded run : {cycles_recorded} cycles, {} messages",
        sys.stats().total_messages()
    );

    // 2. Persist the trace. (FullSystem::workload() exposes the recorder
    // by reference; write_to serializes its log in the RATR format.)
    let path = std::env::temp_dir().join(format!("ra-example-{}.ratr", std::process::id()));
    sys.workload().write_to(&path)?;
    println!(
        "trace file   : {} ({} bytes)",
        path.display(),
        std::fs::metadata(&path)?.len()
    );

    // 3. Stream-replay the identical op stream against a much slower
    // network. TraceStream reads the file in bounded chunks — replay
    // memory stays constant no matter how long the recorded run was.
    let replay = TraceStream::open(&path)?;
    println!("streamed ops : {} across {} cores", replay.len(), replay.cores());
    let slow_net = AbstractNetwork::new(FixedLatency::new(80), metric, 16);
    let mut sys2 = FullSystem::new(cfg, slow_net, replay)?;
    let cycles_replayed = sys2.run_until_instructions(500, 50_000_000)?;
    println!("replayed run : {cycles_replayed} cycles on an 80-cycle-flat network");
    println!(
        "slowdown     : {:.2}x — same instructions, different network, honest timing feedback",
        cycles_replayed as f64 / cycles_recorded as f64
    );
    std::fs::remove_file(&path)?;
    Ok(())
}
