//! Record a workload's operation stream once, then replay the identical
//! stream against two network abstractions — the controlled-comparison
//! methodology behind the accuracy figures.
//!
//! ```text
//! cargo run --release --example trace_replay
//! ```

use reciprocal_abstraction::fullsys::{FullSysConfig, FullSystem};
use reciprocal_abstraction::netmodel::{AbstractNetwork, FixedLatency, HopLatency, HopMetric};
use reciprocal_abstraction::workloads::{AppProfile, AppWorkload, TraceRecorder, TraceReplay};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cfg = FullSysConfig::new(4, 4);
    let metric = HopMetric::Mesh(cfg.shape);

    // 1. Record while running against a hop-latency network.
    let workload = TraceRecorder::new(
        AppWorkload::new(AppProfile::fft(), cfg.tiles(), 7),
        cfg.tiles(),
    );
    let net = AbstractNetwork::new(HopLatency::default(), metric, 16);
    let mut sys = FullSystem::new(cfg.clone(), net, workload)?;
    let cycles_recorded = sys.run_until_instructions(500, 5_000_000)?;
    let trace_bytes = {
        let stats = sys.stats();
        println!(
            "recorded run : {cycles_recorded} cycles, {} messages",
            stats.total_messages()
        );
        // Reach into the system to serialize the recorder's log.
        // (FullSystem::workload() exposes the workload by reference.)
        sys.workload().to_bytes()
    };
    println!("trace size   : {} bytes", trace_bytes.len());

    // 2. Replay the identical op stream against a much slower network.
    let replay = TraceReplay::from_bytes(&trace_bytes).map_err(std::io::Error::other)?;
    let slow_net = AbstractNetwork::new(FixedLatency::new(80), metric, 16);
    let mut sys2 = FullSystem::new(cfg, slow_net, replay)?;
    let cycles_replayed = sys2.run_until_instructions(500, 50_000_000)?;
    println!("replayed run : {cycles_replayed} cycles on an 80-cycle-flat network");
    println!(
        "slowdown     : {:.2}x — same instructions, different network, honest timing feedback",
        cycles_replayed as f64 / cycles_recorded as f64
    );
    Ok(())
}
