//! Observability layer for the co-simulation stack: events, metrics, and
//! wall-clock profiling spans, **zero-cost when disabled**.
//!
//! The paper's claims are time-series phenomena — drift between
//! calibrations, quantum-boundary exchanges, degraded windows — but the
//! final [`CouplerStats`]-style snapshots collapse them to one number. This
//! crate gives every layer of the stack a place to report *per-interval*
//! observations without perturbing the thing being measured:
//!
//! * the **coupler** emits one [`Event::QuantumReport`] per calibration
//!   (predicted vs measured latency, drift, quantum resize), plus
//!   [`Event::WatchdogTrip`] and [`Event::Degradation`] transitions;
//! * the **detailed NoC** emits one [`Event::NocWindow`] per calibration
//!   window (router steps, fast-forwarded cycles, per-virtual-network
//!   occupancy, fault deltas);
//! * the **parallel engine** emits one [`Event::EngineBatch`] per batched
//!   job (worker range cuts, barrier wait, batch size);
//! * wall-clock [`Event::Span`]s (`detailed_step` / `calibrate` /
//!   `fullsys_step`) roll up into the T2-style simulation-time breakdown
//!   via [`TimeBreakdown`];
//! * the **job service** (`ra-serve`) emits per-job lifecycle events —
//!   [`Event::JobAdmitted`], [`Event::JobRejected`] (the backpressure
//!   signal), [`Event::CacheHit`], [`Event::JobDone`] — at job
//!   granularity, orders of magnitude rarer than even window events.
//!
//! # The cost model
//!
//! Everything funnels through an [`ObsSink`], a cloneable handle that is
//! either *disabled* (the default: an `Option::None`, so
//! [`ObsSink::emit`] is a branch and the event-construction closure is
//! never run — nothing on the PR 2 zero-allocation hot path changes) or
//! *attached* to a [`Recorder`]. Events are emitted only at window /
//! quantum / batch granularity, never per cycle or per flit, so even an
//! attached recorder costs a bounded, amortized amount: the determinism
//! suite holds [`NullRecorder`] and [`RingRecorder`] runs to bit-identical
//! simulation statistics, and the steady-state allocation test proves the
//! instrumented hot path still allocates nothing under a [`NullRecorder`].
//!
//! [`CouplerStats`]: https://docs.rs/ra-cosim

use std::collections::VecDeque;
use std::fmt;
use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::Path;
use std::sync::{Arc, Mutex};

use ra_sim::MessageClass;

/// Wall-clock profiling span kinds, named after the co-simulation phases
/// the T2 experiment decomposes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SpanKind {
    /// Stepping the detailed cycle-level NoC through a window (the
    /// component a coprocessor offloads).
    DetailedStep,
    /// Measuring the window's deliveries and re-fitting the calibrated
    /// model at the quantum boundary.
    Calibrate,
    /// Everything else: the coarse-grain full system and the fast-path
    /// model (reported once per run as the remainder).
    FullsysStep,
}

impl SpanKind {
    /// Stable lower-snake name used in the JSONL export.
    pub fn name(self) -> &'static str {
        match self {
            SpanKind::DetailedStep => "detailed_step",
            SpanKind::Calibrate => "calibrate",
            SpanKind::FullsysStep => "fullsys_step",
        }
    }
}

/// Degradation state of the coupler's detailed path (see the `ra-cosim`
/// watchdog / fallback machinery).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DegradationState {
    /// The detailed model is in service and calibrating.
    Healthy,
    /// Tripped and backing off; the calibrated model answers alone.
    Degraded,
    /// Permanently out of service for the rest of the run.
    Abandoned,
}

impl DegradationState {
    /// Stable lower-case name used in the JSONL export.
    pub fn name(self) -> &'static str {
        match self {
            DegradationState::Healthy => "healthy",
            DegradationState::Degraded => "degraded",
            DegradationState::Abandoned => "abandoned",
        }
    }
}

/// One observation. Variants are emitted at window / quantum / batch
/// granularity only — never per cycle or per flit — so recording stays off
/// the simulators' hot paths by construction.
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    /// One calibration exchange at a quantum boundary.
    QuantumReport {
        /// Zero-based index of the calibration window.
        window: u64,
        /// The quantum-boundary cycle the calibration ran at.
        boundary: u64,
        /// Mean latency the fast-path model predicted for the window.
        predicted: f64,
        /// Mean latency the detailed NoC measured over the window
        /// (0 when the window delivered nothing).
        measured: f64,
        /// |predicted − measured| (0 when nothing was measured).
        drift: f64,
        /// Deliveries measured in the window.
        samples: u64,
        /// Calibration quantum entering the window, in cycles.
        quantum_before: u64,
        /// Quantum after the adaptive controller's decision (equal to
        /// `quantum_before` when static or unchanged).
        quantum_after: u64,
    },
    /// The watchdog tore down the detailed model.
    WatchdogTrip {
        /// The quantum-boundary cycle the trip was detected at.
        cycle: u64,
        /// Human-readable cause (the underlying `SimError`).
        cause: String,
    },
    /// The coupler's detailed path changed supervision state.
    Degradation {
        /// The quantum-boundary cycle of the transition.
        cycle: u64,
        /// State before.
        from: DegradationState,
        /// State after.
        to: DegradationState,
    },
    /// A speculatively executed quantum was verified against the
    /// post-replay re-fit model and kept (pipelined mode).
    SpecCommit {
        /// Zero-based calibration-window index of the speculated window.
        window: u64,
        /// Quantum-boundary cycle the commit decision was taken at.
        boundary: u64,
        /// |predicted − measured| drift of the replay joined at the
        /// decision point.
        drift: f64,
        /// Simulated cycles executed speculatively and kept.
        speculated_cycles: u64,
    },
    /// A speculatively executed quantum diverged from the re-fit model
    /// and was rolled back to the checkpoint for serial re-execution.
    SpecRollback {
        /// Zero-based calibration-window index of the speculated window.
        window: u64,
        /// Quantum-boundary cycle the rollback decision was taken at.
        boundary: u64,
        /// |predicted − measured| drift of the replay joined at the
        /// decision point.
        drift: f64,
        /// Simulated cycles executed speculatively and thrown away.
        wasted_cycles: u64,
        /// Model queries whose re-fit answer differed (0 when the
        /// rollback was forced by an adaptive quantum resize instead).
        mismatches: u64,
    },
    /// One detailed-NoC calibration window's execution profile.
    NocWindow {
        /// Which die emitted the window: 0 for a standalone single-die
        /// network, the island id on a chiplet system (each island emits
        /// its own tagged window per calibration).
        island: u64,
        /// First cycle of the window.
        from_cycle: u64,
        /// One past the last cycle of the window.
        to_cycle: u64,
        /// Router `phase_compute` invocations in the window — the
        /// active-router count integrated over time (what clock gating
        /// saves is directly visible here).
        router_steps: u64,
        /// Cycles skipped in O(1) by idle fast-forward.
        fast_forwarded: u64,
        /// Flits delivered in the window.
        flits_delivered: u64,
        /// In-flight messages per virtual network at the window boundary
        /// (the per-VC occupancy snapshot).
        occupancy: [u64; MessageClass::COUNT],
        /// Flits lost to scripted link faults in the window.
        flits_dropped: u64,
        /// Fault detours taken in the window.
        reroutes: u64,
        /// Cycles a scripted stall froze a router in the window.
        stall_cycles: u64,
    },
    /// One batched job on the data-parallel engine.
    EngineBatch {
        /// First cycle of the batch.
        t0: u64,
        /// Cycles in the batch.
        cycles: u64,
        /// Worker threads in the pool.
        workers: u64,
        /// Wall-clock nanoseconds the coordinator spent blocked between
        /// the batch's start and end barriers (the pool's busy time).
        barrier_wait_ns: u64,
        /// Injections released into the batch up front.
        releases: u64,
        /// Routers in the smallest worker range this batch (the activity-
        /// weighted re-cut; min ≪ max means the load was skewed).
        min_range: u64,
        /// Routers in the largest worker range this batch.
        max_range: u64,
    },
    /// A wall-clock profiling span.
    Span {
        /// Which phase the span timed.
        kind: SpanKind,
        /// Span length in nanoseconds.
        nanos: u64,
    },
    /// The job service admitted a simulation job to its run queue.
    JobAdmitted {
        /// Canonical job-spec content hash (the cache key).
        job: u64,
        /// Queue depth after admission.
        queue_depth: u64,
        /// Scheduling priority (higher runs first).
        priority: u64,
    },
    /// The job service refused a submission — the explicit backpressure
    /// signal (`Rejected::QueueFull` on the API, `"queue_full"` on the
    /// wire).
    JobRejected {
        /// Canonical job-spec content hash of the refused job.
        job: u64,
        /// Queue depth at the time of refusal (the configured bound).
        queue_depth: u64,
    },
    /// A submission was answered from the memoized result store without
    /// re-running the co-simulation.
    CacheHit {
        /// Canonical job-spec content hash (the cache key).
        job: u64,
    },
    /// A job reached a terminal state.
    JobDone {
        /// Canonical job-spec content hash.
        job: u64,
        /// Terminal outcome: `ok`, `failed`, `cancelled`, or `expired`.
        outcome: String,
        /// Nanoseconds spent queued before a worker picked the job up.
        queue_ns: u64,
        /// Nanoseconds spent running the co-simulation (0 if never run).
        run_ns: u64,
        /// Speculative quanta the run committed (0 unless the job ran a
        /// pipelined reciprocal mode).
        spec_commits: u64,
        /// Speculative quanta the run rolled back and re-executed.
        spec_rollbacks: u64,
    },
    /// The job service replayed its durability logs (spill + journal)
    /// at startup — the warm-restart signature.
    JournalReplay {
        /// Memoized results rebuilt into the cache from the spill log.
        recovered_results: u64,
        /// Journaled-but-unfinished jobs re-enqueued to run again.
        resumed_jobs: u64,
        /// Bytes of torn/corrupt tail ignored across both logs.
        dropped_tail_bytes: u64,
        /// Complete frames whose checksum failed (0 after a clean tear).
        checksum_errors: u64,
    },
    /// A worker thread panicked mid-job and was respawned by the
    /// supervisor; the pool is back to full strength.
    WorkerRespawn {
        /// Which worker slot respawned.
        worker: u64,
        /// How many times this slot has respawned (1 = first panic).
        incarnation: u64,
        /// Content hash of the job that killed it (0 if it died idle).
        job: u64,
    },
    /// A job was quarantined as poisoned after killing too many workers.
    JobQuarantined {
        /// Canonical job-spec content hash.
        job: u64,
        /// Workers it killed before quarantine.
        strikes: u64,
    },
    /// A *running* job crossed its deadline and was cooperatively
    /// cancelled via the engine's watchdog poll.
    DeadlineCancel {
        /// Canonical job-spec content hash.
        job: u64,
        /// Milliseconds past the deadline when the reaper fired.
        overrun_ms: u64,
    },
    /// A relay health probe promoted a backend node to `Up`.
    NodeUp {
        /// Backend slot index in the relay's node table.
        node: u64,
        /// Round-trip time of the probe that completed the promotion.
        rtt_ns: u64,
    },
    /// A relay health probe demoted a backend node to `Down`.
    NodeDown {
        /// Backend slot index in the relay's node table.
        node: u64,
        /// Consecutive probe failures at the moment of demotion.
        failures: u64,
    },
    /// A node death triggered failover: its key range was re-routed to
    /// survivors and its in-flight jobs re-submitted.
    Failover {
        /// The dead backend's slot index.
        node: u64,
        /// In-flight jobs handed off to survivors.
        inflight: u64,
    },
    /// One job was re-routed from a failed backend to a survivor.
    Reroute {
        /// Canonical job-spec content hash.
        job: u64,
        /// Backend slot the job was leaving.
        from: u64,
        /// Backend slot that now owns it.
        to: u64,
    },
    /// A batched wire verb (`submit_batch`/`status_batch`/`result_batch`)
    /// was dispatched — one event per round-trip, however many jobs it
    /// carried, so batching efficiency is visible in the trace.
    WireBatch {
        /// The batch verb name.
        verb: String,
        /// Items the batch carried.
        items: u64,
    },
    /// The admission controller entered a brownout level under sustained
    /// queue pressure (1 = degrade new low-priority work, 2 = degrade
    /// everything that opted in).
    BrownoutEnter {
        /// The level entered (1 or 2).
        level: u64,
        /// The smoothed pressure reading that crossed the threshold.
        pressure: f64,
    },
    /// The admission controller left a brownout level after sustained
    /// relief (hysteresis applied).
    BrownoutExit {
        /// The level left behind (the new level is one lower, or 0).
        level: u64,
        /// The smoothed pressure reading at exit.
        pressure: f64,
    },
    /// A job was planned at degraded fidelity instead of being rejected.
    JobDegraded {
        /// Canonical job-spec content hash.
        job: u64,
        /// The fidelity rung it will be answered at (`hop`/`calibrated`).
        fidelity: String,
        /// Why: `brownout1`, `brownout2`, `queue_full`, `quota`, or
        /// `edge`.
        cause: String,
    },
    /// A job was shed by the admission controller (quota exhausted or
    /// queue overloaded with no degraded rung available).
    JobShed {
        /// Canonical job-spec content hash.
        job: u64,
        /// Client id the quota charged (empty when anonymous).
        client: String,
        /// Queue depth at the shed decision.
        queue_depth: u64,
    },
    /// The background upgrader replaced a degraded store entry with a
    /// fresh full-fidelity run of the same spec.
    ResultUpgraded {
        /// Canonical job-spec content hash (unchanged by the upgrade).
        job: u64,
        /// Fidelity tag of the entry that was replaced.
        from: String,
        /// Fidelity tag it was upgraded to.
        to: String,
    },
    /// A relay backend's circuit breaker changed state.
    BreakerTransition {
        /// Backend slot index in the relay's node table.
        node: u64,
        /// State left (`closed`/`open`/`half_open`).
        from: String,
        /// State entered.
        to: String,
    },
    /// The relay answered a shedable job from the edge at `fidelity=hop`
    /// because every owner was saturated or breaker-open.
    EdgeBrownout {
        /// Canonical job-spec content hash.
        job: u64,
    },
}

impl Event {
    /// Stable lower-snake discriminant name (the JSONL `"event"` field).
    pub fn kind_name(&self) -> &'static str {
        match self {
            Event::QuantumReport { .. } => "quantum_report",
            Event::WatchdogTrip { .. } => "watchdog_trip",
            Event::Degradation { .. } => "degradation",
            Event::SpecCommit { .. } => "spec_commit",
            Event::SpecRollback { .. } => "spec_rollback",
            Event::NocWindow { .. } => "noc_window",
            Event::EngineBatch { .. } => "engine_batch",
            Event::Span { .. } => "span",
            Event::JobAdmitted { .. } => "job_admitted",
            Event::JobRejected { .. } => "job_rejected",
            Event::CacheHit { .. } => "cache_hit",
            Event::JobDone { .. } => "job_done",
            Event::JournalReplay { .. } => "journal_replay",
            Event::WorkerRespawn { .. } => "worker_respawn",
            Event::JobQuarantined { .. } => "job_quarantined",
            Event::DeadlineCancel { .. } => "deadline_cancel",
            Event::NodeUp { .. } => "node_up",
            Event::NodeDown { .. } => "node_down",
            Event::Failover { .. } => "failover",
            Event::Reroute { .. } => "reroute",
            Event::WireBatch { .. } => "wire_batch",
            Event::BrownoutEnter { .. } => "brownout_enter",
            Event::BrownoutExit { .. } => "brownout_exit",
            Event::JobDegraded { .. } => "job_degraded",
            Event::JobShed { .. } => "job_shed",
            Event::ResultUpgraded { .. } => "result_upgraded",
            Event::BreakerTransition { .. } => "breaker_transition",
            Event::EdgeBrownout { .. } => "edge_brownout",
        }
    }

    /// Renders the event as one JSON object (the JSONL line format; see
    /// DESIGN.md "Observability" for the schema).
    pub fn to_json(&self) -> String {
        let mut w = JsonWriter::new(self.kind_name());
        match self {
            Event::QuantumReport {
                window,
                boundary,
                predicted,
                measured,
                drift,
                samples,
                quantum_before,
                quantum_after,
            } => {
                w.int("window", *window);
                w.int("boundary", *boundary);
                w.num("predicted", *predicted);
                w.num("measured", *measured);
                w.num("drift", *drift);
                w.int("samples", *samples);
                w.int("quantum_before", *quantum_before);
                w.int("quantum_after", *quantum_after);
            }
            Event::WatchdogTrip { cycle, cause } => {
                w.int("cycle", *cycle);
                w.str("cause", cause);
            }
            Event::Degradation { cycle, from, to } => {
                w.int("cycle", *cycle);
                w.str("from", from.name());
                w.str("to", to.name());
            }
            Event::SpecCommit {
                window,
                boundary,
                drift,
                speculated_cycles,
            } => {
                w.int("window", *window);
                w.int("boundary", *boundary);
                w.num("drift", *drift);
                w.int("speculated_cycles", *speculated_cycles);
            }
            Event::SpecRollback {
                window,
                boundary,
                drift,
                wasted_cycles,
                mismatches,
            } => {
                w.int("window", *window);
                w.int("boundary", *boundary);
                w.num("drift", *drift);
                w.int("wasted_cycles", *wasted_cycles);
                w.int("mismatches", *mismatches);
            }
            Event::NocWindow {
                island,
                from_cycle,
                to_cycle,
                router_steps,
                fast_forwarded,
                flits_delivered,
                occupancy,
                flits_dropped,
                reroutes,
                stall_cycles,
            } => {
                w.int("island", *island);
                w.int("from_cycle", *from_cycle);
                w.int("to_cycle", *to_cycle);
                w.int("router_steps", *router_steps);
                w.int("fast_forwarded", *fast_forwarded);
                w.int("flits_delivered", *flits_delivered);
                w.int_array("occupancy", occupancy);
                w.int("flits_dropped", *flits_dropped);
                w.int("reroutes", *reroutes);
                w.int("stall_cycles", *stall_cycles);
            }
            Event::EngineBatch {
                t0,
                cycles,
                workers,
                barrier_wait_ns,
                releases,
                min_range,
                max_range,
            } => {
                w.int("t0", *t0);
                w.int("cycles", *cycles);
                w.int("workers", *workers);
                w.int("barrier_wait_ns", *barrier_wait_ns);
                w.int("releases", *releases);
                w.int("min_range", *min_range);
                w.int("max_range", *max_range);
            }
            Event::Span { kind, nanos } => {
                w.str("span", kind.name());
                w.int("nanos", *nanos);
            }
            Event::JobAdmitted {
                job,
                queue_depth,
                priority,
            } => {
                w.hex("job", *job);
                w.int("queue_depth", *queue_depth);
                w.int("priority", *priority);
            }
            Event::JobRejected { job, queue_depth } => {
                w.hex("job", *job);
                w.int("queue_depth", *queue_depth);
            }
            Event::CacheHit { job } => {
                w.hex("job", *job);
            }
            Event::JobDone {
                job,
                outcome,
                queue_ns,
                run_ns,
                spec_commits,
                spec_rollbacks,
            } => {
                w.hex("job", *job);
                w.str("outcome", outcome);
                w.int("queue_ns", *queue_ns);
                w.int("run_ns", *run_ns);
                w.int("spec_commits", *spec_commits);
                w.int("spec_rollbacks", *spec_rollbacks);
            }
            Event::JournalReplay {
                recovered_results,
                resumed_jobs,
                dropped_tail_bytes,
                checksum_errors,
            } => {
                w.int("recovered_results", *recovered_results);
                w.int("resumed_jobs", *resumed_jobs);
                w.int("dropped_tail_bytes", *dropped_tail_bytes);
                w.int("checksum_errors", *checksum_errors);
            }
            Event::WorkerRespawn {
                worker,
                incarnation,
                job,
            } => {
                w.int("worker", *worker);
                w.int("incarnation", *incarnation);
                w.hex("job", *job);
            }
            Event::JobQuarantined { job, strikes } => {
                w.hex("job", *job);
                w.int("strikes", *strikes);
            }
            Event::DeadlineCancel { job, overrun_ms } => {
                w.hex("job", *job);
                w.int("overrun_ms", *overrun_ms);
            }
            Event::NodeUp { node, rtt_ns } => {
                w.int("node", *node);
                w.int("rtt_ns", *rtt_ns);
            }
            Event::NodeDown { node, failures } => {
                w.int("node", *node);
                w.int("failures", *failures);
            }
            Event::Failover { node, inflight } => {
                w.int("node", *node);
                w.int("inflight", *inflight);
            }
            Event::Reroute { job, from, to } => {
                w.hex("job", *job);
                w.int("from", *from);
                w.int("to", *to);
            }
            Event::WireBatch { verb, items } => {
                w.str("verb", verb);
                w.int("items", *items);
            }
            Event::BrownoutEnter { level, pressure } => {
                w.int("level", *level);
                w.num("pressure", *pressure);
            }
            Event::BrownoutExit { level, pressure } => {
                w.int("level", *level);
                w.num("pressure", *pressure);
            }
            Event::JobDegraded { job, fidelity, cause } => {
                w.hex("job", *job);
                w.str("fidelity", fidelity);
                w.str("cause", cause);
            }
            Event::JobShed {
                job,
                client,
                queue_depth,
            } => {
                w.hex("job", *job);
                w.str("client", client);
                w.int("queue_depth", *queue_depth);
            }
            Event::ResultUpgraded { job, from, to } => {
                w.hex("job", *job);
                w.str("from", from);
                w.str("to", to);
            }
            Event::BreakerTransition { node, from, to } => {
                w.int("node", *node);
                w.str("from", from);
                w.str("to", to);
            }
            Event::EdgeBrownout { job } => {
                w.hex("job", *job);
            }
        }
        w.finish()
    }
}

/// Minimal hand-rolled JSON object writer (the vendored `serde` stub cannot
/// serialize, so the export format is built by hand, as in `ra-bench`).
struct JsonWriter {
    out: String,
}

impl JsonWriter {
    fn new(event: &str) -> Self {
        let mut w = JsonWriter {
            out: String::with_capacity(128),
        };
        w.out.push('{');
        w.str("event", event);
        w
    }

    fn key(&mut self, key: &str) {
        if self.out.len() > 1 {
            self.out.push(',');
        }
        self.out.push('"');
        self.out.push_str(key); // keys are static identifiers, no escaping
        self.out.push_str("\":");
    }

    fn str(&mut self, key: &str, value: &str) {
        self.key(key);
        self.out.push('"');
        for c in value.chars() {
            match c {
                '"' => self.out.push_str("\\\""),
                '\\' => self.out.push_str("\\\\"),
                '\n' => self.out.push_str("\\n"),
                '\r' => self.out.push_str("\\r"),
                '\t' => self.out.push_str("\\t"),
                c if (c as u32) < 0x20 => {
                    self.out.push_str(&format!("\\u{:04x}", c as u32));
                }
                c => self.out.push(c),
            }
        }
        self.out.push('"');
    }

    fn int(&mut self, key: &str, value: u64) {
        self.key(key);
        self.out.push_str(&value.to_string());
    }

    /// Writes a u64 as a zero-padded 16-digit hex *string* (job content
    /// hashes: a JSON number would lose precision past 2^53).
    fn hex(&mut self, key: &str, value: u64) {
        self.key(key);
        self.out.push('"');
        self.out.push_str(&format!("{value:016x}"));
        self.out.push('"');
    }

    fn num(&mut self, key: &str, value: f64) {
        self.key(key);
        if value.is_finite() {
            self.out.push_str(&format!("{value}"));
        } else {
            self.out.push_str("null");
        }
    }

    fn int_array(&mut self, key: &str, values: &[u64]) {
        self.key(key);
        self.out.push('[');
        for (i, v) in values.iter().enumerate() {
            if i > 0 {
                self.out.push(',');
            }
            self.out.push_str(&v.to_string());
        }
        self.out.push(']');
    }

    fn finish(mut self) -> String {
        self.out.push('}');
        self.out
    }
}

/// Consumes [`Event`]s. Implementations must be cheap per call: recorders
/// run under the sink's lock at window/quantum/batch boundaries.
pub trait Recorder: Send {
    /// Records one event.
    fn record(&mut self, event: &Event);

    /// Flushes any buffered output (no-op for in-memory recorders).
    ///
    /// # Errors
    ///
    /// I/O errors from streaming recorders.
    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

/// Discards everything. The reference point for overhead measurements: an
/// *attached* sink whose recorder does no work, proving the event plumbing
/// itself is free of allocation and of observable effect on results.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullRecorder;

impl Recorder for NullRecorder {
    fn record(&mut self, _event: &Event) {}
}

/// Bounded in-memory recorder: keeps the most recent `capacity` events.
///
/// The buffer is allocated up front; steady-state recording of
/// allocation-free event variants performs no heap allocation (string-
/// carrying variants such as [`Event::WatchdogTrip`] are off the hot path
/// by construction).
#[derive(Debug)]
pub struct RingRecorder {
    buf: VecDeque<Event>,
    capacity: usize,
    seen: u64,
}

impl RingRecorder {
    /// A ring holding at most `capacity` events (at least 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        RingRecorder {
            buf: VecDeque::with_capacity(capacity),
            capacity,
            seen: 0,
        }
    }

    /// Events currently retained, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &Event> {
        self.buf.iter()
    }

    /// Retained event count (≤ capacity).
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True if nothing has been retained.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Total events ever recorded, including those evicted by the bound.
    pub fn seen(&self) -> u64 {
        self.seen
    }

    /// Rolls the retained [`Event::Span`]s up into a time breakdown.
    pub fn breakdown(&self) -> TimeBreakdown {
        TimeBreakdown::from_events(self.events())
    }
}

impl Recorder for RingRecorder {
    fn record(&mut self, event: &Event) {
        if self.buf.len() == self.capacity {
            self.buf.pop_front();
        }
        self.buf.push_back(event.clone());
        self.seen += 1;
    }
}

/// Streaming JSONL export: one JSON object per line, flushed on drop.
pub struct JsonlRecorder<W: Write + Send> {
    /// `None` only after [`into_inner`](JsonlRecorder::into_inner).
    out: Option<BufWriter<W>>,
    lines: u64,
    /// First write error, reported once via [`Recorder::flush`].
    error: Option<io::Error>,
}

impl JsonlRecorder<File> {
    /// Creates (truncating) the trace file at `path`.
    ///
    /// # Errors
    ///
    /// Propagates file-creation errors.
    pub fn create(path: impl AsRef<Path>) -> io::Result<Self> {
        Ok(Self::new(File::create(path)?))
    }
}

impl<W: Write + Send> JsonlRecorder<W> {
    /// Streams events into `writer`.
    pub fn new(writer: W) -> Self {
        JsonlRecorder {
            out: Some(BufWriter::new(writer)),
            lines: 0,
            error: None,
        }
    }

    /// Lines written so far.
    pub fn lines(&self) -> u64 {
        self.lines
    }

    /// Consumes the recorder, flushing and returning the writer.
    ///
    /// # Errors
    ///
    /// The first deferred write error, or the final flush error.
    pub fn into_inner(mut self) -> io::Result<W> {
        if let Some(err) = self.error.take() {
            return Err(err);
        }
        self.out
            .take()
            .expect("writer present until into_inner")
            .into_inner()
            .map_err(|e| io::Error::other(e.to_string()))
    }
}

impl<W: Write + Send> Recorder for JsonlRecorder<W> {
    fn record(&mut self, event: &Event) {
        if self.error.is_some() {
            return;
        }
        let Some(out) = self.out.as_mut() else {
            return;
        };
        let line = event.to_json();
        if let Err(e) = out
            .write_all(line.as_bytes())
            .and_then(|()| out.write_all(b"\n"))
        {
            self.error = Some(e);
            return;
        }
        self.lines += 1;
    }

    fn flush(&mut self) -> io::Result<()> {
        if let Some(err) = self.error.take() {
            return Err(err);
        }
        match self.out.as_mut() {
            Some(out) => out.flush(),
            None => Ok(()),
        }
    }
}

impl<W: Write + Send> Drop for JsonlRecorder<W> {
    fn drop(&mut self) {
        if let Some(out) = self.out.as_mut() {
            let _ = out.flush();
        }
    }
}

/// Cloneable handle the instrumented layers hold. Disabled by default:
/// [`ObsSink::emit`] then costs one branch and never runs the event-
/// construction closure, so the simulators' hot paths are untouched.
///
/// Clones share the recorder, so one sink threaded through the coupler,
/// the NoC, and the engine interleaves their events into one stream.
#[derive(Clone, Default)]
pub struct ObsSink {
    rec: Option<Arc<Mutex<dyn Recorder>>>,
}

impl fmt::Debug for ObsSink {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ObsSink")
            .field("enabled", &self.rec.is_some())
            .finish()
    }
}

impl ObsSink {
    /// The zero-cost default: every emit is skipped.
    pub fn disabled() -> Self {
        ObsSink::default()
    }

    /// Attaches `recorder`, returning the sink plus a typed handle for
    /// reading the recorder back after the run (the sink itself is
    /// type-erased).
    ///
    /// ```
    /// use ra_obs::{Event, ObsSink, RingRecorder, SpanKind};
    /// let (sink, ring) = ObsSink::attach(RingRecorder::new(16));
    /// sink.emit(|| Event::Span { kind: SpanKind::Calibrate, nanos: 5 });
    /// assert_eq!(ring.lock().unwrap().len(), 1);
    /// ```
    pub fn attach<R: Recorder + 'static>(recorder: R) -> (Self, Arc<Mutex<R>>) {
        let handle = Arc::new(Mutex::new(recorder));
        let rec: Arc<Mutex<dyn Recorder>> = handle.clone();
        (ObsSink { rec: Some(rec) }, handle)
    }

    /// True when a recorder is attached.
    pub fn enabled(&self) -> bool {
        self.rec.is_some()
    }

    /// Emits the event built by `f` — *if* a recorder is attached. The
    /// closure is the lazy-construction point: when the sink is disabled
    /// (the default), no event is built at all.
    #[inline]
    pub fn emit(&self, f: impl FnOnce() -> Event) {
        if let Some(rec) = &self.rec {
            let event = f();
            // A panicked recorder poisons the lock; observability must
            // never take the simulation down, so recover the guard.
            let mut rec = rec.lock().unwrap_or_else(|e| e.into_inner());
            rec.record(&event);
        }
    }

    /// Flushes the attached recorder (no-op when disabled).
    ///
    /// # Errors
    ///
    /// Propagates the recorder's flush error.
    pub fn flush(&self) -> io::Result<()> {
        match &self.rec {
            Some(rec) => rec.lock().unwrap_or_else(|e| e.into_inner()).flush(),
            None => Ok(()),
        }
    }
}

/// T2-style simulation-time decomposition, rolled up from [`Event::Span`]s.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TimeBreakdown {
    /// Nanoseconds stepping the detailed cycle-level NoC.
    pub detailed_ns: u64,
    /// Nanoseconds measuring + re-fitting the calibrated model.
    pub calibrate_ns: u64,
    /// Nanoseconds in the full system and fast path (the remainder).
    pub fullsys_ns: u64,
    /// Speculative quanta verified and kept (pipelined mode; 0 serial).
    pub spec_commits: u64,
    /// Speculative quanta rolled back and re-run serially.
    pub spec_rollbacks: u64,
    /// Simulated cycles speculated and then discarded by rollbacks.
    pub spec_wasted_cycles: u64,
}

impl TimeBreakdown {
    /// Adds one span.
    pub fn add(&mut self, kind: SpanKind, nanos: u64) {
        match kind {
            SpanKind::DetailedStep => self.detailed_ns += nanos,
            SpanKind::Calibrate => self.calibrate_ns += nanos,
            SpanKind::FullsysStep => self.fullsys_ns += nanos,
        }
    }

    /// Rolls up every [`Event::Span`] (and speculation decision) in
    /// `events`.
    pub fn from_events<'a>(events: impl IntoIterator<Item = &'a Event>) -> Self {
        let mut out = TimeBreakdown::default();
        for event in events {
            match event {
                Event::Span { kind, nanos } => out.add(*kind, *nanos),
                Event::SpecCommit { .. } => out.spec_commits += 1,
                Event::SpecRollback { wasted_cycles, .. } => {
                    out.spec_rollbacks += 1;
                    out.spec_wasted_cycles += wasted_cycles;
                }
                _ => {}
            }
        }
        out
    }

    /// Speculation decisions taken (commits + rollbacks; 0 when serial).
    pub fn spec_decisions(&self) -> u64 {
        self.spec_commits + self.spec_rollbacks
    }

    /// Fraction of speculation decisions that rolled back (0 when none).
    pub fn rollback_ratio(&self) -> f64 {
        let total = self.spec_decisions();
        if total == 0 {
            return 0.0;
        }
        self.spec_rollbacks as f64 / total as f64
    }

    /// Total accounted nanoseconds.
    pub fn total_ns(&self) -> u64 {
        self.detailed_ns + self.calibrate_ns + self.fullsys_ns
    }

    /// Share of the total spent in the detailed NoC (0 when empty) — the
    /// fraction a coprocessor can attack (experiment T2).
    pub fn detailed_share(&self) -> f64 {
        let total = self.total_ns();
        if total == 0 {
            return 0.0;
        }
        self.detailed_ns as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(nanos: u64) -> Event {
        Event::Span {
            kind: SpanKind::DetailedStep,
            nanos,
        }
    }

    #[test]
    fn disabled_sink_never_builds_events() {
        let sink = ObsSink::disabled();
        assert!(!sink.enabled());
        let mut built = false;
        sink.emit(|| {
            built = true;
            span(1)
        });
        assert!(!built, "closure must not run on a disabled sink");
        sink.flush().unwrap();
    }

    #[test]
    fn attached_sink_delivers_to_recorder() {
        let (sink, ring) = ObsSink::attach(RingRecorder::new(4));
        assert!(sink.enabled());
        for i in 0..3 {
            sink.emit(|| span(i));
        }
        let ring = ring.lock().unwrap();
        assert_eq!(ring.len(), 3);
        assert_eq!(ring.seen(), 3);
    }

    #[test]
    fn cloned_sinks_share_one_recorder() {
        let (sink, ring) = ObsSink::attach(RingRecorder::new(8));
        let clone = sink.clone();
        sink.emit(|| span(1));
        clone.emit(|| span(2));
        assert_eq!(ring.lock().unwrap().len(), 2);
    }

    #[test]
    fn ring_is_bounded_and_keeps_newest() {
        let mut ring = RingRecorder::new(3);
        for i in 0..10 {
            ring.record(&span(i));
        }
        assert_eq!(ring.len(), 3);
        assert_eq!(ring.seen(), 10);
        let kept: Vec<u64> = ring
            .events()
            .map(|e| match e {
                Event::Span { nanos, .. } => *nanos,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(kept, vec![7, 8, 9]);
    }

    #[test]
    fn breakdown_rolls_up_spans_only() {
        let mut ring = RingRecorder::new(16);
        ring.record(&Event::Span {
            kind: SpanKind::DetailedStep,
            nanos: 100,
        });
        ring.record(&Event::Span {
            kind: SpanKind::DetailedStep,
            nanos: 50,
        });
        ring.record(&Event::Span {
            kind: SpanKind::Calibrate,
            nanos: 25,
        });
        ring.record(&Event::Span {
            kind: SpanKind::FullsysStep,
            nanos: 25,
        });
        ring.record(&Event::WatchdogTrip {
            cycle: 7,
            cause: "not a span".into(),
        });
        let b = ring.breakdown();
        assert_eq!(b.detailed_ns, 150);
        assert_eq!(b.calibrate_ns, 25);
        assert_eq!(b.fullsys_ns, 25);
        assert_eq!(b.total_ns(), 200);
        assert!((b.detailed_share() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn breakdown_counts_speculation_decisions() {
        let mut ring = RingRecorder::new(16);
        ring.record(&Event::SpecCommit {
            window: 0,
            boundary: 2_000,
            drift: 0.1,
            speculated_cycles: 2_000,
        });
        ring.record(&Event::SpecCommit {
            window: 1,
            boundary: 4_000,
            drift: 0.2,
            speculated_cycles: 2_000,
        });
        ring.record(&Event::SpecRollback {
            window: 2,
            boundary: 6_000,
            drift: 11.0,
            wasted_cycles: 1_500,
            mismatches: 2,
        });
        let b = ring.breakdown();
        assert_eq!(b.spec_commits, 2);
        assert_eq!(b.spec_rollbacks, 1);
        assert_eq!(b.spec_wasted_cycles, 1_500);
        assert_eq!(b.spec_decisions(), 3);
        assert!((b.rollback_ratio() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn jsonl_writes_one_line_per_event() {
        let mut rec = JsonlRecorder::new(Vec::new());
        rec.record(&Event::QuantumReport {
            window: 3,
            boundary: 8000,
            predicted: 12.5,
            measured: 14.0,
            drift: 1.5,
            samples: 42,
            quantum_before: 2000,
            quantum_after: 1000,
        });
        rec.record(&Event::WatchdogTrip {
            cycle: 9000,
            cause: "fault: \"bad\"\nrouter".into(),
        });
        assert_eq!(rec.lines(), 2);
        let bytes = rec.into_inner().unwrap();
        let text = String::from_utf8(bytes).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert_eq!(
            lines[0],
            "{\"event\":\"quantum_report\",\"window\":3,\"boundary\":8000,\
             \"predicted\":12.5,\"measured\":14,\"drift\":1.5,\"samples\":42,\
             \"quantum_before\":2000,\"quantum_after\":1000}"
        );
        assert_eq!(
            lines[1],
            "{\"event\":\"watchdog_trip\",\"cycle\":9000,\
             \"cause\":\"fault: \\\"bad\\\"\\nrouter\"}"
        );
    }

    #[test]
    fn every_variant_serializes_with_its_kind_name() {
        let events = [
            Event::QuantumReport {
                window: 0,
                boundary: 0,
                predicted: 0.0,
                measured: 0.0,
                drift: f64::NAN,
                samples: 0,
                quantum_before: 1,
                quantum_after: 1,
            },
            Event::WatchdogTrip {
                cycle: 1,
                cause: "x".into(),
            },
            Event::Degradation {
                cycle: 2,
                from: DegradationState::Healthy,
                to: DegradationState::Degraded,
            },
            Event::SpecCommit {
                window: 4,
                boundary: 10_000,
                drift: 0.5,
                speculated_cycles: 2_000,
            },
            Event::SpecRollback {
                window: 5,
                boundary: 12_000,
                drift: 9.0,
                wasted_cycles: 2_000,
                mismatches: 3,
            },
            Event::NocWindow {
                island: 0,
                from_cycle: 0,
                to_cycle: 64,
                router_steps: 10,
                fast_forwarded: 3,
                flits_delivered: 5,
                occupancy: [1, 2, 3],
                flits_dropped: 0,
                reroutes: 0,
                stall_cycles: 0,
            },
            Event::EngineBatch {
                t0: 0,
                cycles: 64,
                workers: 4,
                barrier_wait_ns: 1000,
                releases: 2,
                min_range: 10,
                max_range: 22,
            },
            Event::Span {
                kind: SpanKind::FullsysStep,
                nanos: 9,
            },
            Event::JobAdmitted {
                job: 0xDEAD_BEEF,
                queue_depth: 3,
                priority: 1,
            },
            Event::JobRejected {
                job: 0xDEAD_BEEF,
                queue_depth: 64,
            },
            Event::CacheHit { job: 0xDEAD_BEEF },
            Event::JobDone {
                job: 0xDEAD_BEEF,
                outcome: "ok".into(),
                queue_ns: 1_000,
                run_ns: 2_000,
                spec_commits: 4,
                spec_rollbacks: 1,
            },
            Event::JournalReplay {
                recovered_results: 12,
                resumed_jobs: 3,
                dropped_tail_bytes: 17,
                checksum_errors: 0,
            },
            Event::WorkerRespawn {
                worker: 1,
                incarnation: 2,
                job: 0xDEAD_BEEF,
            },
            Event::JobQuarantined {
                job: 0xDEAD_BEEF,
                strikes: 2,
            },
            Event::DeadlineCancel {
                job: 0xDEAD_BEEF,
                overrun_ms: 40,
            },
            Event::NodeUp { node: 0, rtt_ns: 120_000 },
            Event::NodeDown {
                node: 2,
                failures: 3,
            },
            Event::Failover {
                node: 2,
                inflight: 5,
            },
            Event::Reroute {
                job: 0xDEAD_BEEF,
                from: 2,
                to: 0,
            },
            Event::WireBatch {
                verb: "submit_batch".into(),
                items: 64,
            },
            Event::BrownoutEnter {
                level: 1,
                pressure: 1.4,
            },
            Event::BrownoutExit {
                level: 1,
                pressure: 0.3,
            },
            Event::JobDegraded {
                job: 0xDEAD_BEEF,
                fidelity: "hop".into(),
                cause: "brownout1".into(),
            },
            Event::JobShed {
                job: 0xDEAD_BEEF,
                client: "tenant-a".into(),
                queue_depth: 64,
            },
            Event::ResultUpgraded {
                job: 0xDEAD_BEEF,
                from: "hop".into(),
                to: "reciprocal".into(),
            },
            Event::BreakerTransition {
                node: 2,
                from: "closed".into(),
                to: "open".into(),
            },
            Event::EdgeBrownout { job: 0xDEAD_BEEF },
        ];
        for event in &events {
            let json = event.to_json();
            assert!(
                json.starts_with(&format!("{{\"event\":\"{}\"", event.kind_name())),
                "{json}"
            );
            assert!(json.ends_with('}'), "{json}");
        }
        // NaN drift must degrade to null, and the occupancy array must be
        // a JSON array.
        assert!(events[0].to_json().contains("\"drift\":null"));
        assert!(events[5].to_json().contains("\"occupancy\":[1,2,3]"));
        // Job hashes export as 16-digit hex strings, not JSON numbers
        // (precision past 2^53 must survive a JS JSON parser).
        assert!(events[8].to_json().contains("\"job\":\"00000000deadbeef\""));
    }

    #[test]
    fn jsonl_file_roundtrip() {
        let path = std::env::temp_dir().join("ra_obs_test_trace.jsonl");
        {
            let (sink, handle) =
                ObsSink::attach(JsonlRecorder::create(&path).unwrap());
            sink.emit(|| span(1));
            sink.emit(|| span(2));
            handle.lock().unwrap().flush().unwrap();
        }
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text.lines().count(), 2);
        std::fs::remove_file(&path).ok();
    }
}
