//! Shared configuration primitives.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::error::ConfigError;
use crate::time::NodeId;

/// Shape of a 2-D mesh (or torus) of network nodes.
///
/// Provides coordinate/index mapping and hop-distance helpers shared by the
/// cycle-level NoC, the abstract models (which need hop counts), and the
/// full-system tile layout.
///
/// # Example
///
/// ```
/// use ra_sim::{MeshShape, NodeId};
///
/// let shape = MeshShape::new(4, 4)?;
/// assert_eq!(shape.nodes(), 16);
/// assert_eq!(shape.coords(NodeId(5)), (1, 1));
/// assert_eq!(shape.node_at(1, 1), NodeId(5));
/// assert_eq!(shape.mesh_hops(NodeId(0), NodeId(15)), 6);
/// # Ok::<(), ra_sim::ConfigError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct MeshShape {
    cols: u32,
    rows: u32,
}

impl MeshShape {
    /// Creates a `cols x rows` shape.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] if either dimension is zero.
    pub fn new(cols: u32, rows: u32) -> Result<Self, ConfigError> {
        if cols == 0 || rows == 0 {
            return Err(ConfigError::new(format!(
                "mesh dimensions must be positive, got {cols}x{rows}"
            )));
        }
        Ok(MeshShape { cols, rows })
    }

    /// Columns (x extent).
    #[inline]
    pub const fn cols(&self) -> u32 {
        self.cols
    }

    /// Rows (y extent).
    #[inline]
    pub const fn rows(&self) -> u32 {
        self.rows
    }

    /// Total node count.
    #[inline]
    pub const fn nodes(&self) -> usize {
        (self.cols as usize) * (self.rows as usize)
    }

    /// `(x, y)` coordinates of a node.
    ///
    /// # Panics
    ///
    /// Panics if `node` is outside the shape.
    #[inline]
    pub fn coords(&self, node: NodeId) -> (u32, u32) {
        let idx = node.0;
        assert!(
            (idx as usize) < self.nodes(),
            "node {node} outside {self}"
        );
        (idx % self.cols, idx / self.cols)
    }

    /// Node at `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics if the coordinates are outside the shape.
    #[inline]
    pub fn node_at(&self, x: u32, y: u32) -> NodeId {
        assert!(x < self.cols && y < self.rows, "({x},{y}) outside {self}");
        NodeId(y * self.cols + x)
    }

    /// Manhattan hop distance on a mesh.
    #[inline]
    pub fn mesh_hops(&self, a: NodeId, b: NodeId) -> usize {
        let (ax, ay) = self.coords(a);
        let (bx, by) = self.coords(b);
        (ax.abs_diff(bx) + ay.abs_diff(by)) as usize
    }

    /// Hop distance on a torus (wrap-around links).
    #[inline]
    pub fn torus_hops(&self, a: NodeId, b: NodeId) -> usize {
        let (ax, ay) = self.coords(a);
        let (bx, by) = self.coords(b);
        let dx = ax.abs_diff(bx).min(self.cols - ax.abs_diff(bx));
        let dy = ay.abs_diff(by).min(self.rows - ay.abs_diff(by));
        (dx + dy) as usize
    }

    /// The largest possible mesh hop distance (network diameter).
    #[inline]
    pub const fn diameter(&self) -> usize {
        (self.cols as usize - 1) + (self.rows as usize - 1)
    }

    /// Iterates over all nodes in index order.
    pub fn iter(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.nodes()).map(NodeId::from_index)
    }
}

impl fmt::Display for MeshShape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}x{}", self.cols, self.rows)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_degenerate_shapes() {
        assert!(MeshShape::new(0, 4).is_err());
        assert!(MeshShape::new(4, 0).is_err());
    }

    #[test]
    fn coords_roundtrip_all_nodes() {
        let shape = MeshShape::new(5, 3).unwrap();
        for node in shape.iter() {
            let (x, y) = shape.coords(node);
            assert_eq!(shape.node_at(x, y), node);
        }
    }

    #[test]
    fn mesh_hops_is_manhattan() {
        let shape = MeshShape::new(4, 4).unwrap();
        assert_eq!(shape.mesh_hops(NodeId(0), NodeId(0)), 0);
        assert_eq!(shape.mesh_hops(NodeId(0), NodeId(3)), 3);
        assert_eq!(shape.mesh_hops(NodeId(0), NodeId(12)), 3);
        assert_eq!(shape.mesh_hops(NodeId(0), NodeId(15)), 6);
        assert_eq!(shape.diameter(), 6);
    }

    #[test]
    fn torus_hops_wrap_around() {
        let shape = MeshShape::new(4, 4).unwrap();
        // Opposite corners: mesh needs 6 hops, torus wraps in 2.
        assert_eq!(shape.torus_hops(NodeId(0), NodeId(15)), 2);
        assert_eq!(shape.torus_hops(NodeId(0), NodeId(3)), 1);
    }

    #[test]
    fn hops_are_symmetric() {
        let shape = MeshShape::new(6, 2).unwrap();
        for a in shape.iter() {
            for b in shape.iter() {
                assert_eq!(shape.mesh_hops(a, b), shape.mesh_hops(b, a));
                assert_eq!(shape.torus_hops(a, b), shape.torus_hops(b, a));
                assert!(shape.torus_hops(a, b) <= shape.mesh_hops(a, b));
            }
        }
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn coords_out_of_range_panics() {
        MeshShape::new(2, 2).unwrap().coords(NodeId(4));
    }
}
