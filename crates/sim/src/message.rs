//! Network messages exchanged between the full-system simulator and any
//! network implementation.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::time::NodeId;

/// Globally unique message identity, assigned by the injecting component.
pub type MessageId = u64;

/// Protocol class of a message.
///
/// The MESI directory protocol in `ra-fullsys` maps each class to its own
/// *virtual network* inside the cycle-level NoC so that protocol-level
/// deadlock cannot form (a reply can never be blocked behind a request).
/// Abstract latency models calibrate per class because the classes have very
/// different size and locality profiles.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum MessageClass {
    /// Cache-miss requests and directory forwards (small control messages).
    Request,
    /// Data responses carrying a cache line (large messages).
    Response,
    /// Coherence traffic: invalidations, acks, writebacks.
    Coherence,
}

impl MessageClass {
    /// All classes, in virtual-network order.
    pub const ALL: [MessageClass; 3] = [
        MessageClass::Request,
        MessageClass::Response,
        MessageClass::Coherence,
    ];

    /// The number of distinct classes (and hence virtual networks).
    pub const COUNT: usize = 3;

    /// The virtual network this class travels on.
    ///
    /// ```
    /// # use ra_sim::MessageClass;
    /// assert_eq!(MessageClass::Response.vnet(), 1);
    /// ```
    #[inline]
    pub const fn vnet(self) -> usize {
        match self {
            MessageClass::Request => 0,
            MessageClass::Response => 1,
            MessageClass::Coherence => 2,
        }
    }

    /// Inverse of [`MessageClass::vnet`].
    ///
    /// # Panics
    ///
    /// Panics if `vnet >= MessageClass::COUNT`.
    #[inline]
    pub fn from_vnet(vnet: usize) -> Self {
        Self::ALL[vnet]
    }
}

impl fmt::Display for MessageClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            MessageClass::Request => "req",
            MessageClass::Response => "rsp",
            MessageClass::Coherence => "coh",
        };
        f.write_str(name)
    }
}

/// One message travelling through a network.
///
/// This is the unit of traffic at the *co-simulation boundary*: the
/// full-system simulator injects `NetMessage`s, and whichever network
/// implementation is plugged in (cycle-level NoC, abstract model, calibrated
/// model) reports their delivery. Inside the cycle-level NoC a message is
/// segmented into flits; abstract models treat it as an opaque unit with a
/// size.
///
/// # Example
///
/// ```
/// use ra_sim::{MessageClass, NetMessage, NodeId};
///
/// let m = NetMessage::new(1, NodeId(0), NodeId(5), MessageClass::Response, 72);
/// assert_eq!(m.size_bytes, 72);
/// assert_eq!(m.flits(16), 5); // 72 bytes over 16-byte links -> 5 flits
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct NetMessage {
    /// Unique id, assigned by the injector; used to match deliveries.
    pub id: MessageId,
    /// Source endpoint.
    pub src: NodeId,
    /// Destination endpoint.
    pub dst: NodeId,
    /// Protocol class (selects virtual network; calibration key).
    pub class: MessageClass,
    /// Payload size in bytes, including protocol header.
    pub size_bytes: u32,
}

impl NetMessage {
    /// Creates a message.
    pub fn new(
        id: MessageId,
        src: NodeId,
        dst: NodeId,
        class: MessageClass,
        size_bytes: u32,
    ) -> Self {
        NetMessage {
            id,
            src,
            dst,
            class,
            size_bytes,
        }
    }

    /// Number of flits this message occupies on links `flit_bytes` wide.
    ///
    /// Always at least 1 (the head flit carries routing info even for empty
    /// payloads).
    #[inline]
    pub fn flits(&self, flit_bytes: u32) -> u32 {
        debug_assert!(flit_bytes > 0, "flit size must be positive");
        self.size_bytes.div_ceil(flit_bytes).max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vnet_mapping_roundtrips() {
        for class in MessageClass::ALL {
            assert_eq!(MessageClass::from_vnet(class.vnet()), class);
        }
    }

    #[test]
    fn vnets_are_dense_and_distinct() {
        let mut seen = [false; MessageClass::COUNT];
        for class in MessageClass::ALL {
            assert!(!seen[class.vnet()], "duplicate vnet");
            seen[class.vnet()] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn flit_count_rounds_up() {
        let m = NetMessage::new(0, NodeId(0), NodeId(1), MessageClass::Request, 17);
        assert_eq!(m.flits(16), 2);
        assert_eq!(m.flits(17), 1);
        assert_eq!(m.flits(32), 1);
    }

    #[test]
    fn zero_size_message_still_occupies_one_flit() {
        let m = NetMessage::new(0, NodeId(0), NodeId(1), MessageClass::Request, 0);
        assert_eq!(m.flits(16), 1);
    }

    #[test]
    fn class_display_names() {
        assert_eq!(MessageClass::Request.to_string(), "req");
        assert_eq!(MessageClass::Response.to_string(), "rsp");
        assert_eq!(MessageClass::Coherence.to_string(), "coh");
    }
}
