//! Simulated time and endpoint identity.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

use serde::{Deserialize, Serialize};

/// A point in simulated time, measured in target clock cycles.
///
/// All simulators in the workspace advance in units of `Cycle`. The type is a
/// transparent wrapper around `u64` so arithmetic with plain integers stays
/// ergonomic, while the newtype prevents accidentally mixing cycle counts
/// with, say, flit counts.
///
/// # Example
///
/// ```
/// use ra_sim::Cycle;
///
/// let start = Cycle(100);
/// let end = start + 25;
/// assert_eq!(end, Cycle(125));
/// assert_eq!(end - start, 25);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Cycle(pub u64);

impl Cycle {
    /// Time zero: the instant every simulation starts at.
    pub const ZERO: Cycle = Cycle(0);

    /// Returns the raw cycle count.
    ///
    /// ```
    /// # use ra_sim::Cycle;
    /// assert_eq!(Cycle(42).as_u64(), 42);
    /// ```
    #[inline]
    pub const fn as_u64(self) -> u64 {
        self.0
    }

    /// Saturating subtraction; clamps at [`Cycle::ZERO`] instead of
    /// underflowing.
    ///
    /// ```
    /// # use ra_sim::Cycle;
    /// assert_eq!(Cycle(5).saturating_sub(Cycle(9)), 0);
    /// assert_eq!(Cycle(9).saturating_sub(Cycle(5)), 4);
    /// ```
    #[inline]
    pub const fn saturating_sub(self, rhs: Cycle) -> u64 {
        self.0.saturating_sub(rhs.0)
    }
}

impl fmt::Display for Cycle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}c", self.0)
    }
}

impl Add<u64> for Cycle {
    type Output = Cycle;

    #[inline]
    fn add(self, rhs: u64) -> Cycle {
        Cycle(self.0 + rhs)
    }
}

impl Add<Cycle> for Cycle {
    type Output = Cycle;

    #[inline]
    fn add(self, rhs: Cycle) -> Cycle {
        Cycle(self.0 + rhs.0)
    }
}

impl AddAssign<u64> for Cycle {
    #[inline]
    fn add_assign(&mut self, rhs: u64) {
        self.0 += rhs;
    }
}

/// Difference of two instants, in cycles.
///
/// # Panics
///
/// Panics in debug builds if `rhs > self` (time ran backwards).
impl Sub<Cycle> for Cycle {
    type Output = u64;

    #[inline]
    fn sub(self, rhs: Cycle) -> u64 {
        debug_assert!(self.0 >= rhs.0, "cycle subtraction went negative");
        self.0 - rhs.0
    }
}

impl PartialEq<u64> for Cycle {
    #[inline]
    fn eq(&self, other: &u64) -> bool {
        self.0 == *other
    }
}

impl From<u64> for Cycle {
    #[inline]
    fn from(value: u64) -> Self {
        Cycle(value)
    }
}

/// Identity of a network endpoint.
///
/// In the tiled-CMP target every tile (core + caches + directory slice) owns
/// one endpoint; memory controllers attach to the endpoints of the tiles at
/// the mesh edge. The id is an index into a topology's node array.
///
/// # Example
///
/// ```
/// use ra_sim::NodeId;
///
/// let n = NodeId(7);
/// assert_eq!(n.index(), 7);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct NodeId(pub u32);

impl NodeId {
    /// Returns the id as a `usize` index.
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// Builds a `NodeId` from an array index.
    ///
    /// # Panics
    ///
    /// Panics if `index` exceeds `u32::MAX` (no realistic target does).
    #[inline]
    pub fn from_index(index: usize) -> Self {
        NodeId(u32::try_from(index).expect("node index exceeds u32::MAX"))
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl From<u32> for NodeId {
    #[inline]
    fn from(value: u32) -> Self {
        NodeId(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cycle_arithmetic_roundtrips() {
        let c = Cycle(10) + 5;
        assert_eq!(c, Cycle(15));
        assert_eq!(c - Cycle(10), 5);
        let mut m = Cycle(0);
        m += 3;
        assert_eq!(m.as_u64(), 3);
    }

    #[test]
    fn cycle_display_is_compact() {
        assert_eq!(Cycle(12).to_string(), "12c");
    }

    #[test]
    fn cycle_orders_naturally() {
        assert!(Cycle(1) < Cycle(2));
        assert!(Cycle(2) <= Cycle(2));
    }

    #[test]
    fn cycle_saturating_sub_clamps() {
        assert_eq!(Cycle(1).saturating_sub(Cycle(100)), 0);
    }

    #[test]
    #[should_panic(expected = "cycle subtraction went negative")]
    fn cycle_sub_underflow_panics_in_debug() {
        let _ = Cycle(1) - Cycle(2);
    }

    #[test]
    fn node_id_index_roundtrips() {
        assert_eq!(NodeId::from_index(9).index(), 9);
        assert_eq!(NodeId::from_index(9), NodeId(9));
    }

    #[test]
    fn node_id_display_is_compact() {
        assert_eq!(NodeId(3).to_string(), "n3");
    }
}
