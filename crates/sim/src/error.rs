//! Error types shared by the workspace.

use std::error::Error;
use std::fmt;

/// Invalid configuration supplied to a simulator builder.
///
/// # Example
///
/// ```
/// use ra_sim::MeshShape;
///
/// let err = MeshShape::new(0, 4).unwrap_err();
/// assert!(err.to_string().contains("positive"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigError {
    message: String,
}

impl ConfigError {
    /// Creates an error with the given description.
    pub fn new(message: impl Into<String>) -> Self {
        ConfigError {
            message: message.into(),
        }
    }
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid configuration: {}", self.message)
    }
}

impl Error for ConfigError {}

/// Failure during a simulation run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// The run exceeded its cycle budget without reaching its goal
    /// (e.g. a drain that never completes points at a deadlock).
    Timeout {
        /// The budget that was exhausted.
        budget: u64,
        /// What the simulation was waiting for.
        waiting_for: String,
    },
    /// Internal invariant violated; indicates a simulator bug.
    Invariant(String),
    /// A component failed at runtime (e.g. a worker thread panicked or a
    /// fault-injected subsystem became unusable). Unlike [`Invariant`],
    /// this describes the *component* that broke, so supervisors can
    /// decide whether to degrade around it.
    ///
    /// [`Invariant`]: SimError::Invariant
    Fault {
        /// Which component failed (e.g. `"parallel engine worker 3"`).
        component: String,
        /// What happened.
        detail: String,
    },
    /// Bad configuration detected after construction.
    Config(ConfigError),
    /// The run was stopped from outside (e.g. a job-service cancellation
    /// flag). Unlike [`Timeout`], nothing went wrong inside the
    /// simulation: a supervisor simply asked it to stop.
    ///
    /// [`Timeout`]: SimError::Timeout
    Cancelled {
        /// The cycle at which the halt request was honoured.
        at_cycle: u64,
    },
}

impl SimError {
    /// True for failures a supervisor may reasonably retry: a component
    /// fault describes a *runtime* casualty (a crashed worker, an
    /// injected fault) that a fresh attempt can outlive, whereas
    /// timeouts, invariant violations, bad configuration, and external
    /// cancellations are deterministic — retrying reproduces them.
    pub fn is_transient(&self) -> bool {
        matches!(self, SimError::Fault { .. })
    }
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Timeout {
                budget,
                waiting_for,
            } => write!(
                f,
                "simulation exceeded {budget} cycles waiting for {waiting_for}"
            ),
            SimError::Invariant(msg) => write!(f, "simulator invariant violated: {msg}"),
            SimError::Fault { component, detail } => {
                write!(f, "component fault in {component}: {detail}")
            }
            SimError::Config(err) => err.fmt(f),
            SimError::Cancelled { at_cycle } => {
                write!(f, "simulation cancelled at cycle {at_cycle}")
            }
        }
    }
}

impl Error for SimError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SimError::Config(err) => Some(err),
            _ => None,
        }
    }
}

impl From<ConfigError> for SimError {
    fn from(err: ConfigError) -> Self {
        SimError::Config(err)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_display_and_chain() {
        let cfg = ConfigError::new("bad");
        let sim: SimError = cfg.clone().into();
        assert_eq!(sim.to_string(), "invalid configuration: bad");
        assert!(sim.source().is_some());

        let timeout = SimError::Timeout {
            budget: 100,
            waiting_for: "drain".into(),
        };
        assert!(timeout.to_string().contains("100"));
        assert!(timeout.source().is_none());

        let inv = SimError::Invariant("credits".into());
        assert!(inv.to_string().contains("credits"));

        let fault = SimError::Fault {
            component: "worker 3".into(),
            detail: "panicked".into(),
        };
        assert!(fault.to_string().contains("worker 3"));
        assert!(fault.to_string().contains("panicked"));
        assert!(fault.source().is_none());

        let cancelled = SimError::Cancelled { at_cycle: 512 };
        assert!(cancelled.to_string().contains("cancelled"));
        assert!(cancelled.to_string().contains("512"));
        assert!(cancelled.source().is_none());
    }

    #[test]
    fn only_component_faults_are_transient() {
        assert!(SimError::Fault {
            component: "worker".into(),
            detail: "panicked".into(),
        }
        .is_transient());
        for persistent in [
            SimError::Timeout {
                budget: 1,
                waiting_for: "drain".into(),
            },
            SimError::Invariant("credits".into()),
            SimError::Config(ConfigError::new("bad")),
            SimError::Cancelled { at_cycle: 0 },
        ] {
            assert!(!persistent.is_transient(), "{persistent}");
        }
    }

    #[test]
    fn error_types_are_send_sync() {
        fn assert_bounds<T: std::error::Error + Send + Sync + 'static>() {}
        assert_bounds::<ConfigError>();
        assert_bounds::<SimError>();
    }
}
