//! The network *port*: the co-simulation boundary between the full-system
//! simulator and any network implementation.

use crate::message::NetMessage;
use crate::time::Cycle;

/// A delivered message together with its delivery time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Delivery {
    /// The message that arrived.
    pub msg: NetMessage,
    /// The cycle at which the destination endpoint received it.
    pub at: Cycle,
}

/// The interface every network implementation exposes to the full system.
///
/// Both fidelity levels implement this trait:
///
/// * the **cycle-level NoC** (`ra-noc`) simulates each flit through router
///   pipelines and delivers messages when their tail flit is ejected;
/// * **abstract models** (`ra-netmodel`) compute a latency analytically and
///   deliver after that many cycles.
///
/// The reciprocal-abstraction framework (`ra-cosim`) exploits this symmetry:
/// the full-system simulator is generic over `Network`, so switching between
/// an isolated abstract model, lock-step detailed co-simulation, and the
/// quantum-calibrated reciprocal mode is a matter of plugging in a different
/// implementation — the full system code is identical in all modes, which is
/// exactly the property the paper's methodology needs for an apples-to-apples
/// accuracy comparison.
///
/// # Contract
///
/// * `inject` must be called with non-decreasing `now` values.
/// * `tick(now)` advances internal state to cycle `now`; implementations that
///   have no per-cycle state (pure latency models) may do nothing.
/// * `drain_delivered(now)` returns every message whose delivery time is
///   `<= now`, each exactly once, in a deterministic order.
pub trait Network {
    /// Offers a message to the network at cycle `now`.
    ///
    /// The network owns the message until it reappears from
    /// [`drain_delivered`](Network::drain_delivered).
    fn inject(&mut self, msg: NetMessage, now: Cycle);

    /// Advances the network's internal state to cycle `now`.
    fn tick(&mut self, now: Cycle);

    /// Removes and returns all messages delivered by cycle `now`.
    fn drain_delivered(&mut self, now: Cycle) -> Vec<Delivery>;

    /// Number of messages accepted but not yet delivered.
    ///
    /// Used by drivers to drain a network at end of simulation. The default
    /// is conservative for implementations that cannot count (none in this
    /// workspace); all provided implementations override it.
    fn in_flight(&self) -> usize {
        0
    }
}

impl<N: Network + ?Sized> Network for Box<N> {
    fn inject(&mut self, msg: NetMessage, now: Cycle) {
        (**self).inject(msg, now);
    }

    fn tick(&mut self, now: Cycle) {
        (**self).tick(now);
    }

    fn drain_delivered(&mut self, now: Cycle) -> Vec<Delivery> {
        (**self).drain_delivered(now)
    }

    fn in_flight(&self) -> usize {
        (**self).in_flight()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::MessageClass;
    use crate::time::NodeId;

    struct Instant(Vec<Delivery>);

    impl Network for Instant {
        fn inject(&mut self, msg: NetMessage, now: Cycle) {
            self.0.push(Delivery { msg, at: now });
        }
        fn tick(&mut self, _now: Cycle) {}
        fn drain_delivered(&mut self, _now: Cycle) -> Vec<Delivery> {
            std::mem::take(&mut self.0)
        }
        fn in_flight(&self) -> usize {
            self.0.len()
        }
    }

    #[test]
    fn boxed_network_forwards_calls() {
        let mut net: Box<dyn Network> = Box::new(Instant(Vec::new()));
        let msg = NetMessage::new(0, NodeId(0), NodeId(1), MessageClass::Request, 8);
        net.inject(msg, Cycle(3));
        assert_eq!(net.in_flight(), 1);
        net.tick(Cycle(3));
        let out = net.drain_delivered(Cycle(3));
        assert_eq!(out, vec![Delivery { msg, at: Cycle(3) }]);
        assert_eq!(net.in_flight(), 0);
    }
}
