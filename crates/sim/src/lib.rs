//! Simulation primitives shared across the reciprocal-abstraction workspace.
//!
//! This crate defines the vocabulary that every other crate in the workspace
//! speaks:
//!
//! * [`Cycle`] — the simulated-time unit every component advances in;
//! * [`NodeId`] — a network endpoint (one per CMP tile, plus memory
//!   controllers);
//! * [`NetMessage`] and [`MessageClass`] — the unit of traffic exchanged
//!   between the full-system simulator and any network implementation;
//! * [`Network`] — the *port* trait implemented both by the cycle-level NoC
//!   (`ra-noc`) and by every abstract latency model (`ra-netmodel`), which is
//!   what lets the co-simulation framework swap fidelity levels behind one
//!   interface;
//! * streaming [`stats`] used to report every figure in the evaluation;
//! * a small deterministic [`rng`] so every simulator in the workspace is
//!   reproducible from a seed without depending on platform entropy.
//!
//! # Example
//!
//! Drive any [`Network`] implementation with a handful of messages and read
//! back delivery times:
//!
//! ```
//! use ra_sim::{Cycle, MessageClass, NetMessage, Network, NodeId};
//!
//! /// A toy network that delivers everything after a fixed 5-cycle delay.
//! struct Wire(Vec<(NetMessage, Cycle)>);
//!
//! impl Network for Wire {
//!     fn inject(&mut self, msg: NetMessage, now: Cycle) {
//!         self.0.push((msg, now + 5));
//!     }
//!     fn tick(&mut self, _now: Cycle) {}
//!     fn drain_delivered(&mut self, now: Cycle) -> Vec<ra_sim::Delivery> {
//!         let (ready, rest): (Vec<_>, Vec<_>) = self.0.drain(..).partition(|(_, at)| *at <= now);
//!         self.0 = rest;
//!         ready
//!             .into_iter()
//!             .map(|(msg, at)| ra_sim::Delivery { msg, at })
//!             .collect()
//!     }
//! }
//!
//! let mut net = Wire(Vec::new());
//! let msg = NetMessage::new(0, NodeId(0), NodeId(3), MessageClass::Request, 8);
//! net.inject(msg, Cycle(10));
//! net.tick(Cycle(15));
//! let out = net.drain_delivered(Cycle(15));
//! assert_eq!(out.len(), 1);
//! assert_eq!(out[0].at, Cycle(15));
//! ```

pub mod config;
pub mod error;
pub mod message;
pub mod network;
pub mod rng;
pub mod stats;
pub mod time;

pub use config::MeshShape;
pub use error::{ConfigError, SimError};
pub use message::{MessageClass, MessageId, NetMessage};
pub use network::{Delivery, Network};
pub use rng::Pcg32;
pub use stats::{Histogram, LatencyTable, Summary};
pub use time::{Cycle, NodeId};
