//! Deterministic pseudo-random number generation.
//!
//! Every stochastic component in the workspace (traffic generators, workload
//! profiles, allocator tie-breaking where configured) owns its own [`Pcg32`]
//! stream seeded from the experiment seed, so simulations are exactly
//! reproducible and independent components do not perturb each other's
//! streams. We implement PCG-XSH-RR 64/32 directly rather than pulling the
//! full `rand` machinery into the hot simulation loops; the `rand` crate is
//! still used at the workload-construction layer where distribution adaptors
//! are convenient.

use serde::{Deserialize, Serialize};

const MULTIPLIER: u64 = 6364136223846793005;

/// A PCG-XSH-RR 64/32 generator: 64-bit state, 32-bit output.
///
/// Small, fast, statistically solid for simulation purposes, and —
/// critically — fully deterministic across platforms.
///
/// # Example
///
/// ```
/// use ra_sim::Pcg32;
///
/// let mut a = Pcg32::new(42, 0);
/// let mut b = Pcg32::new(42, 0);
/// assert_eq!(a.next_u32(), b.next_u32()); // same seed, same stream
///
/// let mut c = Pcg32::new(42, 1);
/// assert_ne!(a.next_u32(), c.next_u32()); // different stream id
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Pcg32 {
    state: u64,
    inc: u64,
}

impl Pcg32 {
    /// Creates a generator from a seed and a stream id.
    ///
    /// Distinct `(seed, stream)` pairs produce statistically independent
    /// sequences; components derive their stream id from a stable role index
    /// so adding a component never shifts another's stream.
    pub fn new(seed: u64, stream: u64) -> Self {
        let mut rng = Pcg32 {
            state: 0,
            inc: (stream << 1) | 1,
        };
        rng.next_u32();
        rng.state = rng.state.wrapping_add(seed);
        rng.next_u32();
        rng
    }

    /// Next 32 uniformly random bits.
    #[inline]
    pub fn next_u32(&mut self) -> u32 {
        let old = self.state;
        self.state = old.wrapping_mul(MULTIPLIER).wrapping_add(self.inc);
        let xorshifted = (((old >> 18) ^ old) >> 27) as u32;
        let rot = (old >> 59) as u32;
        xorshifted.rotate_right(rot)
    }

    /// Next 64 uniformly random bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        (u64::from(self.next_u32()) << 32) | u64::from(self.next_u32())
    }

    /// Uniform integer in `[0, bound)` without modulo bias (Lemire's method).
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    #[inline]
    pub fn below(&mut self, bound: u32) -> u32 {
        assert!(bound > 0, "below() requires a positive bound");
        loop {
            let x = self.next_u32();
            let m = u64::from(x) * u64::from(bound);
            let low = m as u32;
            if low >= bound || low >= bound.wrapping_neg() % bound {
                return (m >> 32) as u32;
            }
        }
    }

    /// Uniform `f64` in `[0, 1)`.
    #[inline]
    pub fn uniform(&mut self) -> f64 {
        // 53 random bits scaled into the unit interval.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli trial: `true` with probability `p` (clamped to `[0, 1]`).
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        self.uniform() < p
    }

    /// Geometric inter-arrival sample with success probability `p`,
    /// i.e. the number of failures before the first success (>= 0).
    ///
    /// Used by Bernoulli injection processes to skip ahead to the next
    /// injection cycle in O(1).
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `(0, 1]`.
    #[inline]
    pub fn geometric(&mut self, p: f64) -> u64 {
        assert!(p > 0.0 && p <= 1.0, "geometric requires p in (0, 1]");
        if p >= 1.0 {
            return 0;
        }
        let u = self.uniform().max(f64::MIN_POSITIVE);
        (u.ln() / (1.0 - p).ln()) as u64
    }

    /// Forks an independent generator for a sub-component.
    ///
    /// The child stream is derived from fresh output of `self`, so repeated
    /// forks yield distinct streams.
    pub fn fork(&mut self, role: u64) -> Pcg32 {
        let seed = self.next_u64();
        Pcg32::new(seed, role.wrapping_mul(2).wrapping_add(1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_sequence() {
        let mut a = Pcg32::new(7, 3);
        let mut b = Pcg32::new(7, 3);
        for _ in 0..100 {
            assert_eq!(a.next_u32(), b.next_u32());
        }
    }

    #[test]
    fn different_streams_diverge() {
        let mut a = Pcg32::new(7, 0);
        let mut b = Pcg32::new(7, 1);
        let same = (0..100).filter(|_| a.next_u32() == b.next_u32()).count();
        assert!(same < 3, "streams should be nearly disjoint, {same} matches");
    }

    #[test]
    fn below_respects_bound() {
        let mut rng = Pcg32::new(1, 0);
        for _ in 0..10_000 {
            assert!(rng.below(7) < 7);
        }
    }

    #[test]
    fn below_covers_all_residues() {
        let mut rng = Pcg32::new(2, 0);
        let mut seen = [0u32; 5];
        for _ in 0..5_000 {
            seen[rng.below(5) as usize] += 1;
        }
        for (i, &count) in seen.iter().enumerate() {
            assert!(count > 800, "residue {i} under-sampled: {count}");
        }
    }

    #[test]
    #[should_panic(expected = "positive bound")]
    fn below_zero_panics() {
        Pcg32::new(1, 0).below(0);
    }

    #[test]
    fn uniform_is_in_unit_interval_and_centered() {
        let mut rng = Pcg32::new(3, 0);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let u = rng.uniform();
            assert!((0.0..1.0).contains(&u));
            sum += u;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean} far from 0.5");
    }

    #[test]
    fn geometric_mean_matches_theory() {
        let mut rng = Pcg32::new(4, 0);
        let p = 0.25;
        let n = 20_000;
        let total: u64 = (0..n).map(|_| rng.geometric(p)).sum();
        let mean = total as f64 / n as f64;
        let expect = (1.0 - p) / p; // 3.0
        assert!(
            (mean - expect).abs() < 0.15,
            "geometric mean {mean} vs {expect}"
        );
    }

    #[test]
    fn geometric_p_one_is_always_zero() {
        let mut rng = Pcg32::new(5, 0);
        assert_eq!(rng.geometric(1.0), 0);
    }

    #[test]
    fn fork_produces_independent_streams() {
        let mut parent = Pcg32::new(9, 0);
        let mut a = parent.fork(0);
        let mut b = parent.fork(1);
        let same = (0..100).filter(|_| a.next_u32() == b.next_u32()).count();
        assert!(same < 3);
    }
}
