//! Streaming statistics used to report every figure in the evaluation.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::message::MessageClass;

/// Streaming summary of a scalar series: count, mean, variance, min, max.
///
/// Uses Welford's online algorithm, so it is numerically stable over the
/// hundreds of millions of samples long co-simulations produce.
///
/// # Example
///
/// ```
/// use ra_sim::Summary;
///
/// let mut s = Summary::new();
/// for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
///     s.record(x);
/// }
/// assert_eq!(s.count(), 8);
/// assert!((s.mean() - 5.0).abs() < 1e-12);
/// assert!((s.std_dev() - 2.138089935299395).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Summary {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Summary {
    /// Creates an empty summary.
    pub fn new() -> Self {
        Summary {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Reconstructs a summary from previously exported state — the
    /// persistence counterpart of [`count`](Summary::count),
    /// [`mean`](Summary::mean), [`m2`](Summary::m2),
    /// [`min`](Summary::min), [`max`](Summary::max). With `count == 0`
    /// the other arguments are ignored and an empty summary is returned,
    /// so serializers may encode empty summaries without the non-finite
    /// min/max sentinels.
    pub fn from_parts(count: u64, mean: f64, m2: f64, min: f64, max: f64) -> Self {
        if count == 0 {
            return Summary::new();
        }
        Summary {
            count,
            mean,
            m2,
            min,
            max,
        }
    }

    /// Adds one sample.
    #[inline]
    pub fn record(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Merges another summary into this one (parallel-friendly).
    pub fn merge(&mut self, other: &Summary) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of samples recorded.
    #[inline]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Arithmetic mean, or 0 if empty.
    #[inline]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Welford's running sum of squared deviations — exported (with
    /// [`from_parts`](Summary::from_parts)) so a summary survives a
    /// serialize/deserialize round trip bit-exactly.
    #[inline]
    pub fn m2(&self) -> f64 {
        self.m2
    }

    /// Sample variance (n-1 denominator), or 0 with fewer than 2 samples.
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest sample, or +inf if empty.
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest sample, or -inf if empty.
    pub fn max(&self) -> f64 {
        self.max
    }

    /// True if no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }
}

impl fmt::Display for Summary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.count == 0 {
            return f.write_str("n=0");
        }
        write!(
            f,
            "n={} mean={:.2} sd={:.2} min={:.1} max={:.1}",
            self.count,
            self.mean(),
            self.std_dev(),
            self.min,
            self.max
        )
    }
}

/// Fixed-width-bin histogram with an overflow bucket.
///
/// Used for packet-latency distributions; bins are `[i*width, (i+1)*width)`.
///
/// # Example
///
/// ```
/// use ra_sim::Histogram;
///
/// let mut h = Histogram::new(10, 8); // 8 bins of width 10
/// h.record(5);
/// h.record(25);
/// h.record(1_000); // overflow
/// assert_eq!(h.bin_count(0), 1);
/// assert_eq!(h.bin_count(2), 1);
/// assert_eq!(h.overflow(), 1);
/// assert_eq!(h.total(), 3);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Histogram {
    width: u64,
    bins: Vec<u64>,
    overflow: u64,
}

impl Histogram {
    /// Creates a histogram with `bins` buckets of `width` each.
    ///
    /// # Panics
    ///
    /// Panics if `width == 0` or `bins == 0`.
    pub fn new(width: u64, bins: usize) -> Self {
        assert!(width > 0, "histogram bin width must be positive");
        assert!(bins > 0, "histogram must have at least one bin");
        Histogram {
            width,
            bins: vec![0; bins],
            overflow: 0,
        }
    }

    /// Adds one sample.
    #[inline]
    pub fn record(&mut self, value: u64) {
        let idx = (value / self.width) as usize;
        match self.bins.get_mut(idx) {
            Some(slot) => *slot += 1,
            None => self.overflow += 1,
        }
    }

    /// Count in bin `i` (0 if out of range).
    pub fn bin_count(&self, i: usize) -> u64 {
        self.bins.get(i).copied().unwrap_or(0)
    }

    /// Count of samples beyond the last bin.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Total samples recorded.
    pub fn total(&self) -> u64 {
        self.bins.iter().sum::<u64>() + self.overflow
    }

    /// Approximate quantile `q` in `[0, 1]` from bin midpoints.
    ///
    /// Returns `None` if the histogram is empty. Overflow samples are
    /// attributed to the upper edge of the last bin.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        let total = self.total();
        if total == 0 {
            return None;
        }
        let target = (q.clamp(0.0, 1.0) * total as f64).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (i, &count) in self.bins.iter().enumerate() {
            seen += count;
            if seen >= target {
                return Some((i as f64 + 0.5) * self.width as f64);
            }
        }
        Some((self.bins.len() as f64) * self.width as f64)
    }

    /// Merges another histogram with identical geometry.
    ///
    /// # Panics
    ///
    /// Panics if the two histograms have different width or bin count.
    pub fn merge(&mut self, other: &Histogram) {
        assert_eq!(self.width, other.width, "histogram width mismatch");
        assert_eq!(self.bins.len(), other.bins.len(), "histogram bins mismatch");
        for (a, b) in self.bins.iter_mut().zip(&other.bins) {
            *a += b;
        }
        self.overflow += other.overflow;
    }
}

/// Per-(class, hop-distance) latency table.
///
/// This is the measurement the detailed NoC hands back to the calibration
/// loop: average observed latency keyed by message class and hop count. It is
/// also the shape of the calibrated abstract model's parameter table, which
/// is what makes the reciprocal exchange a simple fit.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LatencyTable {
    max_hops: usize,
    cells: Vec<Summary>, // [class][hops] flattened
}

impl LatencyTable {
    /// Creates a table covering hop distances `0..=max_hops`.
    pub fn new(max_hops: usize) -> Self {
        LatencyTable {
            max_hops,
            cells: vec![Summary::new(); MessageClass::COUNT * (max_hops + 1)],
        }
    }

    #[inline]
    fn idx(&self, class: MessageClass, hops: usize) -> usize {
        class.vnet() * (self.max_hops + 1) + hops.min(self.max_hops)
    }

    /// Records one observed latency.
    #[inline]
    pub fn record(&mut self, class: MessageClass, hops: usize, latency: f64) {
        let idx = self.idx(class, hops);
        self.cells[idx].record(latency);
    }

    /// The summary cell for `(class, hops)`; hop counts beyond `max_hops`
    /// clamp to the last cell.
    pub fn cell(&self, class: MessageClass, hops: usize) -> &Summary {
        &self.cells[self.idx(class, hops)]
    }

    /// Largest hop distance tracked distinctly.
    pub fn max_hops(&self) -> usize {
        self.max_hops
    }

    /// Mean latency across all cells of a class, weighted by sample count.
    pub fn class_mean(&self, class: MessageClass) -> Option<f64> {
        let base = class.vnet() * (self.max_hops + 1);
        let cells = &self.cells[base..base + self.max_hops + 1];
        let total: u64 = cells.iter().map(Summary::count).sum();
        if total == 0 {
            return None;
        }
        let sum: f64 = cells.iter().map(|c| c.mean() * c.count() as f64).sum();
        Some(sum / total as f64)
    }

    /// Merges another table with identical geometry.
    ///
    /// # Panics
    ///
    /// Panics if `max_hops` differs.
    pub fn merge(&mut self, other: &LatencyTable) {
        assert_eq!(self.max_hops, other.max_hops, "latency table shape mismatch");
        for (a, b) in self.cells.iter_mut().zip(&other.cells) {
            a.merge(b);
        }
    }

    /// Resets all cells to empty (used at calibration-quantum boundaries).
    pub fn clear(&mut self) {
        for cell in &mut self.cells {
            *cell = Summary::new();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_welford_matches_naive() {
        let data = [1.5, 2.5, 3.5, 10.0, -4.0, 0.0];
        let mut s = Summary::new();
        for &x in &data {
            s.record(x);
        }
        let naive_mean = data.iter().sum::<f64>() / data.len() as f64;
        let naive_var = data.iter().map(|x| (x - naive_mean).powi(2)).sum::<f64>()
            / (data.len() - 1) as f64;
        assert!((s.mean() - naive_mean).abs() < 1e-12);
        assert!((s.variance() - naive_var).abs() < 1e-12);
        assert_eq!(s.min(), -4.0);
        assert_eq!(s.max(), 10.0);
    }

    #[test]
    fn summary_merge_equals_sequential() {
        let mut all = Summary::new();
        let mut a = Summary::new();
        let mut b = Summary::new();
        for i in 0..100 {
            let x = (i as f64).sin() * 10.0;
            all.record(x);
            if i % 2 == 0 {
                a.record(x);
            } else {
                b.record(x);
            }
        }
        a.merge(&b);
        assert_eq!(a.count(), all.count());
        assert!((a.mean() - all.mean()).abs() < 1e-9);
        assert!((a.variance() - all.variance()).abs() < 1e-9);
    }

    #[test]
    fn summary_merge_with_empty_is_identity() {
        let mut a = Summary::new();
        a.record(3.0);
        let before = a;
        a.merge(&Summary::new());
        assert_eq!(a, before);
        let mut e = Summary::new();
        e.merge(&before);
        assert_eq!(e, before);
    }

    #[test]
    fn summary_from_parts_round_trips_bit_exactly() {
        let mut s = Summary::new();
        for x in [1.5, -2.25, 1e-17, 42.0, 0.1] {
            s.record(x);
        }
        let back = Summary::from_parts(s.count(), s.mean(), s.m2(), s.min(), s.max());
        assert_eq!(back, s);
        // Degenerate empty round trip via the count==0 escape hatch.
        assert_eq!(Summary::from_parts(0, 123.0, 4.0, 5.0, 6.0), Summary::new());
    }

    #[test]
    fn empty_summary_defaults() {
        let s = Summary::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert!(s.is_empty());
        assert_eq!(s.to_string(), "n=0");
    }

    #[test]
    fn histogram_bins_and_overflow() {
        let mut h = Histogram::new(5, 4);
        for v in [0, 4, 5, 19, 20, 100] {
            h.record(v);
        }
        assert_eq!(h.bin_count(0), 2);
        assert_eq!(h.bin_count(1), 1);
        assert_eq!(h.bin_count(3), 1);
        assert_eq!(h.overflow(), 2);
        assert_eq!(h.total(), 6);
    }

    #[test]
    fn histogram_quantile_tracks_distribution() {
        let mut h = Histogram::new(1, 100);
        for v in 0..100u64 {
            h.record(v);
        }
        let median = h.quantile(0.5).unwrap();
        assert!((median - 49.5).abs() <= 1.0, "median was {median}");
        assert_eq!(Histogram::new(1, 4).quantile(0.5), None);
    }

    #[test]
    fn histogram_merge_adds_counts() {
        let mut a = Histogram::new(2, 3);
        let mut b = Histogram::new(2, 3);
        a.record(1);
        b.record(1);
        b.record(99);
        a.merge(&b);
        assert_eq!(a.bin_count(0), 2);
        assert_eq!(a.overflow(), 1);
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn histogram_merge_shape_mismatch_panics() {
        Histogram::new(2, 3).merge(&Histogram::new(3, 3));
    }

    #[test]
    fn latency_table_clamps_hops() {
        let mut t = LatencyTable::new(4);
        t.record(MessageClass::Request, 9, 50.0);
        assert_eq!(t.cell(MessageClass::Request, 4).count(), 1);
        assert_eq!(t.cell(MessageClass::Request, 9).count(), 1); // clamped view
    }

    #[test]
    fn latency_table_class_mean_weights_by_count() {
        let mut t = LatencyTable::new(2);
        t.record(MessageClass::Response, 1, 10.0);
        t.record(MessageClass::Response, 1, 10.0);
        t.record(MessageClass::Response, 2, 40.0);
        let mean = t.class_mean(MessageClass::Response).unwrap();
        assert!((mean - 20.0).abs() < 1e-12);
        assert_eq!(t.class_mean(MessageClass::Request), None);
    }

    #[test]
    fn latency_table_clear_and_merge() {
        let mut a = LatencyTable::new(2);
        let mut b = LatencyTable::new(2);
        a.record(MessageClass::Request, 1, 5.0);
        b.record(MessageClass::Request, 1, 15.0);
        a.merge(&b);
        assert_eq!(a.cell(MessageClass::Request, 1).count(), 2);
        assert!((a.cell(MessageClass::Request, 1).mean() - 10.0).abs() < 1e-12);
        a.clear();
        assert!(a.cell(MessageClass::Request, 1).is_empty());
    }
}
