//! Adaptive admission control: queue-pressure sensing, per-client
//! token-bucket quotas, and the two-level brownout ladder.
//!
//! Everything here is *pure state* — no clocks, no locks, no I/O. Callers
//! inject time as nanoseconds ([`TokenBucket::try_take`]) or feed
//! measured durations ([`AdmissionController::observe_queue_delay`]), so
//! the unit tests drive every transition deterministically and the
//! scheduler owns all timing, exactly as `health.rs` does for the relay.
//!
//! # Pressure and brownout
//!
//! The controller tracks two saturation signals and takes their max:
//!
//! * **queue fraction** — `queued / capacity`, the instantaneous
//!   backlog;
//! * **delay ratio** — an EWMA of the queue delay jobs actually
//!   experienced (reported by workers at pick-up), over the configured
//!   target delay.
//!
//! Sustained pressure ≥ `brownout1_pressure` enters Brownout-1 (new
//! low-priority degradable jobs are planned at a cheaper fidelity);
//! sustained pressure ≥ `brownout2_pressure` enters Brownout-2 (every
//! degradable job is planned cheap). Exit requires the pressure to stay
//! ≤ `exit_pressure` for `exit_after` consecutive observations — the
//! hysteresis that keeps a flapping load from oscillating the ladder.

use std::time::Duration;

/// Exponentially-weighted moving average with a priming first sample.
#[derive(Debug, Clone)]
pub struct Ewma {
    alpha: f64,
    value: f64,
    primed: bool,
}

impl Ewma {
    /// A fresh average blending each sample in with weight `alpha`
    /// (clamped to `(0, 1]`). The first observation sets the value
    /// directly.
    pub fn new(alpha: f64) -> Ewma {
        Ewma {
            alpha: if alpha > 0.0 { alpha.min(1.0) } else { 1.0 },
            value: 0.0,
            primed: false,
        }
    }

    /// Blends `sample` in.
    pub fn observe(&mut self, sample: f64) {
        if !sample.is_finite() {
            return;
        }
        if self.primed {
            self.value += self.alpha * (sample - self.value);
        } else {
            self.value = sample;
            self.primed = true;
        }
    }

    /// Current smoothed value (0 before the first observation).
    pub fn value(&self) -> f64 {
        self.value
    }

    /// Whether at least one sample has landed.
    pub fn primed(&self) -> bool {
        self.primed
    }
}

impl Default for Ewma {
    /// `alpha = 0.2`, matching [`AdmissionConfig::default`].
    fn default() -> Self {
        Ewma::new(0.2)
    }
}

/// A per-client token bucket: `capacity` tokens, refilled continuously at
/// `refill_per_sec`. Starts full, so a fresh client gets its burst.
#[derive(Debug, Clone)]
pub struct TokenBucket {
    capacity: f64,
    refill_per_sec: f64,
    tokens: f64,
    last_ns: u64,
}

impl TokenBucket {
    /// A full bucket. `capacity` is clamped to ≥ 1 token; a
    /// non-positive `refill_per_sec` means the bucket never refills.
    pub fn new(capacity: f64, refill_per_sec: f64) -> TokenBucket {
        let capacity = capacity.max(1.0);
        TokenBucket {
            capacity,
            refill_per_sec: refill_per_sec.max(0.0),
            tokens: capacity,
            last_ns: 0,
        }
    }

    /// Advances the refill clock to `now_ns`. Time never moves the bucket
    /// backwards: a stale (smaller) timestamp refills nothing, and the
    /// balance saturates at `capacity` no matter how long the idle gap —
    /// the arithmetic stays exact under `f64` because elapsed nanoseconds
    /// convert through seconds before multiplying.
    fn refill(&mut self, now_ns: u64) {
        if now_ns <= self.last_ns {
            return;
        }
        let elapsed_s = (now_ns - self.last_ns) as f64 / 1e9;
        self.tokens = (self.tokens + elapsed_s * self.refill_per_sec).min(self.capacity);
        self.last_ns = now_ns;
    }

    /// Takes `cost` tokens if the balance (after refilling to `now_ns`)
    /// covers it. Returns whether the take succeeded; a failed take
    /// charges nothing.
    pub fn try_take(&mut self, now_ns: u64, cost: f64) -> bool {
        self.refill(now_ns);
        if self.tokens + 1e-9 >= cost {
            self.tokens -= cost;
            true
        } else {
            false
        }
    }

    /// Current balance after refilling to `now_ns`.
    pub fn tokens(&mut self, now_ns: u64) -> f64 {
        self.refill(now_ns);
        self.tokens
    }
}

/// Where the service sits on the brownout ladder.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default)]
pub enum BrownoutLevel {
    /// No degradation: every job runs at the fidelity it asked for.
    #[default]
    Normal,
    /// New low-priority degradable jobs are planned at reduced fidelity.
    Brownout1,
    /// Every degradable job is planned at reduced fidelity.
    Brownout2,
}

impl BrownoutLevel {
    /// Numeric level for stats rows (0/1/2).
    pub fn level(self) -> u8 {
        match self {
            BrownoutLevel::Normal => 0,
            BrownoutLevel::Brownout1 => 1,
            BrownoutLevel::Brownout2 => 2,
        }
    }

    fn up(self) -> BrownoutLevel {
        match self {
            BrownoutLevel::Normal => BrownoutLevel::Brownout1,
            _ => BrownoutLevel::Brownout2,
        }
    }

    fn down(self) -> BrownoutLevel {
        match self {
            BrownoutLevel::Brownout2 => BrownoutLevel::Brownout1,
            _ => BrownoutLevel::Normal,
        }
    }
}

/// Tuning for the [`AdmissionController`].
#[derive(Debug, Clone)]
pub struct AdmissionConfig {
    /// Queue delay at which the delay ratio reads 1.0.
    pub delay_target: Duration,
    /// EWMA weight for the queue-delay signal.
    pub ewma_alpha: f64,
    /// Sustained pressure that enters Brownout-1 from Normal.
    pub brownout1_pressure: f64,
    /// Sustained pressure that escalates Brownout-1 to Brownout-2.
    pub brownout2_pressure: f64,
    /// Pressure the service must stay at or below to step back down.
    pub exit_pressure: f64,
    /// Consecutive over-threshold observations required to step up.
    pub enter_after: u32,
    /// Consecutive under-`exit_pressure` observations required to step
    /// down (the exit hysteresis).
    pub exit_after: u32,
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        AdmissionConfig {
            delay_target: Duration::from_millis(500),
            ewma_alpha: 0.2,
            brownout1_pressure: 0.75,
            brownout2_pressure: 1.5,
            exit_pressure: 0.4,
            enter_after: 3,
            exit_after: 8,
        }
    }
}

/// A brownout transition worth reporting on the obs stream.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LevelChange {
    /// The level left behind.
    pub from: BrownoutLevel,
    /// The level entered.
    pub to: BrownoutLevel,
    /// The pressure reading that decided the step.
    pub pressure: f64,
}

/// The brownout state machine: feed it pressure observations, watch for
/// level changes.
#[derive(Debug, Clone)]
pub struct AdmissionController {
    cfg: AdmissionConfig,
    delay: Ewma,
    level: BrownoutLevel,
    /// Consecutive observations at or above the next level's threshold.
    hot: u32,
    /// Consecutive observations at or below the exit threshold.
    cool: u32,
}

impl Default for AdmissionController {
    fn default() -> Self {
        AdmissionController::new(AdmissionConfig::default())
    }
}

impl AdmissionController {
    /// A controller at Normal with no delay history.
    pub fn new(cfg: AdmissionConfig) -> AdmissionController {
        AdmissionController {
            delay: Ewma::new(cfg.ewma_alpha),
            cfg,
            level: BrownoutLevel::Normal,
            hot: 0,
            cool: 0,
        }
    }

    /// Feeds one measured queue delay (reported by a worker at pick-up).
    pub fn observe_queue_delay(&mut self, delay: Duration) {
        self.delay.observe(delay.as_secs_f64());
    }

    /// Smoothed queue delay, for stats rows.
    pub fn queue_delay(&self) -> Duration {
        Duration::from_secs_f64(self.delay.value().max(0.0))
    }

    /// Instantaneous pressure: max of the backlog fraction and the
    /// smoothed delay over its target.
    pub fn pressure(&self, queued: usize, capacity: usize) -> f64 {
        let queue_frac = queued as f64 / capacity.max(1) as f64;
        let delay_ratio = self.delay.value() / self.cfg.delay_target.as_secs_f64().max(1e-9);
        queue_frac.max(delay_ratio)
    }

    /// Current ladder position.
    pub fn level(&self) -> BrownoutLevel {
        self.level
    }

    /// Takes one pressure observation and possibly steps the ladder.
    /// "Sustained" means `enter_after` consecutive hot observations (resp.
    /// `exit_after` cool ones); readings in between reset both streaks,
    /// so a flapping load holds the current level.
    pub fn update(&mut self, queued: usize, capacity: usize) -> Option<LevelChange> {
        let pressure = self.pressure(queued, capacity);
        let enter_threshold = match self.level {
            BrownoutLevel::Normal => Some(self.cfg.brownout1_pressure),
            BrownoutLevel::Brownout1 => Some(self.cfg.brownout2_pressure),
            BrownoutLevel::Brownout2 => None,
        };
        if enter_threshold.is_some_and(|t| pressure >= t) {
            self.cool = 0;
            self.hot += 1;
            if self.hot >= self.cfg.enter_after.max(1) {
                self.hot = 0;
                let from = self.level;
                self.level = self.level.up();
                return Some(LevelChange {
                    from,
                    to: self.level,
                    pressure,
                });
            }
        } else if self.level != BrownoutLevel::Normal && pressure <= self.cfg.exit_pressure {
            self.hot = 0;
            self.cool += 1;
            if self.cool >= self.cfg.exit_after.max(1) {
                self.cool = 0;
                let from = self.level;
                self.level = self.level.down();
                return Some(LevelChange {
                    from,
                    to: self.level,
                    pressure,
                });
            }
        } else {
            self.hot = 0;
            self.cool = 0;
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fast_config() -> AdmissionConfig {
        AdmissionConfig {
            enter_after: 2,
            exit_after: 3,
            ..AdmissionConfig::default()
        }
    }

    #[test]
    fn ewma_primes_on_first_sample_then_smooths() {
        let mut e = Ewma::new(0.5);
        assert_eq!(e.value(), 0.0);
        e.observe(10.0);
        assert_eq!(e.value(), 10.0, "first sample primes directly");
        e.observe(20.0);
        assert!((e.value() - 15.0).abs() < 1e-12);
        e.observe(f64::NAN);
        assert!((e.value() - 15.0).abs() < 1e-12, "NaN samples are ignored");
    }

    #[test]
    fn token_bucket_charges_and_refuses_when_empty() {
        let mut b = TokenBucket::new(2.0, 1.0);
        assert!(b.try_take(0, 1.0));
        assert!(b.try_take(0, 1.0));
        assert!(!b.try_take(0, 1.0), "empty bucket refuses");
        assert!(b.tokens(0) < 1e-9);
        // 500ms refills half a token — still not enough for a whole one.
        assert!(!b.try_take(500_000_000, 1.0));
        // Another 500ms completes it.
        assert!(b.try_take(1_000_000_000, 1.0));
    }

    #[test]
    fn token_bucket_refill_saturates_at_capacity() {
        // The satellite case: refill arithmetic at saturation. A long
        // idle gap must cap at capacity, not accumulate; repeated refills
        // with the same timestamp must not double-credit; and a stale
        // timestamp must not move the clock backwards.
        let mut b = TokenBucket::new(4.0, 1_000.0);
        assert!(b.try_take(0, 4.0));
        // An hour of idle at 1000 tokens/sec: clamps to 4, exactly.
        assert!((b.tokens(3_600_000_000_000) - 4.0).abs() < 1e-9);
        assert!((b.tokens(3_600_000_000_000) - 4.0).abs() < 1e-9, "same-instant refill is a no-op");
        assert!((b.tokens(3_599_000_000_000) - 4.0).abs() < 1e-9, "stale clock refills nothing");
        assert!(b.try_take(3_600_000_000_000, 4.0));
        assert!(!b.try_take(3_600_000_000_000, 0.5));
        // A failed take charges nothing: the sub-token refill below is
        // still there afterwards.
        assert!(!b.try_take(3_600_000_200_000, 1.0));
        assert!((b.tokens(3_600_000_200_000) - 0.2).abs() < 1e-9);
    }

    #[test]
    fn token_bucket_never_refills_with_zero_rate() {
        let mut b = TokenBucket::new(1.0, 0.0);
        assert!(b.try_take(0, 1.0));
        assert!(!b.try_take(u64::MAX, 1.0), "rate 0 never refills");
    }

    #[test]
    fn sustained_pressure_steps_up_one_level_at_a_time() {
        let mut c = AdmissionController::new(fast_config());
        // One hot reading is not sustained.
        assert_eq!(c.update(60, 64), None);
        let change = c.update(60, 64).expect("second consecutive hot reading enters");
        assert_eq!((change.from, change.to), (BrownoutLevel::Normal, BrownoutLevel::Brownout1));
        assert_eq!(c.level(), BrownoutLevel::Brownout1);
        // Escalation to Brownout-2 needs the higher threshold, sustained.
        assert_eq!(c.update(60, 64), None, "0.94 is below the brownout2 threshold");
        assert_eq!(c.update(128, 64), None);
        let change = c.update(128, 64).expect("sustained 2.0 escalates");
        assert_eq!(change.to, BrownoutLevel::Brownout2);
        // At the top there is nowhere to go.
        assert_eq!(c.update(128, 64), None);
    }

    #[test]
    fn exit_needs_hysteresis_and_flapping_holds_the_level() {
        let mut c = AdmissionController::new(fast_config());
        c.update(64, 64);
        c.update(64, 64);
        assert_eq!(c.level(), BrownoutLevel::Brownout1);
        // Two cool readings, then a hot one: the streak resets.
        assert_eq!(c.update(0, 64), None);
        assert_eq!(c.update(0, 64), None);
        assert_eq!(c.update(40, 64), None, "mid-band reading resets the cool streak");
        assert_eq!(c.update(0, 64), None);
        assert_eq!(c.update(0, 64), None);
        let change = c.update(0, 64).expect("three consecutive cool readings exit");
        assert_eq!((change.from, change.to), (BrownoutLevel::Brownout1, BrownoutLevel::Normal));
    }

    #[test]
    fn queue_delay_ewma_drives_pressure_without_backlog() {
        let mut c = AdmissionController::new(AdmissionConfig {
            delay_target: Duration::from_millis(100),
            ewma_alpha: 1.0,
            ..fast_config()
        });
        assert!(c.pressure(0, 64) < 1e-9);
        c.observe_queue_delay(Duration::from_millis(250));
        assert!((c.pressure(0, 64) - 2.5).abs() < 1e-9, "delay alone can saturate");
        assert_eq!(c.queue_delay(), Duration::from_millis(250));
    }
}
