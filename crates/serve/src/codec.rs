//! The two wire codecs behind one [`Codec`] trait.
//!
//! [`JsonCodec`] is the pre-v2 wire, unchanged: one JSON object per line,
//! newline-terminated, human-readable — the debuggable compat surface.
//! [`BinaryCodec`] is the hot-path wire: a compact tag-length-value
//! encoding of the same [`Request`]/[`Response`] enums, carried inside
//! the journal's checksummed length-prefixed frame
//! ([`crate::frame::frame_bytes`]), so a corrupted or truncated stream is
//! detected by the same machinery that guards durability files.
//!
//! A server never negotiates: it sniffs the **first byte** of each
//! connection. JSON requests start with `{` (0x7B); binary frames start
//! with a lower-case hex digit of the length field — the sets are
//! disjoint, the mode is decided once, and it is sticky for the life of
//! the connection. Old clients therefore keep working against new
//! servers with no flag anywhere.
//!
//! TLV layout (all integers LEB128 varints, `f64` as 8-byte LE bit
//! pattern, strings varint-length-prefixed UTF-8, options a one-byte
//! presence flag, vectors a varint count):
//!
//! ```text
//! request  := tag:u8 body
//!   0x01 submit        item
//!   0x02 submit_batch  count item*
//!   0x03 status        ticket
//!   0x04 status_batch  count ticket*
//!   0x05 result        ticket opt(timeout_ms)
//!   0x06 result_batch  count ticket* opt(timeout_ms)
//!   0x07 cancel        ticket
//!   0x08 stats         —
//!   0x09 health        —
//!   0x0A node_stats    —
//!   item := spec:str opt(priority:str) opt(deadline_ms)
//!           opt(client:str) allow_degraded:u8 opt(min_fidelity:str)
//! response := tag:u8 body
//!   0x81 submit   ticket job:str disposition:str depth opt(node) edge:u8
//!   0x82 status   state:str
//!   0x83 outcome  outcome:str opt(detail) opt(queue_ns) opt(run_ns) opt(body)
//!   0x84 cancel   cancel:str
//!   0x85 report   json:str
//!   0x86 batch    count response*        (nested, without re-framing)
//!   0x87 error    code:str verb:str opt(detail) opt(depth)
//!   body := workload:str mode:str cycles messages ipc:f64
//!           latency_mean:f64 latency_count calibrations
//!           opt(fidelity:str) opt(error_bound:f64)
//! ```
//!
//! The overload-control fields (`client`/`allow_degraded`/`min_fidelity`
//! on items, the fidelity pair on bodies) are appended at the *end* of
//! their structures, mirroring the JSON wire's append-only discipline.

use std::io;

use crate::frame::frame_bytes;
use crate::proto::{
    ErrorCode, OutcomeOk, Request, Response, ResultBody, SubmitItem, SubmitOk, WireError,
    MAX_BATCH_ITEMS,
};

/// One wire encoding: full on-wire bytes out, de-framed payloads in.
///
/// `encode_*` return everything that goes on the socket for one message
/// (the JSON line including its `\n`; the complete checksummed binary
/// frame). `decode_*` take one *extracted* message — a line stripped of
/// its terminator, or a frame body that already passed its checksum.
pub trait Codec {
    /// Stable codec name (`"json"` / `"binary"`) for logs and reports.
    fn name(&self) -> &'static str;
    fn encode_request(&self, request: &Request) -> Vec<u8>;
    fn encode_response(&self, response: &Response) -> Vec<u8>;
    /// Server side: a decode failure is answered on the wire, so the
    /// error type is a [`WireError`] ready to send back.
    fn decode_request(&self, payload: &[u8]) -> Result<Request, WireError>;
    /// Client side: a decode failure means a broken peer, surfaced as an
    /// I/O error on the call.
    fn decode_response(&self, payload: &[u8]) -> io::Result<Response>;
}

/// The line-delimited JSON wire — byte-compatible with pre-v2 peers.
#[derive(Debug, Clone, Copy, Default)]
pub struct JsonCodec;

impl Codec for JsonCodec {
    fn name(&self) -> &'static str {
        "json"
    }

    fn encode_request(&self, request: &Request) -> Vec<u8> {
        let mut bytes = request.encode_json().into_bytes();
        bytes.push(b'\n');
        bytes
    }

    fn encode_response(&self, response: &Response) -> Vec<u8> {
        let mut bytes = response.encode_json().into_bytes();
        bytes.push(b'\n');
        bytes
    }

    fn decode_request(&self, payload: &[u8]) -> Result<Request, WireError> {
        let text = std::str::from_utf8(payload).map_err(|_| {
            WireError::new(ErrorCode::BadRequest, "").with_detail("request is not UTF-8")
        })?;
        let json = crate::json::Json::parse(text)
            .map_err(|err| WireError::new(ErrorCode::BadRequest, "").with_detail(err.to_string()))?;
        Request::decode_json(&json)
    }

    fn decode_response(&self, payload: &[u8]) -> io::Result<Response> {
        let text = std::str::from_utf8(payload)
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "response is not UTF-8"))?;
        let json = crate::json::Json::parse(text).map_err(|err| {
            io::Error::new(io::ErrorKind::InvalidData, format!("bad response JSON: {err}"))
        })?;
        Ok(Response::decode_json(&json, text))
    }
}

/// The framed TLV wire — same enums, a fraction of the bytes.
#[derive(Debug, Clone, Copy, Default)]
pub struct BinaryCodec;

impl Codec for BinaryCodec {
    fn name(&self) -> &'static str {
        "binary"
    }

    fn encode_request(&self, request: &Request) -> Vec<u8> {
        let mut body = Vec::with_capacity(64);
        write_request(&mut body, request);
        frame_bytes(&body)
    }

    fn encode_response(&self, response: &Response) -> Vec<u8> {
        let mut body = Vec::with_capacity(64);
        write_response(&mut body, response);
        frame_bytes(&body)
    }

    fn decode_request(&self, payload: &[u8]) -> Result<Request, WireError> {
        let mut cursor = Cursor::new(payload);
        let request = read_request(&mut cursor).ok_or_else(bad_frame)?;
        if !cursor.done() {
            return Err(bad_frame().with_detail("trailing bytes after request"));
        }
        Ok(request)
    }

    fn decode_response(&self, payload: &[u8]) -> io::Result<Response> {
        let mut cursor = Cursor::new(payload);
        let response = read_response(&mut cursor)
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "undecodable frame body"))?;
        if !cursor.done() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "trailing bytes after response",
            ));
        }
        Ok(response)
    }
}

fn bad_frame() -> WireError {
    WireError::new(ErrorCode::BadFrame, "").with_detail("undecodable frame body")
}

// ---- TLV writer ----------------------------------------------------------

fn write_varint(out: &mut Vec<u8>, mut value: u64) {
    loop {
        let byte = (value & 0x7F) as u8;
        value >>= 7;
        if value == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

fn write_str(out: &mut Vec<u8>, text: &str) {
    write_varint(out, text.len() as u64);
    out.extend_from_slice(text.as_bytes());
}

fn write_opt_varint(out: &mut Vec<u8>, value: Option<u64>) {
    match value {
        Some(v) => {
            out.push(1);
            write_varint(out, v);
        }
        None => out.push(0),
    }
}

fn write_opt_str(out: &mut Vec<u8>, text: Option<&str>) {
    match text {
        Some(t) => {
            out.push(1);
            write_str(out, t);
        }
        None => out.push(0),
    }
}

fn write_f64(out: &mut Vec<u8>, value: f64) {
    out.extend_from_slice(&value.to_bits().to_le_bytes());
}

fn write_opt_f64(out: &mut Vec<u8>, value: Option<f64>) {
    match value {
        Some(v) => {
            out.push(1);
            write_f64(out, v);
        }
        None => out.push(0),
    }
}

fn write_item(out: &mut Vec<u8>, item: &SubmitItem) {
    write_str(out, &item.spec);
    write_opt_str(out, item.priority.as_deref());
    write_opt_varint(out, item.deadline_ms);
    write_opt_str(out, item.client.as_deref());
    out.push(item.allow_degraded as u8);
    write_opt_str(out, item.min_fidelity.as_deref());
}

fn write_request(out: &mut Vec<u8>, request: &Request) {
    match request {
        Request::Submit(item) => {
            out.push(0x01);
            write_item(out, item);
        }
        Request::SubmitBatch(items) => {
            out.push(0x02);
            write_varint(out, items.len() as u64);
            for item in items {
                write_item(out, item);
            }
        }
        Request::Status { ticket } => {
            out.push(0x03);
            write_varint(out, *ticket);
        }
        Request::StatusBatch { tickets } => {
            out.push(0x04);
            write_varint(out, tickets.len() as u64);
            for ticket in tickets {
                write_varint(out, *ticket);
            }
        }
        Request::Result { ticket, timeout_ms } => {
            out.push(0x05);
            write_varint(out, *ticket);
            write_opt_varint(out, *timeout_ms);
        }
        Request::ResultBatch { tickets, timeout_ms } => {
            out.push(0x06);
            write_varint(out, tickets.len() as u64);
            for ticket in tickets {
                write_varint(out, *ticket);
            }
            write_opt_varint(out, *timeout_ms);
        }
        Request::Cancel { ticket } => {
            out.push(0x07);
            write_varint(out, *ticket);
        }
        Request::Stats => out.push(0x08),
        Request::Health => out.push(0x09),
        Request::NodeStats => out.push(0x0A),
    }
}

fn write_response(out: &mut Vec<u8>, response: &Response) {
    match response {
        Response::Submit(ok) => {
            out.push(0x81);
            write_varint(out, ok.ticket);
            write_str(out, &ok.job);
            write_str(out, &ok.disposition);
            write_varint(out, ok.depth);
            write_opt_varint(out, ok.node);
            out.push(ok.edge as u8);
        }
        Response::Status { state } => {
            out.push(0x82);
            write_str(out, state);
        }
        Response::Outcome(ok) => {
            out.push(0x83);
            write_str(out, &ok.outcome);
            write_opt_str(out, ok.detail.as_deref());
            write_opt_varint(out, ok.queue_ns);
            write_opt_varint(out, ok.run_ns);
            match &ok.body {
                Some(body) => {
                    out.push(1);
                    write_str(out, &body.workload);
                    write_str(out, &body.mode);
                    write_varint(out, body.cycles);
                    write_varint(out, body.messages);
                    write_f64(out, body.ipc);
                    write_f64(out, body.latency_mean);
                    write_varint(out, body.latency_count);
                    write_varint(out, body.calibrations);
                    write_opt_str(out, body.fidelity.as_deref());
                    write_opt_f64(out, body.error_bound);
                }
                None => out.push(0),
            }
        }
        Response::Cancel { cancel } => {
            out.push(0x84);
            write_str(out, cancel);
        }
        Response::Report { json } => {
            out.push(0x85);
            write_str(out, json);
        }
        Response::Batch(items) => {
            out.push(0x86);
            write_varint(out, items.len() as u64);
            for item in items {
                write_response(out, item);
            }
        }
        Response::Error(err) => {
            out.push(0x87);
            write_str(out, err.code.as_str());
            write_str(out, &err.verb);
            write_opt_str(out, err.detail.as_deref());
            write_opt_varint(out, err.depth);
        }
    }
}

// ---- TLV reader ----------------------------------------------------------

/// Bounds-checked reader over one frame body. Every accessor returns
/// `Option` — a truncated or over-long field yields `None`, never a
/// panic, which is what the garbage-frame proptests pin down.
struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(bytes: &'a [u8]) -> Cursor<'a> {
        Cursor { bytes, pos: 0 }
    }

    fn done(&self) -> bool {
        self.pos == self.bytes.len()
    }

    fn u8(&mut self) -> Option<u8> {
        let byte = *self.bytes.get(self.pos)?;
        self.pos += 1;
        Some(byte)
    }

    fn varint(&mut self) -> Option<u64> {
        let mut value: u64 = 0;
        for shift in (0..64).step_by(7) {
            let byte = self.u8()?;
            value |= u64::from(byte & 0x7F) << shift;
            if byte & 0x80 == 0 {
                // Reject non-canonical trailing zeros in the final byte
                // (shift 63 only fits one bit).
                if shift == 63 && byte > 1 {
                    return None;
                }
                return Some(value);
            }
        }
        None
    }

    fn slice(&mut self, len: usize) -> Option<&'a [u8]> {
        let end = self.pos.checked_add(len)?;
        if end > self.bytes.len() {
            return None;
        }
        let slice = &self.bytes[self.pos..end];
        self.pos = end;
        Some(slice)
    }

    fn string(&mut self) -> Option<String> {
        let len = self.varint()?;
        let len = usize::try_from(len).ok()?;
        let bytes = self.slice(len)?;
        String::from_utf8(bytes.to_vec()).ok()
    }

    fn opt_varint(&mut self) -> Option<Option<u64>> {
        match self.u8()? {
            0 => Some(None),
            1 => Some(Some(self.varint()?)),
            _ => None,
        }
    }

    fn opt_string(&mut self) -> Option<Option<String>> {
        match self.u8()? {
            0 => Some(None),
            1 => Some(Some(self.string()?)),
            _ => None,
        }
    }

    fn opt_f64(&mut self) -> Option<Option<f64>> {
        match self.u8()? {
            0 => Some(None),
            1 => Some(Some(self.f64()?)),
            _ => None,
        }
    }

    fn f64(&mut self) -> Option<f64> {
        let bytes = self.slice(8)?;
        Some(f64::from_bits(u64::from_le_bytes(bytes.try_into().ok()?)))
    }

    /// A count that must also be a sane batch size — caps allocation
    /// before any `Vec::with_capacity` sees attacker-controlled numbers.
    fn count(&mut self) -> Option<usize> {
        let count = usize::try_from(self.varint()?).ok()?;
        (count <= MAX_BATCH_ITEMS).then_some(count)
    }
}

fn read_item(cursor: &mut Cursor<'_>) -> Option<SubmitItem> {
    Some(SubmitItem {
        spec: cursor.string()?,
        priority: cursor.opt_string()?,
        deadline_ms: cursor.opt_varint()?,
        client: cursor.opt_string()?,
        allow_degraded: match cursor.u8()? {
            0 => false,
            1 => true,
            _ => return None,
        },
        min_fidelity: cursor.opt_string()?,
    })
}

fn read_request(cursor: &mut Cursor<'_>) -> Option<Request> {
    match cursor.u8()? {
        0x01 => Some(Request::Submit(read_item(cursor)?)),
        0x02 => {
            let count = cursor.count()?;
            let mut items = Vec::with_capacity(count);
            for _ in 0..count {
                items.push(read_item(cursor)?);
            }
            Some(Request::SubmitBatch(items))
        }
        0x03 => Some(Request::Status {
            ticket: cursor.varint()?,
        }),
        0x04 => {
            let count = cursor.count()?;
            let mut tickets = Vec::with_capacity(count);
            for _ in 0..count {
                tickets.push(cursor.varint()?);
            }
            Some(Request::StatusBatch { tickets })
        }
        0x05 => Some(Request::Result {
            ticket: cursor.varint()?,
            timeout_ms: cursor.opt_varint()?,
        }),
        0x06 => {
            let count = cursor.count()?;
            let mut tickets = Vec::with_capacity(count);
            for _ in 0..count {
                tickets.push(cursor.varint()?);
            }
            Some(Request::ResultBatch {
                tickets,
                timeout_ms: cursor.opt_varint()?,
            })
        }
        0x07 => Some(Request::Cancel {
            ticket: cursor.varint()?,
        }),
        0x08 => Some(Request::Stats),
        0x09 => Some(Request::Health),
        0x0A => Some(Request::NodeStats),
        _ => None,
    }
}

fn read_response(cursor: &mut Cursor<'_>) -> Option<Response> {
    match cursor.u8()? {
        0x81 => Some(Response::Submit(SubmitOk {
            ticket: cursor.varint()?,
            job: cursor.string()?,
            disposition: cursor.string()?,
            depth: cursor.varint()?,
            node: cursor.opt_varint()?,
            edge: match cursor.u8()? {
                0 => false,
                1 => true,
                _ => return None,
            },
        })),
        0x82 => Some(Response::Status {
            state: cursor.string()?,
        }),
        0x83 => Some(Response::Outcome(OutcomeOk {
            outcome: cursor.string()?,
            detail: cursor.opt_string()?,
            queue_ns: cursor.opt_varint()?,
            run_ns: cursor.opt_varint()?,
            body: match cursor.u8()? {
                0 => None,
                1 => Some(ResultBody {
                    workload: cursor.string()?,
                    mode: cursor.string()?,
                    cycles: cursor.varint()?,
                    messages: cursor.varint()?,
                    ipc: cursor.f64()?,
                    latency_mean: cursor.f64()?,
                    latency_count: cursor.varint()?,
                    calibrations: cursor.varint()?,
                    fidelity: cursor.opt_string()?,
                    error_bound: cursor.opt_f64()?,
                }),
                _ => return None,
            },
        })),
        0x84 => Some(Response::Cancel {
            cancel: cursor.string()?,
        }),
        0x85 => Some(Response::Report {
            json: cursor.string()?,
        }),
        0x86 => {
            let count = cursor.count()?;
            let mut items = Vec::with_capacity(count);
            for _ in 0..count {
                items.push(read_response(cursor)?);
            }
            Some(Response::Batch(items))
        }
        0x87 => {
            let code = cursor.string()?;
            Some(Response::Error(WireError {
                code: ErrorCode::parse(&code),
                verb: cursor.string()?,
                detail: cursor.opt_string()?,
                depth: cursor.opt_varint()?,
            }))
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame;

    fn deframe(wire: &[u8]) -> Vec<u8> {
        match frame::step(wire) {
            frame::FrameStep::Ok { payload, advance } => {
                assert_eq!(advance, wire.len(), "one message, one frame");
                payload
            }
            other => panic!("not a clean frame: {other:?}"),
        }
    }

    #[test]
    fn binary_requests_round_trip_inside_checksummed_frames() {
        let requests = [
            Request::Submit(
                SubmitItem::new("target=2x2 app=water seed=3")
                    .priority("high")
                    .deadline_ms(250),
            ),
            Request::Submit(
                SubmitItem::new("target=2x2 app=water seed=3")
                    .client("bench-7")
                    .allow_degraded(true)
                    .min_fidelity("hop"),
            ),
            Request::SubmitBatch(vec![
                SubmitItem::new("a"),
                SubmitItem::new("b").allow_degraded(true),
            ]),
            Request::Status { ticket: 1 << 40 },
            Request::StatusBatch {
                tickets: vec![0, 127, 128, u64::MAX],
            },
            Request::Result {
                ticket: 5,
                timeout_ms: None,
            },
            Request::ResultBatch {
                tickets: vec![9, 10],
                timeout_ms: Some(30_000),
            },
            Request::Cancel { ticket: 3 },
            Request::Stats,
            Request::Health,
            Request::NodeStats,
        ];
        for request in requests {
            let wire = BinaryCodec.encode_request(&request);
            let payload = deframe(&wire);
            assert_eq!(BinaryCodec.decode_request(&payload).unwrap(), request);
        }
    }

    #[test]
    fn binary_responses_round_trip_including_exact_f64_bits() {
        let body = ResultBody {
            workload: "water".to_owned(),
            mode: "reciprocal".to_owned(),
            cycles: 100_000,
            messages: 512,
            ipc: 0.1 + 0.2, // deliberately non-representable: bits must survive
            latency_mean: f64::MIN_POSITIVE,
            latency_count: 512,
            calibrations: 4,
            fidelity: None,
            error_bound: None,
        };
        let tagged = ResultBody {
            fidelity: Some("calibrated".to_owned()),
            error_bound: Some(0.15),
            ..body.clone()
        };
        let responses = [
            Response::Submit(SubmitOk {
                ticket: 7,
                job: "00000000000000aa".to_owned(),
                disposition: "enqueued".to_owned(),
                depth: 3,
                node: Some(1),
                edge: true,
            }),
            Response::Status {
                state: "running".to_owned(),
            },
            Response::Outcome(OutcomeOk {
                outcome: "completed".to_owned(),
                detail: None,
                queue_ns: Some(12),
                run_ns: Some(34),
                body: Some(body),
            }),
            Response::Outcome(OutcomeOk {
                outcome: "completed".to_owned(),
                detail: None,
                queue_ns: Some(12),
                run_ns: Some(34),
                body: Some(tagged),
            }),
            Response::Cancel {
                cancel: "signalled".to_owned(),
            },
            Response::Report {
                json: r#"{"ok":true,"role":"backend","state":"up","queue_depth":0}"#.to_owned(),
            },
            Response::Batch(vec![
                Response::Status {
                    state: "done".to_owned(),
                },
                Response::Error(
                    WireError::new(ErrorCode::QueueFull, "submit_batch").with_depth(64),
                ),
            ]),
            Response::Error(
                WireError::new(ErrorCode::BadSpec, "submit").with_detail("unknown mode `warp`"),
            ),
        ];
        for response in responses {
            let wire = BinaryCodec.encode_response(&response);
            let payload = deframe(&wire);
            let back = BinaryCodec.decode_response(&payload).unwrap();
            assert_eq!(back, response);
            if let (Response::Outcome(a), Response::Outcome(b)) = (&back, &response) {
                let (a, b) = (a.body.as_ref().unwrap(), b.body.as_ref().unwrap());
                assert_eq!(a.ipc.to_bits(), b.ipc.to_bits());
                assert_eq!(a.latency_mean.to_bits(), b.latency_mean.to_bits());
            }
        }
    }

    #[test]
    fn truncated_and_garbage_bodies_decode_to_errors_not_panics() {
        let wire = BinaryCodec.encode_request(&Request::Submit(SubmitItem::new("spec=1")));
        let payload = deframe(&wire);
        for cut in 0..payload.len() {
            assert!(BinaryCodec.decode_request(&payload[..cut]).is_err());
        }
        assert!(BinaryCodec.decode_request(&[0xFF, 0x00]).is_err());
        assert!(BinaryCodec.decode_response(&[0x00]).is_err());
        // A count field claiming more items than the cap is refused
        // before any allocation.
        assert!(BinaryCodec
            .decode_request(&[0x04, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x7F])
            .is_err());
    }

    #[test]
    fn trailing_bytes_after_a_message_are_a_decode_error() {
        let mut payload = deframe(&BinaryCodec.encode_request(&Request::Stats));
        payload.push(0x00);
        let err = BinaryCodec.decode_request(&payload).unwrap_err();
        assert_eq!(err.code, ErrorCode::BadFrame);
    }

    #[test]
    fn json_codec_terminates_lines_and_decodes_without_the_terminator() {
        let wire = JsonCodec.encode_request(&Request::Health);
        assert_eq!(wire.last(), Some(&b'\n'));
        let request = JsonCodec.decode_request(&wire[..wire.len() - 1]).unwrap();
        assert_eq!(request, Request::Health);
    }
}
