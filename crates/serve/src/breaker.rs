//! Per-backend circuit breakers for the relay's forwarding path.
//!
//! The PR-6 health machine (`health.rs`) answers "is the node alive?"
//! from dedicated probes. The breaker answers a different question from
//! the *request* stream: "is sending real traffic there currently a
//! waste?" — a backend can be probe-alive yet failing or slow enough
//! that every forward burns a retry budget. The classic three states:
//!
//! ```text
//!              error rate / RTT budget exceeded
//!   Closed ────────────────────────────────────▶ Open
//!      ▲                                          │ cooldown elapses
//!      │ close_after probe successes              ▼
//!      └───────────────────────────────────── HalfOpen
//!                 (any probe failure re-opens) ◀──┘
//! ```
//!
//! * **Closed** — traffic flows; a sliding window of recent outcomes is
//!   kept, where "bad" means an error *or* a success slower than the RTT
//!   budget. When the window has at least `min_samples` outcomes and the
//!   bad fraction reaches `error_threshold`, the breaker trips.
//! * **Open** — traffic is refused locally (the relay reroutes or
//!   edge-degrades) until `open_cooldown` elapses.
//! * **HalfOpen** — at most `half_open_probes` requests are let through
//!   concurrently as probes; `close_after` in-budget successes close the
//!   breaker, any failure re-opens it.
//!
//! Like the health machine, the breaker is pure state with explicit
//! `now_ns` injection: no clocks, no I/O, deterministic tests.

use std::collections::VecDeque;
use std::time::Duration;

/// Breaker tuning knobs.
#[derive(Debug, Clone)]
pub struct BreakerConfig {
    /// Sliding outcome window length.
    pub window: usize,
    /// Outcomes required in the window before the error rate is judged.
    pub min_samples: usize,
    /// Bad-outcome fraction (errors + over-budget successes) that trips.
    pub error_threshold: f64,
    /// A success slower than this counts as a bad outcome.
    pub rtt_budget: Duration,
    /// How long an open breaker refuses traffic before probing.
    pub open_cooldown: Duration,
    /// Concurrent trial requests allowed while half-open.
    pub half_open_probes: u32,
    /// Consecutive in-budget probe successes that close the breaker.
    pub close_after: u32,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        BreakerConfig {
            window: 16,
            min_samples: 8,
            error_threshold: 0.5,
            rtt_budget: Duration::from_secs(1),
            open_cooldown: Duration::from_millis(500),
            half_open_probes: 1,
            close_after: 2,
        }
    }
}

/// Where a backend's breaker sits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Traffic flows normally.
    Closed,
    /// Traffic is refused; the cooldown is running.
    Open,
    /// A limited number of trial requests probe for recovery.
    HalfOpen,
}

impl BreakerState {
    /// Lower-snake name for wire responses and obs events.
    pub fn name(self) -> &'static str {
        match self {
            BreakerState::Closed => "closed",
            BreakerState::Open => "open",
            BreakerState::HalfOpen => "half_open",
        }
    }
}

/// The per-backend machine: ask [`allow`](CircuitBreaker::allow) before
/// forwarding, report every outcome, compare
/// [`state`](CircuitBreaker::state) before/after to spot transitions.
#[derive(Debug, Clone)]
pub struct CircuitBreaker {
    cfg: BreakerConfig,
    state: BreakerState,
    /// Recent outcome ring; `true` = bad (error or over-budget).
    outcomes: VecDeque<bool>,
    /// When an open breaker may start probing.
    open_until_ns: u64,
    /// Trial requests currently outstanding while half-open.
    probes_in_flight: u32,
    /// Consecutive in-budget probe successes while half-open.
    probe_successes: u32,
    /// Trips since construction (for stats rows).
    trips: u64,
}

impl CircuitBreaker {
    /// A closed breaker with an empty window.
    pub fn new(cfg: BreakerConfig) -> CircuitBreaker {
        CircuitBreaker {
            state: BreakerState::Closed,
            outcomes: VecDeque::with_capacity(cfg.window.max(1)),
            cfg,
            open_until_ns: 0,
            probes_in_flight: 0,
            probe_successes: 0,
            trips: 0,
        }
    }

    pub fn state(&self) -> BreakerState {
        self.state
    }

    /// Times the breaker has tripped open.
    pub fn trips(&self) -> u64 {
        self.trips
    }

    /// Whether a request may be sent now. Open breakers whose cooldown
    /// has elapsed flip to half-open here and grant the first probe; call
    /// [`state`](CircuitBreaker::state) before and after to observe the
    /// flip.
    pub fn allow(&mut self, now_ns: u64) -> bool {
        match self.state {
            BreakerState::Closed => true,
            BreakerState::Open => {
                if now_ns >= self.open_until_ns {
                    self.state = BreakerState::HalfOpen;
                    self.probes_in_flight = 1;
                    self.probe_successes = 0;
                    true
                } else {
                    false
                }
            }
            BreakerState::HalfOpen => {
                if self.probes_in_flight < self.cfg.half_open_probes.max(1) {
                    self.probes_in_flight += 1;
                    true
                } else {
                    false
                }
            }
        }
    }

    /// Whether [`allow`](CircuitBreaker::allow) would grant a request
    /// now, without flipping state or consuming a half-open probe slot.
    /// The relay's routing mask uses this to steer traffic away from
    /// open breakers while still routing the post-cooldown probe *at*
    /// the node, so the half-open flip happens in `allow` on the real
    /// forward.
    pub fn would_allow(&self, now_ns: u64) -> bool {
        match self.state {
            BreakerState::Closed => true,
            BreakerState::Open => now_ns >= self.open_until_ns,
            BreakerState::HalfOpen => {
                self.probes_in_flight < self.cfg.half_open_probes.max(1)
            }
        }
    }

    /// Reports a completed request with its round-trip time.
    pub fn on_success(&mut self, now_ns: u64, rtt: Duration) {
        let bad = rtt > self.cfg.rtt_budget;
        match self.state {
            BreakerState::Closed => self.record(now_ns, bad),
            BreakerState::HalfOpen => {
                self.probes_in_flight = self.probes_in_flight.saturating_sub(1);
                if bad {
                    self.reopen(now_ns);
                } else {
                    self.probe_successes += 1;
                    if self.probe_successes >= self.cfg.close_after.max(1) {
                        self.state = BreakerState::Closed;
                        self.outcomes.clear();
                    }
                }
            }
            // A straggler from before the trip changes nothing.
            BreakerState::Open => {}
        }
    }

    /// Reports a failed request.
    pub fn on_failure(&mut self, now_ns: u64) {
        match self.state {
            BreakerState::Closed => self.record(now_ns, true),
            BreakerState::HalfOpen => {
                self.probes_in_flight = self.probes_in_flight.saturating_sub(1);
                self.reopen(now_ns);
            }
            BreakerState::Open => {}
        }
    }

    fn record(&mut self, now_ns: u64, bad: bool) {
        if self.outcomes.len() >= self.cfg.window.max(1) {
            self.outcomes.pop_front();
        }
        self.outcomes.push_back(bad);
        if self.outcomes.len() < self.cfg.min_samples.max(1) {
            return;
        }
        let bad_count = self.outcomes.iter().filter(|b| **b).count();
        if bad_count as f64 / self.outcomes.len() as f64 >= self.cfg.error_threshold {
            self.reopen(now_ns);
        }
    }

    fn reopen(&mut self, now_ns: u64) {
        self.state = BreakerState::Open;
        self.open_until_ns = now_ns.saturating_add(self.cfg.open_cooldown.as_nanos() as u64);
        self.outcomes.clear();
        self.probes_in_flight = 0;
        self.probe_successes = 0;
        self.trips += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> BreakerConfig {
        BreakerConfig {
            window: 8,
            min_samples: 4,
            error_threshold: 0.5,
            rtt_budget: Duration::from_millis(100),
            open_cooldown: Duration::from_millis(10),
            half_open_probes: 1,
            close_after: 2,
        }
    }

    const MS: u64 = 1_000_000;

    #[test]
    fn error_rate_trips_only_past_min_samples() {
        let mut b = CircuitBreaker::new(cfg());
        b.on_failure(0);
        b.on_failure(0);
        b.on_failure(0);
        assert_eq!(b.state(), BreakerState::Closed, "3 of 4 min samples: not judged yet");
        b.on_failure(0);
        assert_eq!(b.state(), BreakerState::Open);
        assert_eq!(b.trips(), 1);
        assert!(!b.allow(0), "open refuses during cooldown");
    }

    #[test]
    fn slow_successes_count_against_the_rtt_budget() {
        let mut b = CircuitBreaker::new(cfg());
        for _ in 0..4 {
            b.on_success(0, Duration::from_millis(500));
        }
        assert_eq!(b.state(), BreakerState::Open, "a slow backend trips without one error");
    }

    #[test]
    fn healthy_traffic_never_trips() {
        let mut b = CircuitBreaker::new(cfg());
        for _ in 0..100 {
            assert!(b.allow(0));
            b.on_success(0, Duration::from_millis(1));
        }
        assert_eq!(b.state(), BreakerState::Closed);
        assert_eq!(b.trips(), 0);
    }

    #[test]
    fn cooldown_then_probe_limited_half_open_recovery() {
        let mut b = CircuitBreaker::new(cfg());
        for _ in 0..4 {
            b.on_failure(0);
        }
        assert_eq!(b.state(), BreakerState::Open);
        assert!(!b.allow(9 * MS), "cooldown still running");
        assert!(b.allow(10 * MS), "cooldown elapsed: first probe granted");
        assert_eq!(b.state(), BreakerState::HalfOpen);
        assert!(!b.allow(10 * MS), "probe limit is 1: second request refused");
        b.on_success(11 * MS, Duration::from_millis(1));
        assert_eq!(b.state(), BreakerState::HalfOpen, "one success of two");
        assert!(b.allow(11 * MS));
        b.on_success(12 * MS, Duration::from_millis(1));
        assert_eq!(b.state(), BreakerState::Closed, "close_after successes close");
        // The window restarts clean: one failure does not re-trip.
        b.on_failure(13 * MS);
        assert_eq!(b.state(), BreakerState::Closed);
    }

    #[test]
    fn a_failed_or_slow_probe_reopens() {
        let mut b = CircuitBreaker::new(cfg());
        for _ in 0..4 {
            b.on_failure(0);
        }
        assert!(b.allow(10 * MS));
        b.on_failure(11 * MS);
        assert_eq!(b.state(), BreakerState::Open, "failed probe re-opens");
        assert_eq!(b.trips(), 2);
        assert!(b.allow(21 * MS));
        b.on_success(22 * MS, Duration::from_secs(5));
        assert_eq!(b.state(), BreakerState::Open, "over-budget probe re-opens too");
    }

    #[test]
    fn would_allow_predicts_allow_without_consuming_state() {
        let mut b = CircuitBreaker::new(cfg());
        assert!(b.would_allow(0), "closed always routes");
        for _ in 0..4 {
            b.on_failure(0);
        }
        assert!(!b.would_allow(9 * MS), "open during cooldown");
        assert!(b.would_allow(10 * MS), "routable once the cooldown elapses");
        assert_eq!(b.state(), BreakerState::Open, "the query must not flip state");
        assert!(b.allow(10 * MS));
        assert_eq!(b.state(), BreakerState::HalfOpen);
        assert!(
            !b.would_allow(10 * MS),
            "the probe slot is taken; no further routing"
        );
    }

    #[test]
    fn stragglers_arriving_while_open_change_nothing() {
        let mut b = CircuitBreaker::new(cfg());
        for _ in 0..4 {
            b.on_failure(0);
        }
        b.on_success(1, Duration::from_millis(1));
        b.on_failure(1);
        assert_eq!(b.state(), BreakerState::Open);
        assert_eq!(b.trips(), 1);
    }
}
