//! Typed wire protocol: every verb as a [`Request`], every reply as a
//! [`Response`].
//!
//! Before this module the wire layer pattern-matched raw JSON objects in
//! place — each verb hand-parsed its own fields and hand-rendered its own
//! reply, and the relay shuttled opaque strings. Lifting both directions
//! into enums gives the stack one dispatch path ([`crate::wire::dispatch`])
//! and one place where shapes are defined, which is what makes a second
//! codec ([`crate::codec::BinaryCodec`]) possible at all: the binary wire
//! encodes these enums, not ad-hoc JSON.
//!
//! The JSON renderings here are **byte-compatible** with the pre-v2 wire:
//! field names, field order, and number formatting are unchanged, so a
//! response that round-trips through `decode -> encode` reproduces the
//! original line exactly. That identity is what lets the relay re-encode
//! responses per client codec without perturbing result fingerprints.
//! Error responses grow two fields the old wire lacked — a stable
//! machine-readable `code` (mirroring `error`, which stays first for old
//! clients) and the offending `verb` — see [`WireError`].

use ra_bench::{json_object, JsonField};

use crate::json::Json;

/// Most items a single `*_batch` request may carry. Bounds worst-case
/// memory per request; large workloads chunk client-side.
pub const MAX_BATCH_ITEMS: usize = 1024;

/// One submission: the spec text plus its scheduling knobs. Shared by
/// `submit` and `submit_batch` so the two verbs cannot drift.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SubmitItem {
    /// Job-spec text (`key=value` pairs; canonicalized server-side).
    pub spec: String,
    /// Scheduling priority label (`low`/`normal`/`high`); server default
    /// when absent.
    pub priority: Option<String>,
    /// Relative deadline in milliseconds, if any.
    pub deadline_ms: Option<u64>,
    /// Client identity for per-client admission quotas, if any.
    pub client: Option<String>,
    /// Opt-in to brownout degradation: under overload the answer may
    /// come from a cheaper fidelity rung instead of `queue_full`.
    pub allow_degraded: bool,
    /// Lowest acceptable fidelity rung (`hop`/`calibrated`/`reciprocal`)
    /// when degradation is allowed; absent means any rung.
    pub min_fidelity: Option<String>,
}

impl SubmitItem {
    pub fn new(spec: impl Into<String>) -> SubmitItem {
        SubmitItem {
            spec: spec.into(),
            priority: None,
            deadline_ms: None,
            client: None,
            allow_degraded: false,
            min_fidelity: None,
        }
    }

    #[must_use]
    pub fn priority(mut self, priority: impl Into<String>) -> SubmitItem {
        self.priority = Some(priority.into());
        self
    }

    #[must_use]
    pub fn deadline_ms(mut self, ms: u64) -> SubmitItem {
        self.deadline_ms = Some(ms);
        self
    }

    #[must_use]
    pub fn client(mut self, client: impl Into<String>) -> SubmitItem {
        self.client = Some(client.into());
        self
    }

    #[must_use]
    pub fn allow_degraded(mut self, on: bool) -> SubmitItem {
        self.allow_degraded = on;
        self
    }

    #[must_use]
    pub fn min_fidelity(mut self, fidelity: impl Into<String>) -> SubmitItem {
        self.min_fidelity = Some(fidelity.into());
        self
    }
}

/// Every verb the serve/relay wire understands, fully parsed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    Submit(SubmitItem),
    /// Up to [`MAX_BATCH_ITEMS`] submissions in one round-trip; answered
    /// by a [`Response::Batch`] with one entry per item, in order.
    SubmitBatch(Vec<SubmitItem>),
    Status { ticket: u64 },
    StatusBatch { tickets: Vec<u64> },
    Result { ticket: u64, timeout_ms: Option<u64> },
    /// `timeout_ms` is a *whole-batch* deadline: each successive wait
    /// gets whatever remains of it, so the reply arrives within one
    /// timeout no matter how many tickets are queried.
    ResultBatch { tickets: Vec<u64>, timeout_ms: Option<u64> },
    Cancel { ticket: u64 },
    Stats,
    Health,
    NodeStats,
}

impl Request {
    /// The wire verb name (the JSON `"verb"` field).
    pub fn verb(&self) -> &'static str {
        match self {
            Request::Submit(_) => "submit",
            Request::SubmitBatch(_) => "submit_batch",
            Request::Status { .. } => "status",
            Request::StatusBatch { .. } => "status_batch",
            Request::Result { .. } => "result",
            Request::ResultBatch { .. } => "result_batch",
            Request::Cancel { .. } => "cancel",
            Request::Stats => "stats",
            Request::Health => "health",
            Request::NodeStats => "node_stats",
        }
    }

    /// Renders the request as one JSON line (no trailing newline) —
    /// byte-identical to what pre-v2 clients sent for the non-batch verbs.
    pub fn encode_json(&self) -> String {
        match self {
            Request::Submit(item) => {
                let mut fields = vec![("verb", JsonField::Str("submit".to_owned()))];
                push_item_fields(&mut fields, item);
                json_object(&fields)
            }
            Request::SubmitBatch(items) => {
                let rendered: Vec<String> = items
                    .iter()
                    .map(|item| {
                        let mut fields = Vec::new();
                        push_item_fields(&mut fields, item);
                        json_object(&fields)
                    })
                    .collect();
                json_object(&[
                    ("verb", JsonField::Str("submit_batch".to_owned())),
                    ("items", JsonField::Raw(format!("[{}]", rendered.join(",")))),
                ])
            }
            Request::Status { ticket } => json_object(&[
                ("verb", JsonField::Str("status".to_owned())),
                ("ticket", JsonField::Int(*ticket)),
            ]),
            Request::StatusBatch { tickets } => json_object(&[
                ("verb", JsonField::Str("status_batch".to_owned())),
                ("tickets", JsonField::Raw(render_tickets(tickets))),
            ]),
            Request::Result { ticket, timeout_ms } => {
                let mut fields = vec![
                    ("verb", JsonField::Str("result".to_owned())),
                    ("ticket", JsonField::Int(*ticket)),
                ];
                if let Some(ms) = timeout_ms {
                    fields.push(("timeout_ms", JsonField::Int(*ms)));
                }
                json_object(&fields)
            }
            Request::ResultBatch { tickets, timeout_ms } => {
                let mut fields = vec![
                    ("verb", JsonField::Str("result_batch".to_owned())),
                    ("tickets", JsonField::Raw(render_tickets(tickets))),
                ];
                if let Some(ms) = timeout_ms {
                    fields.push(("timeout_ms", JsonField::Int(*ms)));
                }
                json_object(&fields)
            }
            Request::Cancel { ticket } => json_object(&[
                ("verb", JsonField::Str("cancel".to_owned())),
                ("ticket", JsonField::Int(*ticket)),
            ]),
            Request::Stats => json_object(&[("verb", JsonField::Str("stats".to_owned()))]),
            Request::Health => json_object(&[("verb", JsonField::Str("health".to_owned()))]),
            Request::NodeStats => {
                json_object(&[("verb", JsonField::Str("node_stats".to_owned()))])
            }
        }
    }

    /// Parses a request from its JSON object form. Errors carry the verb
    /// (when one was readable) so clients can tell which call misfired.
    pub fn decode_json(json: &Json) -> Result<Request, WireError> {
        let verb = json.get("verb").and_then(Json::as_str).unwrap_or("");
        match verb {
            "submit" => Ok(Request::Submit(decode_item(json, "submit")?)),
            "submit_batch" => {
                let Some(Json::Arr(items)) = json.get("items") else {
                    return Err(WireError::new(ErrorCode::BadRequest, "submit_batch")
                        .with_detail("`items` must be an array"));
                };
                check_batch_len(items.len(), "submit_batch")?;
                let items = items
                    .iter()
                    .map(|item| decode_item(item, "submit_batch"))
                    .collect::<Result<Vec<_>, _>>()?;
                Ok(Request::SubmitBatch(items))
            }
            "status" => Ok(Request::Status {
                ticket: require_ticket(json, "status")?,
            }),
            "status_batch" => Ok(Request::StatusBatch {
                tickets: decode_tickets(json, "status_batch")?,
            }),
            "result" => Ok(Request::Result {
                ticket: require_ticket(json, "result")?,
                timeout_ms: json.get("timeout_ms").and_then(Json::as_u64),
            }),
            "result_batch" => Ok(Request::ResultBatch {
                tickets: decode_tickets(json, "result_batch")?,
                timeout_ms: json.get("timeout_ms").and_then(Json::as_u64),
            }),
            "cancel" => Ok(Request::Cancel {
                ticket: require_ticket(json, "cancel")?,
            }),
            "stats" => Ok(Request::Stats),
            "health" => Ok(Request::Health),
            "node_stats" => Ok(Request::NodeStats),
            "" => Err(WireError::new(ErrorCode::BadRequest, "").with_detail("`verb` is required")),
            other => Err(WireError::new(ErrorCode::UnknownVerb, other.to_owned())
                .with_detail(format!("`{other}`"))),
        }
    }
}

fn push_item_fields(fields: &mut Vec<(&'static str, JsonField)>, item: &SubmitItem) {
    fields.push(("spec", JsonField::Str(item.spec.clone())));
    if let Some(priority) = &item.priority {
        fields.push(("priority", JsonField::Str(priority.clone())));
    }
    if let Some(ms) = item.deadline_ms {
        fields.push(("deadline_ms", JsonField::Int(ms)));
    }
    // Overload-control vocabulary: encoded only when set, so requests
    // from clients that never use it stay byte-identical to pre-v2.
    if let Some(client) = &item.client {
        fields.push(("client", JsonField::Str(client.clone())));
    }
    if item.allow_degraded {
        fields.push(("allow_degraded", JsonField::Raw("true".to_owned())));
    }
    if let Some(fidelity) = &item.min_fidelity {
        fields.push(("min_fidelity", JsonField::Str(fidelity.clone())));
    }
}

fn render_tickets(tickets: &[u64]) -> String {
    let rendered: Vec<String> = tickets.iter().map(|t| t.to_string()).collect();
    format!("[{}]", rendered.join(","))
}

fn decode_item(json: &Json, verb: &str) -> Result<SubmitItem, WireError> {
    let Some(spec) = json.get("spec").and_then(Json::as_str) else {
        return Err(WireError::new(ErrorCode::BadRequest, verb.to_owned())
            .with_detail("`spec` is required"));
    };
    Ok(SubmitItem {
        spec: spec.to_owned(),
        priority: json
            .get("priority")
            .and_then(Json::as_str)
            .map(str::to_owned),
        deadline_ms: json.get("deadline_ms").and_then(Json::as_u64),
        client: json.get("client").and_then(Json::as_str).map(str::to_owned),
        allow_degraded: json.get("allow_degraded").and_then(Json::as_bool) == Some(true),
        min_fidelity: json
            .get("min_fidelity")
            .and_then(Json::as_str)
            .map(str::to_owned),
    })
}

fn require_ticket(json: &Json, verb: &str) -> Result<u64, WireError> {
    json.get("ticket").and_then(Json::as_u64).ok_or_else(|| {
        WireError::new(ErrorCode::BadRequest, verb.to_owned())
            .with_detail("`ticket` must be a non-negative integer")
    })
}

fn decode_tickets(json: &Json, verb: &str) -> Result<Vec<u64>, WireError> {
    let Some(Json::Arr(entries)) = json.get("tickets") else {
        return Err(WireError::new(ErrorCode::BadRequest, verb.to_owned())
            .with_detail("`tickets` must be an array"));
    };
    check_batch_len(entries.len(), verb)?;
    entries
        .iter()
        .map(|entry| {
            entry.as_u64().ok_or_else(|| {
                WireError::new(ErrorCode::BadRequest, verb.to_owned())
                    .with_detail("`tickets` entries must be non-negative integers")
            })
        })
        .collect()
}

fn check_batch_len(len: usize, verb: &str) -> Result<(), WireError> {
    if len > MAX_BATCH_ITEMS {
        return Err(WireError::new(ErrorCode::BadRequest, verb.to_owned())
            .with_detail(format!("batch of {len} exceeds {MAX_BATCH_ITEMS} items")));
    }
    Ok(())
}

/// Stable machine-readable failure codes — the closed set behind both the
/// legacy `error` field and the new `code` field. Stringly construction
/// is gone: every error on the wire names one of these.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    BadRequest,
    BadSpec,
    QueueFull,
    ShuttingDown,
    UnknownTicket,
    Timeout,
    UnknownVerb,
    NoBackend,
    Unavailable,
    /// A checksum-valid binary frame whose payload was not a decodable
    /// message.
    BadFrame,
}

impl ErrorCode {
    pub const ALL: [ErrorCode; 10] = [
        ErrorCode::BadRequest,
        ErrorCode::BadSpec,
        ErrorCode::QueueFull,
        ErrorCode::ShuttingDown,
        ErrorCode::UnknownTicket,
        ErrorCode::Timeout,
        ErrorCode::UnknownVerb,
        ErrorCode::NoBackend,
        ErrorCode::Unavailable,
        ErrorCode::BadFrame,
    ];

    pub fn as_str(self) -> &'static str {
        match self {
            ErrorCode::BadRequest => "bad_request",
            ErrorCode::BadSpec => "bad_spec",
            ErrorCode::QueueFull => "queue_full",
            ErrorCode::ShuttingDown => "shutting_down",
            ErrorCode::UnknownTicket => "unknown_ticket",
            ErrorCode::Timeout => "timeout",
            ErrorCode::UnknownVerb => "unknown_verb",
            ErrorCode::NoBackend => "no_backend",
            ErrorCode::Unavailable => "unavailable",
            ErrorCode::BadFrame => "bad_frame",
        }
    }

    /// Maps a wire code string back to the enum. Codes from a newer peer
    /// fold to [`ErrorCode::Unavailable`] — still an error, still
    /// retryable-checked, never a panic.
    pub fn parse(code: &str) -> ErrorCode {
        ErrorCode::ALL
            .into_iter()
            .find(|c| c.as_str() == code)
            .unwrap_or(ErrorCode::Unavailable)
    }

    /// Whether a client should retry the same request later. Derived
    /// from the code so the wire flag can never drift from the enum.
    pub fn retryable(self) -> bool {
        matches!(
            self,
            ErrorCode::QueueFull | ErrorCode::Timeout | ErrorCode::NoBackend | ErrorCode::Unavailable
        )
    }
}

/// A wire error: stable code, the verb that failed, and optional context.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireError {
    pub code: ErrorCode,
    /// The offending verb — the request's verb name, the unknown verb
    /// text for [`ErrorCode::UnknownVerb`], or `""` when no verb could be
    /// read at all (unparseable request).
    pub verb: String,
    /// Human-readable elaboration (error chains, offending values).
    pub detail: Option<String>,
    /// Queue depth at refusal time ([`ErrorCode::QueueFull`] only).
    pub depth: Option<u64>,
}

impl WireError {
    pub fn new(code: ErrorCode, verb: impl Into<String>) -> WireError {
        WireError {
            code,
            verb: verb.into(),
            detail: None,
            depth: None,
        }
    }

    pub fn with_detail(mut self, detail: impl Into<String>) -> WireError {
        self.detail = Some(detail.into());
        self
    }

    pub fn with_depth(mut self, depth: u64) -> WireError {
        self.depth = Some(depth);
        self
    }

    /// JSON error shape. `error` leads (pre-v2 clients key on it), `code`
    /// mirrors it for new clients, `verb` names the failing call, and
    /// `retryable` appears exactly when the code is retryable.
    pub fn encode_json(&self) -> String {
        let mut fields = vec![
            ("ok", JsonField::Raw("false".to_owned())),
            ("error", JsonField::Str(self.code.as_str().to_owned())),
            ("code", JsonField::Str(self.code.as_str().to_owned())),
            ("verb", JsonField::Str(self.verb.clone())),
        ];
        if let Some(detail) = &self.detail {
            fields.push(("detail", JsonField::Str(detail.clone())));
        }
        if let Some(depth) = self.depth {
            fields.push(("depth", JsonField::Int(depth)));
        }
        if self.code.retryable() {
            fields.push(("retryable", JsonField::Raw("true".to_owned())));
        }
        json_object(&fields)
    }
}

/// A successful `submit` reply.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SubmitOk {
    pub ticket: u64,
    /// Canonical job key, 16 lower-case hex digits.
    pub job: String,
    /// `enqueued`, `coalesced`, or `cached`.
    pub disposition: String,
    /// Queue depth after admission (0 for cache hits).
    pub depth: u64,
    /// Backend slot that owns the job — relay responses only.
    pub node: Option<u64>,
    /// True when a relay answered from its edge cache.
    pub edge: bool,
}

/// The per-run measurement body inside a completed result.
#[derive(Debug, Clone, PartialEq)]
pub struct ResultBody {
    pub workload: String,
    pub mode: String,
    pub cycles: u64,
    pub messages: u64,
    pub ipc: f64,
    pub latency_mean: f64,
    pub latency_count: u64,
    pub calibrations: u64,
    /// Fidelity rung this answer was produced at (`reciprocal`,
    /// `calibrated`, or `hop`). Absent on pre-overload-control wires.
    pub fidelity: Option<String>,
    /// Estimated relative error bound for the rung; absent when the
    /// peer predates fidelity tagging.
    pub error_bound: Option<f64>,
}

/// A terminal (or in-flight, for `status`-style waits) `result` reply.
#[derive(Debug, Clone, PartialEq)]
pub struct OutcomeOk {
    /// `completed`, `cached`, `failed`, `cancelled`, `deadline_expired`,
    /// `deadline_exceeded`, or `poisoned`.
    pub outcome: String,
    pub detail: Option<String>,
    pub queue_ns: Option<u64>,
    pub run_ns: Option<u64>,
    /// Present only for `completed`/`cached` outcomes.
    pub body: Option<ResultBody>,
}

/// Every reply the serve/relay wire produces.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    Submit(SubmitOk),
    Status { state: String },
    Outcome(OutcomeOk),
    Cancel { cancel: String },
    /// A pre-rendered JSON report line (`stats`, `health`, `node_stats`)
    /// carried verbatim — already contains `"ok":true`. The binary codec
    /// wraps the string; these verbs are off the hot path, so their
    /// payload stays the debuggable JSON either way.
    Report { json: String },
    /// One reply per batch-request item, in request order.
    Batch(Vec<Response>),
    Error(WireError),
}

impl Response {
    /// Renders the response as one JSON line (no trailing newline),
    /// byte-identical to the pre-v2 wire for every non-batch shape.
    pub fn encode_json(&self) -> String {
        match self {
            Response::Submit(ok) => {
                let mut fields = vec![
                    ("ok", JsonField::Raw("true".to_owned())),
                    ("ticket", JsonField::Int(ok.ticket)),
                    ("job", JsonField::Str(ok.job.clone())),
                    ("disposition", JsonField::Str(ok.disposition.clone())),
                    ("depth", JsonField::Int(ok.depth)),
                ];
                if let Some(node) = ok.node {
                    fields.push(("node", JsonField::Int(node)));
                }
                if ok.edge {
                    fields.push(("edge", JsonField::Raw("true".to_owned())));
                }
                json_object(&fields)
            }
            Response::Status { state } => json_object(&[
                ("ok", JsonField::Raw("true".to_owned())),
                ("state", JsonField::Str(state.clone())),
            ]),
            Response::Outcome(ok) => {
                let mut fields = vec![
                    ("ok", JsonField::Raw("true".to_owned())),
                    ("outcome", JsonField::Str(ok.outcome.clone())),
                ];
                if let Some(detail) = &ok.detail {
                    fields.push(("detail", JsonField::Str(detail.clone())));
                }
                if let Some(ns) = ok.queue_ns {
                    fields.push(("queue_ns", JsonField::Int(ns)));
                }
                if let Some(ns) = ok.run_ns {
                    fields.push(("run_ns", JsonField::Int(ns)));
                }
                if let Some(body) = &ok.body {
                    fields.push(("result", JsonField::Raw(body.encode_json())));
                }
                json_object(&fields)
            }
            Response::Cancel { cancel } => json_object(&[
                ("ok", JsonField::Raw("true".to_owned())),
                ("cancel", JsonField::Str(cancel.clone())),
            ]),
            Response::Report { json } => json.clone(),
            Response::Batch(items) => {
                let rendered: Vec<String> = items.iter().map(Response::encode_json).collect();
                json_object(&[
                    ("ok", JsonField::Raw("true".to_owned())),
                    ("batch", JsonField::Raw(format!("[{}]", rendered.join(",")))),
                ])
            }
            Response::Error(err) => err.encode_json(),
        }
    }

    /// Recovers the typed response from a parsed JSON reply. `raw` is the
    /// original line, kept verbatim for report shapes so re-encoding is
    /// the identity. Unrecognized-but-well-formed replies also land in
    /// [`Response::Report`] — pass-through, never data loss.
    pub fn decode_json(json: &Json, raw: &str) -> Response {
        if json.get("ok").and_then(Json::as_bool) == Some(false) {
            return Response::Error(decode_error(json));
        }
        if let Some(Json::Arr(items)) = json.get("batch") {
            return Response::Batch(items.iter().map(decode_batch_item).collect());
        }
        match decode_known(json) {
            Some(response) => response,
            None => Response::Report {
                json: raw.to_owned(),
            },
        }
    }
}

fn decode_error(json: &Json) -> WireError {
    // `code` when present (v2 peers), else the legacy `error` field.
    let code = json
        .get("code")
        .or_else(|| json.get("error"))
        .and_then(Json::as_str)
        .map(ErrorCode::parse)
        .unwrap_or(ErrorCode::Unavailable);
    WireError {
        code,
        verb: json
            .get("verb")
            .and_then(Json::as_str)
            .unwrap_or("")
            .to_owned(),
        detail: json
            .get("detail")
            .and_then(Json::as_str)
            .map(str::to_owned),
        depth: json.get("depth").and_then(Json::as_u64),
    }
}

/// Decodes the shapes batch replies can carry (submit/status/outcome/
/// cancel/error). Report shapes never appear inside a batch, so an
/// unrecognized item is a protocol error, not a pass-through.
fn decode_batch_item(json: &Json) -> Response {
    if json.get("ok").and_then(Json::as_bool) == Some(false) {
        return Response::Error(decode_error(json));
    }
    match decode_known(json) {
        Some(response) => response,
        None => Response::Error(
            WireError::new(ErrorCode::BadRequest, "").with_detail("unrecognized batch item"),
        ),
    }
}

/// The self-identifying success shapes: submit (has `ticket` +
/// `disposition`), outcome, cancel, and plain status (`state` without a
/// `role`, which would make it a health report).
fn decode_known(json: &Json) -> Option<Response> {
    if let Some(outcome) = json.get("outcome").and_then(Json::as_str) {
        return Some(Response::Outcome(OutcomeOk {
            outcome: outcome.to_owned(),
            detail: json
                .get("detail")
                .and_then(Json::as_str)
                .map(str::to_owned),
            queue_ns: json.get("queue_ns").and_then(Json::as_u64),
            run_ns: json.get("run_ns").and_then(Json::as_u64),
            body: json.get("result").and_then(decode_body),
        }));
    }
    if let Some(cancel) = json.get("cancel").and_then(Json::as_str) {
        return Some(Response::Cancel {
            cancel: cancel.to_owned(),
        });
    }
    if json.get("ticket").is_some() && json.get("disposition").is_some() {
        return Some(Response::Submit(SubmitOk {
            ticket: json.get("ticket").and_then(Json::as_u64)?,
            job: json.get("job").and_then(Json::as_str)?.to_owned(),
            disposition: json.get("disposition").and_then(Json::as_str)?.to_owned(),
            depth: json.get("depth").and_then(Json::as_u64).unwrap_or(0),
            node: json.get("node").and_then(Json::as_u64),
            edge: json.get("edge").and_then(Json::as_bool) == Some(true),
        }));
    }
    if json.get("role").is_none() {
        if let Some(state) = json.get("state").and_then(Json::as_str) {
            return Some(Response::Status {
                state: state.to_owned(),
            });
        }
    }
    None
}

fn decode_body(json: &Json) -> Option<ResultBody> {
    Some(ResultBody {
        workload: json.get("workload").and_then(Json::as_str)?.to_owned(),
        mode: json.get("mode").and_then(Json::as_str)?.to_owned(),
        cycles: json.get("cycles").and_then(Json::as_u64)?,
        messages: json.get("messages").and_then(Json::as_u64)?,
        ipc: json.get("ipc").and_then(Json::as_f64)?,
        latency_mean: json.get("latency_mean").and_then(Json::as_f64)?,
        latency_count: json.get("latency_count").and_then(Json::as_u64)?,
        calibrations: json.get("calibrations").and_then(Json::as_u64)?,
        fidelity: json
            .get("fidelity")
            .and_then(Json::as_str)
            .map(str::to_owned),
        error_bound: json.get("error_bound").and_then(Json::as_f64),
    })
}

impl ResultBody {
    /// The `result` sub-object, field order identical to the pre-v2 wire;
    /// the fidelity pair is appended at the end, and only when present,
    /// so untagged bodies re-encode byte-identically.
    pub fn encode_json(&self) -> String {
        let mut fields = vec![
            ("workload", JsonField::Str(self.workload.clone())),
            ("mode", JsonField::Str(self.mode.clone())),
            ("cycles", JsonField::Int(self.cycles)),
            ("messages", JsonField::Int(self.messages)),
            ("ipc", JsonField::Num(self.ipc)),
            ("latency_mean", JsonField::Num(self.latency_mean)),
            ("latency_count", JsonField::Int(self.latency_count)),
            ("calibrations", JsonField::Int(self.calibrations)),
        ];
        if let Some(fidelity) = &self.fidelity {
            fields.push(("fidelity", JsonField::Str(fidelity.clone())));
        }
        if let Some(bound) = self.error_bound {
            fields.push(("error_bound", JsonField::Num(bound)));
        }
        json_object(&fields)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_round_trip_through_their_json_form() {
        let requests = [
            Request::Submit(
                SubmitItem::new("target=2x2 app=water")
                    .priority("high")
                    .deadline_ms(500),
            ),
            Request::Submit(
                SubmitItem::new("target=2x2 app=water")
                    .client("loadgen-3")
                    .allow_degraded(true)
                    .min_fidelity("calibrated"),
            ),
            Request::SubmitBatch(vec![
                SubmitItem::new("target=2x2 app=water"),
                SubmitItem::new("target=4x4 app=fft").priority("low"),
                SubmitItem::new("target=4x4 app=fft").allow_degraded(true),
            ]),
            Request::Status { ticket: 7 },
            Request::StatusBatch {
                tickets: vec![1, 2, 3],
            },
            Request::Result {
                ticket: 9,
                timeout_ms: Some(1000),
            },
            Request::ResultBatch {
                tickets: vec![4, 5],
                timeout_ms: None,
            },
            Request::Cancel { ticket: 2 },
            Request::Stats,
            Request::Health,
            Request::NodeStats,
        ];
        for request in requests {
            let line = request.encode_json();
            let json = Json::parse(&line).expect("encoded request parses");
            let back = Request::decode_json(&json).expect("decodes");
            assert_eq!(back, request, "{line}");
        }
    }

    #[test]
    fn error_json_keeps_the_legacy_error_field_first_and_adds_code_and_verb() {
        let err = WireError::new(ErrorCode::QueueFull, "submit").with_depth(5);
        let line = err.encode_json();
        assert!(
            line.starts_with(r#"{"ok":false,"error":"queue_full","code":"queue_full","verb":"submit""#),
            "{line}"
        );
        assert!(line.contains(r#""depth":5"#), "{line}");
        assert!(line.contains(r#""retryable":true"#), "{line}");

        let json = Json::parse(&line).unwrap();
        let Response::Error(back) = Response::decode_json(&json, &line) else {
            panic!("not an error: {line}");
        };
        assert_eq!(back, err);
    }

    #[test]
    fn unknown_error_codes_fold_to_unavailable_not_a_panic() {
        let line = r#"{"ok":false,"error":"heat_death","detail":"entropy"}"#;
        let json = Json::parse(line).unwrap();
        let Response::Error(err) = Response::decode_json(&json, line) else {
            panic!("not an error");
        };
        assert_eq!(err.code, ErrorCode::Unavailable);
        assert_eq!(err.detail.as_deref(), Some("entropy"));
    }

    #[test]
    fn responses_re_encode_to_the_exact_original_line() {
        // Every shape the old wire produced, rendered exactly as the old
        // wire rendered it: decode -> encode must be the identity.
        let lines = [
            r#"{"ok":true,"ticket":3,"job":"00000000000000aa","disposition":"enqueued","depth":2}"#,
            r#"{"ok":true,"ticket":4,"job":"00000000000000aa","disposition":"cached","depth":0,"edge":true}"#,
            r#"{"ok":true,"ticket":5,"job":"00000000000000aa","disposition":"coalesced","depth":1,"node":2}"#,
            r#"{"ok":true,"state":"running"}"#,
            r#"{"ok":true,"cancel":"signalled"}"#,
            r#"{"ok":true,"outcome":"failed","detail":"spec: boom"}"#,
            r#"{"ok":true,"outcome":"completed","queue_ns":12,"run_ns":34,"result":{"workload":"water","mode":"reciprocal","cycles":100000,"messages":512,"ipc":0.875,"latency_mean":14.25,"latency_count":512,"calibrations":4}}"#,
            r#"{"ok":true,"outcome":"completed","queue_ns":12,"run_ns":34,"result":{"workload":"water","mode":"reciprocal","cycles":100000,"messages":512,"ipc":0.875,"latency_mean":14.25,"latency_count":512,"calibrations":4,"fidelity":"calibrated","error_bound":0.15}}"#,
        ];
        for line in lines {
            let json = Json::parse(line).unwrap();
            let typed = Response::decode_json(&json, line);
            assert!(
                !matches!(typed, Response::Report { .. }),
                "shape not recognized: {line}"
            );
            assert_eq!(typed.encode_json(), line);
        }
    }

    #[test]
    fn report_shapes_pass_through_verbatim() {
        let health = r#"{"ok":true,"role":"backend","state":"up","queue_depth":0}"#;
        let json = Json::parse(health).unwrap();
        let typed = Response::decode_json(&json, health);
        assert!(matches!(typed, Response::Report { .. }), "{typed:?}");
        assert_eq!(typed.encode_json(), health);
    }

    #[test]
    fn batches_nest_and_round_trip() {
        let batch = Response::Batch(vec![
            Response::Status {
                state: "done".to_owned(),
            },
            Response::Error(WireError::new(ErrorCode::UnknownTicket, "status_batch")),
        ]);
        let line = batch.encode_json();
        let json = Json::parse(&line).unwrap();
        assert_eq!(Response::decode_json(&json, &line), batch);
    }

    #[test]
    fn oversized_batches_are_refused() {
        let tickets: Vec<String> = (0..MAX_BATCH_ITEMS as u64 + 1)
            .map(|t| t.to_string())
            .collect();
        let line = format!(
            r#"{{"verb":"status_batch","tickets":[{}]}}"#,
            tickets.join(",")
        );
        let json = Json::parse(&line).unwrap();
        let err = Request::decode_json(&json).unwrap_err();
        assert_eq!(err.code, ErrorCode::BadRequest);
        assert_eq!(err.verb, "status_batch");
    }
}
