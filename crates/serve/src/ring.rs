//! Consistent-hash ring: shards [`JobKey`]s across backend nodes.
//!
//! Each node contributes `vnodes` points to a 64-bit ring, every point
//! the FNV-1a hash of `"node/<index>/vnode/<v>"` (the same hash that
//! content-addresses job specs) pushed through one splitmix64
//! finalizer round for uniform high bits — see [`mix`] for why FNV-1a
//! alone is not enough here. A key routes to the first point clockwise from its
//! own (re-mixed) hash; because removing a node only deletes *that
//! node's* points, every key owned by a survivor keeps its owner — the
//! minimal-movement property the workspace proptest pins down.
//!
//! Routing around dead nodes ([`HashRing::route_live`]) walks the same
//! clockwise order past points owned by down nodes, which is exactly
//! equivalent to rebuilding the ring without them: the dead shard's key
//! range drains to its ring successors, and nobody else moves.

use crate::spec::{fnv1a, JobKey};

/// One point on the ring: (position, owning node index).
type Point = (u64, usize);

/// A fixed-membership consistent-hash ring over node indices
/// `0..nodes`. Liveness is a per-call concern (`route_live`), not ring
/// state, so health flaps never rebuild the ring.
#[derive(Debug, Clone)]
pub struct HashRing {
    /// Sorted by position; ties broken by node index (stable whatever
    /// the insertion order).
    points: Vec<Point>,
    nodes: usize,
}

/// Default virtual nodes per backend. With the finalized point hash,
/// 256 points per node holds the worst shard within ~5% of even for
/// clusters up to 8 nodes (the workspace proptest asserts 15%). The
/// ring is built once per relay and routing is a binary search, so the
/// constant costs only a few thousand sorted u64 pairs.
pub const DEFAULT_VNODES: usize = 256;

/// splitmix64 finalizer. FNV-1a is a fine content hash but has weak
/// high-bit avalanche: sequential labels like `node/0/vnode/7` produce
/// *correlated* high bits, and ring order sorts on exactly those bits —
/// measured skew got worse, not better, with more vnodes. One round of
/// strong integer mixing on top restores uniform arc lengths while the
/// content addressing everywhere else stays plain FNV-1a.
fn mix(z: u64) -> u64 {
    let z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    let z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl HashRing {
    /// Builds a ring over `nodes` backends with `vnodes` points each.
    ///
    /// # Panics
    ///
    /// When `nodes` or `vnodes` is zero — an empty ring routes nothing.
    pub fn new(nodes: usize, vnodes: usize) -> HashRing {
        assert!(nodes > 0, "a ring needs at least one node");
        assert!(vnodes > 0, "a ring needs at least one vnode per node");
        let mut points = Vec::with_capacity(nodes * vnodes);
        for node in 0..nodes {
            for v in 0..vnodes {
                let label = format!("node/{node}/vnode/{v}");
                points.push((mix(fnv1a(label.as_bytes())), node));
            }
        }
        points.sort_unstable();
        HashRing { points, nodes }
    }

    /// Number of member nodes (live or not).
    pub fn nodes(&self) -> usize {
        self.nodes
    }

    /// Re-mixes a job key onto the ring's coordinate space. The key is
    /// already an FNV-1a hash, but of *spec text*; finalizing it again
    /// decorrelates spec-hash clustering from ring position.
    fn position(key: JobKey) -> u64 {
        mix(fnv1a(&key.0.to_le_bytes()))
    }

    /// The node owning `key` when every node is up.
    pub fn route(&self, key: JobKey) -> usize {
        let pos = Self::position(key);
        let start = self.points.partition_point(|&(p, _)| p < pos);
        // First point clockwise, wrapping past the top of the ring.
        let (_, node) = self.points[start % self.points.len()];
        node
    }

    /// The node owning `key` counting only nodes with `alive[node]`,
    /// by walking clockwise past dead owners — byte-for-byte the route
    /// a ring rebuilt without the dead nodes would pick. `None` when
    /// nothing is alive.
    ///
    /// # Panics
    ///
    /// When `alive.len() != self.nodes()`.
    pub fn route_live(&self, key: JobKey, alive: &[bool]) -> Option<usize> {
        assert_eq!(alive.len(), self.nodes, "liveness mask length mismatch");
        let pos = Self::position(key);
        let start = self.points.partition_point(|&(p, _)| p < pos);
        for step in 0..self.points.len() {
            let (_, node) = self.points[(start + step) % self.points.len()];
            if alive[node] {
                return Some(node);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn routing_is_deterministic_and_in_range() {
        let ring = HashRing::new(3, DEFAULT_VNODES);
        for k in 0..1000u64 {
            let node = ring.route(JobKey(k));
            assert!(node < 3);
            assert_eq!(node, ring.route(JobKey(k)));
        }
    }

    #[test]
    fn route_live_with_all_up_matches_route() {
        let ring = HashRing::new(4, DEFAULT_VNODES);
        let alive = [true; 4];
        for k in 0..500u64 {
            assert_eq!(ring.route_live(JobKey(k), &alive), Some(ring.route(JobKey(k))));
        }
    }

    #[test]
    fn killing_a_node_moves_only_its_keys() {
        let ring = HashRing::new(3, DEFAULT_VNODES);
        let mut alive = [true; 3];
        alive[1] = false;
        for k in 0..2000u64 {
            let before = ring.route(JobKey(k));
            let after = ring.route_live(JobKey(k), &alive).unwrap();
            if before != 1 {
                assert_eq!(after, before, "a survivor's key moved");
            } else {
                assert_ne!(after, 1, "a dead node still owns a key");
            }
        }
    }

    #[test]
    fn route_live_with_nothing_alive_is_none() {
        let ring = HashRing::new(2, 8);
        assert_eq!(ring.route_live(JobKey(7), &[false, false]), None);
    }

    #[test]
    fn single_node_ring_owns_everything() {
        let ring = HashRing::new(1, 8);
        for k in 0..100u64 {
            assert_eq!(ring.route(JobKey(k)), 0);
        }
    }
}
