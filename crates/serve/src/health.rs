//! Per-backend health state machine for the relay's probe loop.
//!
//! Each backend runs the classic three-state machine:
//!
//! ```text
//!          failure                failures >= fail_threshold
//!   Up ─────────────▶ Suspect ─────────────────────────────▶ Down
//!    ▲                  │                                     │
//!    └──── success ─────┘            successes >= recover_threshold
//!    ▲                                                        │
//!    └────────────────────────────────────────────────────────┘
//! ```
//!
//! `Up` and `Suspect` both route traffic (a single dropped probe must
//! not trigger failover); only `Down` takes a node out of the ring.
//! Demotion needs `fail_threshold` *consecutive* failures, promotion
//! from `Down` needs `recover_threshold` consecutive successes, so a
//! flapping link cannot oscillate the ring every probe. The machine is
//! pure state — no clocks, no I/O — so the unit tests drive it
//! deterministically and the relay owns all timing.

use std::time::Duration;

/// Probe-loop tuning for the relay's health checker.
#[derive(Debug, Clone)]
pub struct HealthPolicy {
    /// Delay between probe rounds.
    pub probe_interval: Duration,
    /// Per-probe connect + response deadline.
    pub probe_timeout: Duration,
    /// Consecutive failures that demote `Suspect` to `Down`.
    pub fail_threshold: u32,
    /// Consecutive successes that promote `Down` back to `Up`.
    pub recover_threshold: u32,
}

impl Default for HealthPolicy {
    fn default() -> Self {
        HealthPolicy {
            probe_interval: Duration::from_millis(250),
            probe_timeout: Duration::from_millis(500),
            fail_threshold: 3,
            recover_threshold: 2,
        }
    }
}

/// Where a backend sits in the Up/Suspect/Down machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeState {
    /// Probes are succeeding; the node routes traffic.
    Up,
    /// Recent failures, not yet past the threshold; still routes.
    Suspect,
    /// Past the failure threshold; out of the ring until it recovers.
    Down,
}

impl NodeState {
    /// Lower-snake name for wire responses and logs.
    pub fn name(self) -> &'static str {
        match self {
            NodeState::Up => "up",
            NodeState::Suspect => "suspect",
            NodeState::Down => "down",
        }
    }

    /// Whether the ring may route new work to the node.
    pub fn routes(self) -> bool {
        !matches!(self, NodeState::Down)
    }
}

/// A state change worth reporting (obs events, failover trigger).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Transition {
    /// The node (re-)entered `Up` from `Down`.
    CameUp,
    /// The node entered `Down`; failover must fire.
    WentDown,
}

/// The per-node machine: feed it probe results, watch for transitions.
#[derive(Debug, Clone)]
pub struct HealthMachine {
    state: NodeState,
    consecutive_failures: u32,
    consecutive_successes: u32,
    /// RTT of the most recent successful probe.
    last_rtt_ns: u64,
    fail_threshold: u32,
    recover_threshold: u32,
}

impl HealthMachine {
    /// A fresh machine starts `Up` (backends are probed before traffic
    /// arrives; an unreachable one demotes within `fail_threshold`
    /// probes).
    pub fn new(policy: &HealthPolicy) -> HealthMachine {
        HealthMachine {
            state: NodeState::Up,
            consecutive_failures: 0,
            consecutive_successes: 0,
            last_rtt_ns: 0,
            fail_threshold: policy.fail_threshold.max(1),
            recover_threshold: policy.recover_threshold.max(1),
        }
    }

    pub fn state(&self) -> NodeState {
        self.state
    }

    /// Consecutive failures so far (for the `node_down` event payload).
    pub fn failures(&self) -> u32 {
        self.consecutive_failures
    }

    /// RTT of the last successful probe, 0 if none yet.
    pub fn last_rtt_ns(&self) -> u64 {
        self.last_rtt_ns
    }

    /// Records a successful probe with its round-trip time.
    pub fn on_success(&mut self, rtt: Duration) -> Option<Transition> {
        self.last_rtt_ns = rtt.as_nanos() as u64;
        self.consecutive_failures = 0;
        match self.state {
            NodeState::Up => None,
            NodeState::Suspect => {
                self.state = NodeState::Up;
                None // never left service: not a reportable transition
            }
            NodeState::Down => {
                self.consecutive_successes += 1;
                if self.consecutive_successes >= self.recover_threshold {
                    self.state = NodeState::Up;
                    self.consecutive_successes = 0;
                    Some(Transition::CameUp)
                } else {
                    None
                }
            }
        }
    }

    /// Records a failed or timed-out probe.
    pub fn on_failure(&mut self) -> Option<Transition> {
        self.consecutive_successes = 0;
        self.consecutive_failures = self.consecutive_failures.saturating_add(1);
        match self.state {
            NodeState::Up => {
                self.state = NodeState::Suspect;
                self.check_down()
            }
            NodeState::Suspect => self.check_down(),
            NodeState::Down => None,
        }
    }

    fn check_down(&mut self) -> Option<Transition> {
        if self.consecutive_failures >= self.fail_threshold {
            self.state = NodeState::Down;
            Some(Transition::WentDown)
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn policy(fail: u32, recover: u32) -> HealthPolicy {
        HealthPolicy {
            fail_threshold: fail,
            recover_threshold: recover,
            ..HealthPolicy::default()
        }
    }

    #[test]
    fn one_failure_suspects_but_keeps_routing() {
        let mut m = HealthMachine::new(&policy(3, 2));
        assert_eq!(m.on_failure(), None);
        assert_eq!(m.state(), NodeState::Suspect);
        assert!(m.state().routes());
    }

    #[test]
    fn threshold_failures_demote_to_down_exactly_once() {
        let mut m = HealthMachine::new(&policy(3, 2));
        assert_eq!(m.on_failure(), None);
        assert_eq!(m.on_failure(), None);
        assert_eq!(m.on_failure(), Some(Transition::WentDown));
        assert_eq!(m.state(), NodeState::Down);
        assert!(!m.state().routes());
        // Further failures stay Down silently — failover fires once.
        assert_eq!(m.on_failure(), None);
        assert_eq!(m.state(), NodeState::Down);
    }

    #[test]
    fn a_success_rescues_a_suspect_without_an_event() {
        let mut m = HealthMachine::new(&policy(3, 2));
        m.on_failure();
        assert_eq!(m.on_success(Duration::from_micros(80)), None);
        assert_eq!(m.state(), NodeState::Up);
        assert_eq!(m.failures(), 0);
        assert_eq!(m.last_rtt_ns(), 80_000);
    }

    #[test]
    fn recovery_needs_consecutive_successes() {
        let mut m = HealthMachine::new(&policy(1, 2));
        assert_eq!(m.on_failure(), Some(Transition::WentDown));
        assert_eq!(m.on_success(Duration::from_micros(10)), None);
        // A failure mid-recovery resets the streak.
        assert_eq!(m.on_failure(), None);
        assert_eq!(m.on_success(Duration::from_micros(10)), None);
        assert_eq!(
            m.on_success(Duration::from_micros(10)),
            Some(Transition::CameUp)
        );
        assert_eq!(m.state(), NodeState::Up);
    }

    #[test]
    fn recovery_fires_on_exactly_the_threshold_success() {
        let mut m = HealthMachine::new(&policy(1, 3));
        assert_eq!(m.on_failure(), Some(Transition::WentDown));
        assert_eq!(m.on_success(Duration::from_micros(10)), None);
        assert_eq!(m.on_success(Duration::from_micros(10)), None);
        // Exactly recover_threshold consecutive successes — not one
        // more — re-admit the node.
        assert_eq!(
            m.on_success(Duration::from_micros(10)),
            Some(Transition::CameUp)
        );
        assert_eq!(m.state(), NodeState::Up);
        // The streak counter was consumed: staying Up is silent.
        assert_eq!(m.on_success(Duration::from_micros(10)), None);
        assert_eq!(m.state(), NodeState::Up);
    }

    #[test]
    fn suspect_rescue_happens_on_the_first_success_at_the_exact_boundary() {
        // One failure short of Down: the machine sits at the Suspect
        // edge, and a single success must fully reset the streak.
        let mut m = HealthMachine::new(&policy(3, 2));
        assert_eq!(m.on_failure(), None);
        assert_eq!(m.on_failure(), None);
        assert_eq!(m.state(), NodeState::Suspect);
        assert_eq!(m.failures(), 2, "exactly one failure short of the threshold");
        assert_eq!(m.on_success(Duration::from_micros(10)), None);
        assert_eq!(m.state(), NodeState::Up);
        assert_eq!(m.failures(), 0);
        // The reset is real: it now takes the full threshold again.
        assert_eq!(m.on_failure(), None);
        assert_eq!(m.on_failure(), None);
        assert_eq!(m.state(), NodeState::Suspect);
        assert_eq!(m.on_failure(), Some(Transition::WentDown));
    }

    #[test]
    fn a_flapping_backend_never_wedges_in_suspect() {
        // fail, success, fail, success … — each rescue must land back
        // in Up, not accumulate toward Down or stick in Suspect.
        let mut m = HealthMachine::new(&policy(2, 2));
        for _ in 0..50 {
            m.on_failure();
            assert_eq!(m.state(), NodeState::Suspect);
            m.on_success(Duration::from_micros(25));
            assert_eq!(m.state(), NodeState::Up, "a success always rescues Suspect");
        }
        assert_eq!(m.failures(), 0);
        // After all that flapping the machine is not desensitized: a
        // genuine outage still demotes at exactly the threshold.
        assert_eq!(m.on_failure(), None);
        assert_eq!(m.on_failure(), Some(Transition::WentDown));
        assert_eq!(m.state(), NodeState::Down);
    }

    #[test]
    fn flapping_cannot_oscillate_faster_than_the_thresholds() {
        let mut m = HealthMachine::new(&policy(2, 2));
        let mut transitions = 0;
        for round in 0..20 {
            let t = if round % 2 == 0 {
                m.on_failure()
            } else {
                m.on_success(Duration::from_micros(50))
            };
            transitions += usize::from(t.is_some());
        }
        // Alternating probe results never accumulate two consecutive
        // failures, so the machine never leaves Up/Suspect.
        assert_eq!(transitions, 0);
        assert!(m.state().routes());
    }
}
