//! Result memoization: a sharded in-memory LRU plus a checksummed,
//! replayable spill log.
//!
//! The store is keyed by [`JobKey`] — the content hash of a job's
//! canonical text — so *any* two requests that mean the same simulation
//! share one entry, regardless of how they were phrased on the wire.
//!
//! Two tiers:
//!
//! * **LRU cache** — `shards` independent `Mutex<HashMap>` shards (key
//!   distributes by its low bits) so concurrent workers rarely contend on
//!   the same lock. Each shard tracks a monotonic use tick; when a shard
//!   exceeds its slice of `capacity`, the least-recently-used entry is
//!   evicted. Results are `Arc`-shared, so a hit never copies the
//!   latency histograms.
//! * **Spill log** — every insertion appends one checksummed frame (see
//!   [`crate::journal`] for the framing) whose JSON payload carries the
//!   *complete deterministic result*: headline numbers plus the exact
//!   Welford state of every latency summary. On restart,
//!   [`warm_from_spill`](ResultStore::warm_from_spill) replays the log —
//!   tolerating a torn or corrupt tail — and rebuilds the LRU so
//!   completed work survives a kill -9. Replayed results are bit-exact
//!   in everything deterministic; only the wall-clock duration (reset to
//!   zero) and the coupler diagnostics (dropped) are not persisted.

use std::collections::HashMap;
use std::io;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use ra_bench::{json_object, JsonField};
use ra_cosim::RunResult;
use ra_sim::Summary;

use crate::frame::{read_frames, FrameWriter, RecoveryReport};
use crate::json::Json;
use crate::spec::{Fidelity, JobKey};

/// A cached result with its answer-quality metadata: which fidelity rung
/// produced it and the relative error bound the service estimated for
/// that rung (0.0 for full-fidelity answers with no drift history).
///
/// The store's replacement rule is *upgrade-only*: once a key holds a
/// result at some fidelity, an insert at a lower rung is ignored, so a
/// background upgrade can never be clobbered by a stale degraded run
/// racing it.
#[derive(Debug, Clone)]
pub struct StoredResult {
    /// The deterministic run result.
    pub result: Arc<RunResult>,
    /// Which rung of the ladder produced it.
    pub fidelity: Fidelity,
    /// Estimated relative error of the answer (fraction, e.g. 0.15).
    pub error_bound: f64,
}

impl StoredResult {
    /// Wraps a full-fidelity result (the spec's own mode, no bound).
    pub fn full(result: Arc<RunResult>) -> StoredResult {
        StoredResult {
            result,
            fidelity: Fidelity::Reciprocal,
            error_bound: 0.0,
        }
    }
}

/// Counters the `stats` wire verb and the smoke tests read.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Lookups that found a cached result.
    pub hits: u64,
    /// Lookups that missed.
    pub misses: u64,
    /// Results inserted.
    pub insertions: u64,
    /// Entries evicted to stay under capacity.
    pub evictions: u64,
}

impl StoreStats {
    /// Fraction of lookups served from cache (0 when none happened).
    pub fn hit_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

struct Entry {
    stored: StoredResult,
    last_used: u64,
}

#[derive(Default)]
struct Shard {
    map: HashMap<u64, Entry>,
    tick: u64,
}

/// Sharded LRU result cache with an optional checksummed spill log.
pub struct ResultStore {
    shards: Vec<Mutex<Shard>>,
    per_shard_capacity: usize,
    spill: Option<Mutex<FrameWriter>>,
    hits: AtomicU64,
    misses: AtomicU64,
    insertions: AtomicU64,
    evictions: AtomicU64,
}

impl ResultStore {
    /// A store holding at most `capacity` results across `shards` locks.
    ///
    /// `shards` is clamped to `1..=capacity.max(1)` so every shard can
    /// hold at least one entry.
    pub fn new(capacity: usize, shards: usize) -> ResultStore {
        let shards = shards.clamp(1, capacity.max(1));
        ResultStore {
            shards: (0..shards).map(|_| Mutex::new(Shard::default())).collect(),
            per_shard_capacity: capacity.div_ceil(shards).max(1),
            spill: None,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            insertions: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// Attaches (and creates or appends to) a framed spill log, fsyncing
    /// after every `fsync_every` records (0 = flush only).
    ///
    /// Call [`warm_from_spill`](ResultStore::warm_from_spill) *first*
    /// when restarting against an existing log, so recovery does not
    /// re-append what it just read.
    ///
    /// # Errors
    ///
    /// Propagates the underlying `open` failure.
    pub fn with_spill(mut self, path: &Path, fsync_every: u64) -> io::Result<ResultStore> {
        self.spill = Some(Mutex::new(FrameWriter::append_to(path, fsync_every)?));
        Ok(self)
    }

    /// Replays an existing spill log into the LRU (newest record wins),
    /// stopping at the first torn or corrupt frame. A missing file is an
    /// empty log. Records that fail semantic decoding (foreign payloads)
    /// are skipped without charging the report.
    ///
    /// # Errors
    ///
    /// Propagates read failures other than `NotFound`.
    pub fn warm_from_spill(&mut self, path: &Path) -> io::Result<RecoveryReport> {
        let bytes = match std::fs::read(path) {
            Ok(bytes) => bytes,
            Err(err) if err.kind() == io::ErrorKind::NotFound => Vec::new(),
            Err(err) => return Err(err),
        };
        let (records, mut report) = read_frames(&bytes);
        report.recovered_records = 0; // count only records that decode
        for record in &records {
            let Some((key, stored)) = decode_spill_record(record) else {
                continue;
            };
            self.insert_entry(key, stored);
            report.recovered_records += 1;
        }
        Ok(report)
    }

    fn shard(&self, key: JobKey) -> &Mutex<Shard> {
        &self.shards[(key.0 as usize) % self.shards.len()]
    }

    /// Looks up a cached result (with its fidelity tag and error bound),
    /// refreshing its recency on a hit.
    pub fn get(&self, key: JobKey) -> Option<StoredResult> {
        let mut shard = self.shard(key).lock().expect("store shard poisoned");
        shard.tick += 1;
        let tick = shard.tick;
        match shard.map.get_mut(&key.0) {
            Some(entry) => {
                entry.last_used = tick;
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(entry.stored.clone())
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Fidelity of the cached entry for `key`, without charging hit/miss
    /// counters or recency (the upgrader's "is this still degraded?"
    /// check).
    pub fn fidelity_of(&self, key: JobKey) -> Option<Fidelity> {
        self.shard(key)
            .lock()
            .expect("store shard poisoned")
            .map
            .get(&key.0)
            .map(|e| e.stored.fidelity)
    }

    /// True when `key` is cached, without perturbing hit/miss counters
    /// or recency (used by restart recovery to classify journaled jobs).
    pub fn contains(&self, key: JobKey) -> bool {
        self.shard(key)
            .lock()
            .expect("store shard poisoned")
            .map
            .contains_key(&key.0)
    }

    /// LRU insert + bounded eviction, shared by the live path and the
    /// warm-restart replay (which must not re-spill). Returns whether the
    /// entry was stored: an insert at a *lower* fidelity than what the
    /// key already holds is a no-op (upgrade-only replacement), so a
    /// stale degraded run can never clobber an upgraded answer.
    fn insert_entry(&self, key: JobKey, stored: StoredResult) -> bool {
        let mut shard = self.shard(key).lock().expect("store shard poisoned");
        shard.tick += 1;
        let tick = shard.tick;
        if let Some(existing) = shard.map.get(&key.0) {
            if existing.stored.fidelity > stored.fidelity {
                return false;
            }
        }
        shard.map.insert(
            key.0,
            Entry {
                stored,
                last_used: tick,
            },
        );
        while shard.map.len() > self.per_shard_capacity {
            // O(shard) scan; shards are small (capacity / shards) and
            // eviction is off the submit fast path.
            let coldest = shard
                .map
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| *k)
                .expect("non-empty shard");
            shard.map.remove(&coldest);
            self.evictions.fetch_add(1, Ordering::Relaxed);
        }
        true
    }

    /// Inserts (or refreshes) a result and appends a framed spill record.
    /// Returns whether the entry was stored; a lower-fidelity insert than
    /// what the key already holds is skipped (and not spilled, so a warm
    /// restart cannot resurrect the downgrade either).
    ///
    /// `spec` is the job's canonical text, recorded in the spill so the
    /// log is self-describing without the hash preimage.
    pub fn insert(&self, key: JobKey, spec: &str, stored: StoredResult) -> bool {
        if !self.insert_entry(key, stored.clone()) {
            return false;
        }
        self.insertions.fetch_add(1, Ordering::Relaxed);
        if let Some(spill) = &self.spill {
            let payload = encode_spill_record(key, spec, &stored);
            let mut spill = spill.lock().expect("spill log poisoned");
            // A full disk shouldn't take the service down; the cache is
            // authoritative and the spill is advisory.
            let _ = spill.append(&payload);
        }
        true
    }

    /// Flushes and fsyncs the spill log (no-op without one) — the drain
    /// path's "nothing buffered" guarantee.
    ///
    /// # Errors
    ///
    /// Propagates the flush/sync failure.
    pub fn sync_spill(&self) -> io::Result<()> {
        match &self.spill {
            Some(spill) => spill.lock().expect("spill log poisoned").sync(),
            None => Ok(()),
        }
    }

    /// Number of cached results across all shards.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("store shard poisoned").map.len())
            .sum()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Counter snapshot (hits/misses/insertions/evictions).
    pub fn stats(&self) -> StoreStats {
        StoreStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            insertions: self.insertions.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
        }
    }
}

/// `[count, mean, m2, min, max]`, or `[0]` for an empty summary (whose
/// ±inf min/max sentinels have no JSON representation). f64s print in
/// Rust's shortest-round-trip form, so decode is bit-exact.
fn summary_json(s: &Summary) -> String {
    if s.count() == 0 {
        "[0]".to_owned()
    } else {
        format!(
            "[{},{},{},{},{}]",
            s.count(),
            s.mean(),
            s.m2(),
            s.min(),
            s.max()
        )
    }
}

fn summary_from_json(json: &Json) -> Option<Summary> {
    let Json::Arr(items) = json else {
        return None;
    };
    let count = items.first()?.as_u64()?;
    if count == 0 {
        return Some(Summary::new());
    }
    if items.len() != 5 {
        return None;
    }
    Some(Summary::from_parts(
        count,
        items[1].as_f64()?,
        items[2].as_f64()?,
        items[3].as_f64()?,
        items[4].as_f64()?,
    ))
}

/// One spill payload: everything deterministic about a completed run,
/// plus the answer-quality metadata (fidelity tag and error bound).
fn encode_spill_record(key: JobKey, spec: &str, stored: &StoredResult) -> String {
    let result = &stored.result;
    let classes: Vec<String> = result.class_latency.iter().map(summary_json).collect();
    let mut class_latency = String::from("[");
    class_latency.push_str(&classes.join(","));
    class_latency.push(']');
    json_object(&[
        ("rec", JsonField::Str("result".into())),
        ("job", JsonField::Str(key.to_string())),
        ("spec", JsonField::Str(spec.to_owned())),
        ("workload", JsonField::Str(result.workload.clone())),
        ("mode", JsonField::Str(result.mode.clone())),
        ("cycles", JsonField::Int(result.cycles)),
        ("messages", JsonField::Int(result.messages)),
        ("ipc", JsonField::Num(result.ipc)),
        ("calibrations", JsonField::Int(result.calibrations)),
        ("latency", JsonField::Raw(summary_json(&result.latency))),
        ("class_latency", JsonField::Raw(class_latency)),
        ("fidelity", JsonField::Str(stored.fidelity.name().to_owned())),
        ("error_bound", JsonField::Num(stored.error_bound)),
    ])
}

fn decode_spill_record(payload: &str) -> Option<(JobKey, StoredResult)> {
    let json = Json::parse(payload).ok()?;
    if json.get("rec").and_then(Json::as_str) != Some("result") {
        return None;
    }
    let key: JobKey = json.get("job")?.as_str()?.parse().ok()?;
    let class_latency = match json.get("class_latency")? {
        Json::Arr(items) => items
            .iter()
            .map(summary_from_json)
            .collect::<Option<Vec<Summary>>>()?,
        _ => return None,
    };
    // Records written before the fidelity ladder carry neither field;
    // they were all full-fidelity runs, with no estimated bound.
    let fidelity = match json.get("fidelity") {
        Some(j) => j.as_str()?.parse().ok()?,
        None => Fidelity::Reciprocal,
    };
    let error_bound = match json.get("error_bound") {
        Some(j) => j.as_f64()?,
        None => 0.0,
    };
    let result = RunResult {
        workload: json.get("workload")?.as_str()?.to_owned(),
        mode: json.get("mode")?.as_str()?.to_owned(),
        cycles: json.get("cycles")?.as_u64()?,
        wall: Duration::ZERO,
        latency: summary_from_json(json.get("latency")?)?,
        class_latency,
        messages: json.get("messages")?.as_u64()?,
        ipc: json.get("ipc")?.as_f64()?,
        calibrations: json.get("calibrations")?.as_u64()?,
        coupler: None,
    };
    Some((
        key,
        StoredResult {
            result: Arc::new(result),
            fidelity,
            error_bound,
        },
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ra_cosim::{ModeSpec, Target};
    use ra_workloads::AppProfile;

    fn tiny_result(cycles: u64) -> Arc<RunResult> {
        let target = Target::cmp(2, 2);
        let app = AppProfile::water();
        let mut result = ra_cosim::RunSpec::new(&target, &app)
            .mode(ModeSpec::Fixed(10))
            .instructions(5)
            .budget(100_000)
            .run()
            .unwrap();
        result.cycles = cycles; // distinguishable payloads for the tests
        Arc::new(result)
    }

    fn temp_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "ra-serve-store-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn get_after_insert_hits_and_counts() {
        let store = ResultStore::new(8, 2);
        let key = JobKey(0x11);
        assert!(store.get(key).is_none());
        store.insert(key, "spec", StoredResult::full(tiny_result(1)));
        let hit = store.get(key).expect("cached");
        assert_eq!(hit.result.cycles, 1);
        assert_eq!(hit.fidelity, Fidelity::Reciprocal);
        assert_eq!(hit.error_bound, 0.0);
        let stats = store.stats();
        assert_eq!((stats.hits, stats.misses, stats.insertions), (1, 1, 1));
        assert!((stats.hit_ratio() - 0.5).abs() < 1e-12);
        assert!(store.contains(key));
        assert_eq!(store.stats().hits, 1, "contains() charges no counters");
    }

    #[test]
    fn lru_evicts_the_coldest_entry_per_shard() {
        // Single shard, capacity 2: touching key 1 makes key 2 coldest.
        let store = ResultStore::new(2, 1);
        store.insert(JobKey(1), "a", StoredResult::full(tiny_result(1)));
        store.insert(JobKey(2), "b", StoredResult::full(tiny_result(2)));
        assert!(store.get(JobKey(1)).is_some());
        store.insert(JobKey(3), "c", StoredResult::full(tiny_result(3)));
        assert!(store.get(JobKey(2)).is_none(), "coldest entry evicted");
        assert!(store.get(JobKey(1)).is_some());
        assert!(store.get(JobKey(3)).is_some());
        assert_eq!(store.stats().evictions, 1);
        assert_eq!(store.len(), 2);
    }

    #[test]
    fn keys_spread_across_shards() {
        let store = ResultStore::new(64, 4);
        for k in 0..16u64 {
            store.insert(JobKey(k), "s", StoredResult::full(tiny_result(k)));
        }
        assert_eq!(store.len(), 16);
        let occupied = store
            .shards
            .iter()
            .filter(|s| !s.lock().unwrap().map.is_empty())
            .count();
        assert_eq!(occupied, 4, "sequential keys should use every shard");
    }

    #[test]
    fn spill_log_appends_one_checksummed_frame_per_insertion() {
        let dir = temp_dir("frames");
        let path = dir.join("results.jsonl");
        let _ = std::fs::remove_file(&path);
        {
            let store = ResultStore::new(8, 1).with_spill(&path, 0).unwrap();
            store.insert(
                JobKey(0xAB),
                "target=2x2 app=water",
                StoredResult::full(tiny_result(7)),
            );
            store.insert(
                JobKey(0xCD),
                "target=2x2 app=ocean",
                StoredResult::full(tiny_result(8)),
            );
        }
        let bytes = std::fs::read(&path).unwrap();
        let (records, report) = read_frames(&bytes);
        assert_eq!(report.recovered_records, 2);
        assert_eq!(report.dropped_tail_bytes, 0);
        assert_eq!(report.checksum_errors, 0);
        assert!(records[0].contains("\"job\":\"00000000000000ab\""));
        assert!(records[0].contains("\"spec\":\"target=2x2 app=water\""));
        assert!(records[0].contains("\"cycles\":7"));
        assert!(records[0].contains("\"fidelity\":\"reciprocal\""));
        assert!(records[1].contains("\"job\":\"00000000000000cd\""));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn warm_restart_replays_the_spill_bit_exactly() {
        let dir = temp_dir("warm");
        let path = dir.join("results.jsonl");
        let _ = std::fs::remove_file(&path);
        let original = tiny_result(0); // keep the run's true cycles
        {
            let store = ResultStore::new(8, 2).with_spill(&path, 0).unwrap();
            store.insert(JobKey(0x11), "spec a", StoredResult::full(original.clone()));
            store.insert(JobKey(0x22), "spec b", StoredResult::full(tiny_result(99)));
        }
        let mut cold = ResultStore::new(8, 2);
        let report = cold.warm_from_spill(&path).unwrap();
        assert_eq!(report.recovered_records, 2);
        assert_eq!(report.checksum_errors, 0);
        assert_eq!(cold.len(), 2);
        let replayed = cold.get(JobKey(0x11)).expect("warmed");
        assert_eq!(replayed.fidelity, Fidelity::Reciprocal);
        assert_eq!(replayed.error_bound, 0.0);
        let replayed = replayed.result;
        assert_eq!(replayed.cycles, original.cycles);
        assert_eq!(replayed.messages, original.messages);
        assert_eq!(replayed.ipc, original.ipc);
        assert_eq!(replayed.latency, original.latency, "Welford state is bit-exact");
        assert_eq!(replayed.class_latency, original.class_latency);
        assert_eq!(replayed.workload, original.workload);
        assert_eq!(replayed.mode, original.mode);
        assert_eq!(replayed.wall, Duration::ZERO, "wall clock is not persisted");
        assert!(replayed.coupler.is_none(), "coupler diagnostics are not persisted");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn warm_restart_survives_a_torn_tail() {
        let dir = temp_dir("torn");
        let path = dir.join("results.jsonl");
        let _ = std::fs::remove_file(&path);
        {
            let store = ResultStore::new(8, 1).with_spill(&path, 0).unwrap();
            store.insert(JobKey(0x1), "a", StoredResult::full(tiny_result(1)));
            store.insert(JobKey(0x2), "b", StoredResult::full(tiny_result(2)));
        }
        // Tear the file mid-way through the second record.
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 10]).unwrap();
        let mut cold = ResultStore::new(8, 1);
        let report = cold.warm_from_spill(&path).unwrap();
        assert_eq!(report.recovered_records, 1);
        assert!(report.dropped_tail_bytes > 0);
        assert_eq!(report.checksum_errors, 0, "a tear is not a checksum error");
        assert!(cold.contains(JobKey(0x1)));
        assert!(!cold.contains(JobKey(0x2)));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn replacement_is_upgrade_only() {
        let store = ResultStore::new(8, 1);
        let key = JobKey(0x5);
        let degraded = StoredResult {
            result: tiny_result(10),
            fidelity: Fidelity::Hop,
            error_bound: 0.69,
        };
        assert!(store.insert(key, "s", degraded.clone()));
        assert_eq!(store.fidelity_of(key), Some(Fidelity::Hop));

        // Upgrading to calibrated replaces the entry...
        let calibrated = StoredResult {
            result: tiny_result(20),
            fidelity: Fidelity::Calibrated,
            error_bound: 0.15,
        };
        assert!(store.insert(key, "s", calibrated));
        let hit = store.get(key).unwrap();
        assert_eq!(hit.result.cycles, 20);
        assert_eq!(hit.fidelity, Fidelity::Calibrated);

        // ...but a stale degraded run racing the upgrade is ignored.
        assert!(!store.insert(key, "s", degraded));
        let hit = store.get(key).unwrap();
        assert_eq!(hit.result.cycles, 20);
        assert_eq!(hit.fidelity, Fidelity::Calibrated);
        assert_eq!(store.stats().insertions, 2, "the skipped insert is not counted");

        // Same-fidelity re-insert still refreshes (idempotent re-publish).
        let refreshed = StoredResult {
            result: tiny_result(30),
            fidelity: Fidelity::Calibrated,
            error_bound: 0.12,
        };
        assert!(store.insert(key, "s", refreshed));
        assert_eq!(store.get(key).unwrap().result.cycles, 30);
    }

    #[test]
    fn fidelity_and_error_bound_survive_the_spill_round_trip() {
        let dir = temp_dir("fidelity");
        let path = dir.join("results.jsonl");
        let _ = std::fs::remove_file(&path);
        {
            let store = ResultStore::new(8, 1).with_spill(&path, 0).unwrap();
            store.insert(
                JobKey(0x7),
                "spec",
                StoredResult {
                    result: tiny_result(3),
                    fidelity: Fidelity::Calibrated,
                    error_bound: 0.15,
                },
            );
        }
        let mut cold = ResultStore::new(8, 1);
        let report = cold.warm_from_spill(&path).unwrap();
        assert_eq!(report.recovered_records, 1);
        let hit = cold.get(JobKey(0x7)).unwrap();
        assert_eq!(hit.fidelity, Fidelity::Calibrated);
        assert_eq!(hit.error_bound, 0.15);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn legacy_spill_records_decode_as_full_fidelity() {
        // A record written before the ladder carries neither new field.
        let stored = StoredResult::full(tiny_result(4));
        let payload = encode_spill_record(JobKey(0x9), "spec", &stored);
        let legacy = payload
            .replace(",\"fidelity\":\"reciprocal\"", "")
            .replace(",\"error_bound\":0", "");
        assert!(!legacy.contains("fidelity"));
        let (key, decoded) = decode_spill_record(&legacy).expect("legacy decodes");
        assert_eq!(key, JobKey(0x9));
        assert_eq!(decoded.fidelity, Fidelity::Reciprocal);
        assert_eq!(decoded.error_bound, 0.0);
    }

    #[test]
    fn warm_restart_of_a_missing_spill_is_empty() {
        let mut store = ResultStore::new(8, 1);
        let report = store
            .warm_from_spill(Path::new("/nonexistent/ra-serve/spill"))
            .unwrap();
        assert_eq!(report, RecoveryReport::default());
        assert!(store.is_empty());
    }
}
