//! Result memoization: a sharded in-memory LRU plus an append-only
//! JSONL spill log.
//!
//! The store is keyed by [`JobKey`] — the content hash of a job's
//! canonical text — so *any* two requests that mean the same simulation
//! share one entry, regardless of how they were phrased on the wire.
//!
//! Two tiers:
//!
//! * **LRU cache** — `shards` independent `Mutex<HashMap>` shards (key
//!   distributes by its low bits) so concurrent workers rarely contend on
//!   the same lock. Each shard tracks a monotonic use tick; when a shard
//!   exceeds its slice of `capacity`, the least-recently-used entry is
//!   evicted. Results are `Arc`-shared, so a hit never copies the
//!   latency histograms.
//! * **Spill log** — every insertion appends one JSON line (job key,
//!   canonical spec, headline numbers) to an optional JSONL file. The
//!   spill is an audit/replay record, not a second cache tier: the
//!   server never reads it back, but `tail -f` on it is the cheapest
//!   possible service dashboard, and a future process can replay it to
//!   warm a cold cache.

use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::{BufWriter, Write};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use ra_bench::{json_object, JsonField};
use ra_cosim::RunResult;

use crate::spec::JobKey;

/// Counters the `stats` wire verb and the smoke tests read.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Lookups that found a cached result.
    pub hits: u64,
    /// Lookups that missed.
    pub misses: u64,
    /// Results inserted.
    pub insertions: u64,
    /// Entries evicted to stay under capacity.
    pub evictions: u64,
}

impl StoreStats {
    /// Fraction of lookups served from cache (0 when none happened).
    pub fn hit_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

struct Entry {
    result: Arc<RunResult>,
    last_used: u64,
}

#[derive(Default)]
struct Shard {
    map: HashMap<u64, Entry>,
    tick: u64,
}

/// Sharded LRU result cache with an optional JSONL spill log.
pub struct ResultStore {
    shards: Vec<Mutex<Shard>>,
    per_shard_capacity: usize,
    spill: Option<Mutex<BufWriter<File>>>,
    hits: AtomicU64,
    misses: AtomicU64,
    insertions: AtomicU64,
    evictions: AtomicU64,
}

impl ResultStore {
    /// A store holding at most `capacity` results across `shards` locks.
    ///
    /// `shards` is clamped to `1..=capacity.max(1)` so every shard can
    /// hold at least one entry.
    pub fn new(capacity: usize, shards: usize) -> ResultStore {
        let shards = shards.clamp(1, capacity.max(1));
        ResultStore {
            shards: (0..shards).map(|_| Mutex::new(Shard::default())).collect(),
            per_shard_capacity: capacity.div_ceil(shards).max(1),
            spill: None,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            insertions: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// Attaches (and creates or appends to) a JSONL spill log.
    ///
    /// # Errors
    ///
    /// Propagates the underlying `open` failure.
    pub fn with_spill(mut self, path: &Path) -> std::io::Result<ResultStore> {
        let file = OpenOptions::new().create(true).append(true).open(path)?;
        self.spill = Some(Mutex::new(BufWriter::new(file)));
        Ok(self)
    }

    fn shard(&self, key: JobKey) -> &Mutex<Shard> {
        &self.shards[(key.0 as usize) % self.shards.len()]
    }

    /// Looks up a cached result, refreshing its recency on a hit.
    pub fn get(&self, key: JobKey) -> Option<Arc<RunResult>> {
        let mut shard = self.shard(key).lock().expect("store shard poisoned");
        shard.tick += 1;
        let tick = shard.tick;
        match shard.map.get_mut(&key.0) {
            Some(entry) => {
                entry.last_used = tick;
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(entry.result.clone())
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Inserts (or refreshes) a result and appends a spill-log line.
    ///
    /// `spec` is the job's canonical text, recorded in the spill so the
    /// log is self-describing without the hash preimage.
    pub fn insert(&self, key: JobKey, spec: &str, result: Arc<RunResult>) {
        {
            let mut shard = self.shard(key).lock().expect("store shard poisoned");
            shard.tick += 1;
            let tick = shard.tick;
            shard.map.insert(
                key.0,
                Entry {
                    result: result.clone(),
                    last_used: tick,
                },
            );
            while shard.map.len() > self.per_shard_capacity {
                // O(shard) scan; shards are small (capacity / shards) and
                // eviction is off the submit fast path.
                let coldest = shard
                    .map
                    .iter()
                    .min_by_key(|(_, e)| e.last_used)
                    .map(|(k, _)| *k)
                    .expect("non-empty shard");
                shard.map.remove(&coldest);
                self.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
        self.insertions.fetch_add(1, Ordering::Relaxed);
        if let Some(spill) = &self.spill {
            let line = json_object(&[
                ("job", JsonField::Str(key.to_string())),
                ("spec", JsonField::Str(spec.to_owned())),
                ("cycles", JsonField::Int(result.cycles)),
                ("messages", JsonField::Int(result.messages)),
                ("ipc", JsonField::Num(result.ipc)),
                ("latency_mean", JsonField::Num(result.latency.mean())),
                ("calibrations", JsonField::Int(result.calibrations)),
            ]);
            let mut spill = spill.lock().expect("spill log poisoned");
            // A full disk shouldn't take the service down; the cache is
            // authoritative and the spill is advisory.
            let _ = writeln!(spill, "{line}");
            let _ = spill.flush();
        }
    }

    /// Number of cached results across all shards.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("store shard poisoned").map.len())
            .sum()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Counter snapshot (hits/misses/insertions/evictions).
    pub fn stats(&self) -> StoreStats {
        StoreStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            insertions: self.insertions.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ra_cosim::{ModeSpec, Target};
    use ra_workloads::AppProfile;

    fn tiny_result(cycles: u64) -> Arc<RunResult> {
        let target = Target::cmp(2, 2);
        let app = AppProfile::water();
        let mut result = ra_cosim::RunSpec::new(&target, &app)
            .mode(ModeSpec::Fixed(10))
            .instructions(5)
            .budget(100_000)
            .run()
            .unwrap();
        result.cycles = cycles; // distinguishable payloads for the tests
        Arc::new(result)
    }

    #[test]
    fn get_after_insert_hits_and_counts() {
        let store = ResultStore::new(8, 2);
        let key = JobKey(0x11);
        assert!(store.get(key).is_none());
        store.insert(key, "spec", tiny_result(1));
        let hit = store.get(key).expect("cached");
        assert_eq!(hit.cycles, 1);
        let stats = store.stats();
        assert_eq!((stats.hits, stats.misses, stats.insertions), (1, 1, 1));
        assert!((stats.hit_ratio() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn lru_evicts_the_coldest_entry_per_shard() {
        // Single shard, capacity 2: touching key 1 makes key 2 coldest.
        let store = ResultStore::new(2, 1);
        store.insert(JobKey(1), "a", tiny_result(1));
        store.insert(JobKey(2), "b", tiny_result(2));
        assert!(store.get(JobKey(1)).is_some());
        store.insert(JobKey(3), "c", tiny_result(3));
        assert!(store.get(JobKey(2)).is_none(), "coldest entry evicted");
        assert!(store.get(JobKey(1)).is_some());
        assert!(store.get(JobKey(3)).is_some());
        assert_eq!(store.stats().evictions, 1);
        assert_eq!(store.len(), 2);
    }

    #[test]
    fn keys_spread_across_shards() {
        let store = ResultStore::new(64, 4);
        for k in 0..16u64 {
            store.insert(JobKey(k), "s", tiny_result(k));
        }
        assert_eq!(store.len(), 16);
        let occupied = store
            .shards
            .iter()
            .filter(|s| !s.lock().unwrap().map.is_empty())
            .count();
        assert_eq!(occupied, 4, "sequential keys should use every shard");
    }

    #[test]
    fn spill_log_appends_one_line_per_insertion() {
        let dir = std::env::temp_dir().join(format!(
            "ra-serve-spill-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("results.jsonl");
        let _ = std::fs::remove_file(&path);
        {
            let store = ResultStore::new(8, 1).with_spill(&path).unwrap();
            store.insert(JobKey(0xAB), "target=2x2 app=water", tiny_result(7));
            store.insert(JobKey(0xCD), "target=2x2 app=ocean", tiny_result(8));
        }
        let log = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = log.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("\"job\":\"00000000000000ab\""));
        assert!(lines[0].contains("\"spec\":\"target=2x2 app=water\""));
        assert!(lines[0].contains("\"cycles\":7"));
        assert!(lines[1].contains("\"job\":\"00000000000000cd\""));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
