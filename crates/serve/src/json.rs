//! A minimal JSON reader for the wire layer.
//!
//! The workspace's vendored `serde` is a no-op marker stub (see the root
//! `vendor/` README), so the service cannot derive deserializers; every
//! crate here hand-writes its JSON *output* (`ra_bench::json_object`,
//! the obs `JsonlRecorder`). This module is the matching *input* side: a
//! small recursive-descent parser producing a [`Json`] tree, plus typed
//! accessors for the flat request/response objects the protocol uses.
//!
//! Scope: standard JSON minus exotica — no duplicate-key detection
//! (last write wins, like most parsers) and `\uXXXX` escapes decode the
//! BMP only (unpaired surrogates are replaced). Numbers are `f64`,
//! which is why job keys travel as 16-hex-digit *strings* on the wire:
//! a u64 hash does not survive an f64 round-trip past 2^53.

use std::collections::HashMap;
use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (always `f64`).
    Num(f64),
    /// A string, unescaped.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object.
    Obj(HashMap<String, Json>),
}

impl Json {
    /// Parses one JSON document; trailing non-whitespace is an error.
    ///
    /// # Errors
    ///
    /// [`JsonError`] with a byte offset and what went wrong.
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut cursor = Cursor {
            bytes: text.as_bytes(),
            pos: 0,
        };
        cursor.skip_ws();
        let value = cursor.value()?;
        cursor.skip_ws();
        if cursor.pos != cursor.bytes.len() {
            return Err(cursor.err("trailing characters after the document"));
        }
        Ok(value)
    }

    /// Member lookup on an object (`None` for other variants).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(map) => map.get(key),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric payload as an exact unsigned integer (`None` when
    /// negative, fractional, or beyond f64's 2^53 exact-integer range).
    pub fn as_u64(&self) -> Option<u64> {
        let n = self.as_f64()?;
        if (0.0..=9_007_199_254_740_992.0).contains(&n) && n.fract() == 0.0 {
            Some(n as u64)
        } else {
            None
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

/// A parse failure: what and where (byte offset).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset into the input.
    pub at: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.at, self.message)
    }
}

impl std::error::Error for JsonError {}

struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Cursor<'_> {
    fn err(&self, message: impl Into<String>) -> JsonError {
        JsonError {
            at: self.pos,
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), JsonError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected `{}`", byte as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected `{word}`")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(c) => Err(self.err(format!("unexpected `{}`", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut map = HashMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            map.insert(key, self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(map));
                }
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let escape = self.peek().ok_or_else(|| self.err("dangling escape"))?;
                    self.pos += 1;
                    match escape {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                        }
                        other => {
                            return Err(self.err(format!("bad escape `\\{}`", other as char)))
                        }
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so the
                    // encoding is valid by construction).
                    let rest = &self.bytes[self.pos..];
                    let text = std::str::from_utf8(rest)
                        .map_err(|_| self.err("invalid UTF-8 in string"))?;
                    let c = text.chars().next().expect("peeked non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        while matches!(
            self.peek(),
            Some(b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii digits");
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err(format!("bad number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_wire_request() {
        let parsed = Json::parse(
            r#"{"verb":"submit","spec":"target=4x4 app=water","priority":"high","deadline_ms":250,"dry":false,"note":null}"#,
        )
        .unwrap();
        assert_eq!(parsed.get("verb").and_then(Json::as_str), Some("submit"));
        assert_eq!(
            parsed.get("spec").and_then(Json::as_str),
            Some("target=4x4 app=water")
        );
        assert_eq!(parsed.get("deadline_ms").and_then(Json::as_u64), Some(250));
        assert_eq!(parsed.get("dry").and_then(Json::as_bool), Some(false));
        assert_eq!(parsed.get("note"), Some(&Json::Null));
        assert_eq!(parsed.get("absent"), None);
    }

    #[test]
    fn nested_arrays_objects_and_escapes_round_trip() {
        let parsed = Json::parse(
            r#"{ "rows" : [ {"x": 1.5}, {"x": -2e3} ], "s": "a\"b\\c\ndA" }"#,
        )
        .unwrap();
        let rows = match parsed.get("rows") {
            Some(Json::Arr(rows)) => rows,
            other => panic!("rows should be an array, got {other:?}"),
        };
        assert_eq!(rows[0].get("x").and_then(Json::as_f64), Some(1.5));
        assert_eq!(rows[1].get("x").and_then(Json::as_f64), Some(-2000.0));
        assert_eq!(parsed.get("s").and_then(Json::as_str), Some("a\"b\\c\ndA"));
    }

    #[test]
    fn bench_json_output_parses_back() {
        // The server emits with ra_bench's writer; the client parses with
        // this module. Keep the two ends compatible.
        let line = ra_bench::json_object(&[
            ("ok", ra_bench::JsonField::Raw("true".into())),
            ("job", ra_bench::JsonField::Str("00c0ffee00c0ffee".into())),
            ("depth", ra_bench::JsonField::Int(3)),
            ("ratio", ra_bench::JsonField::Num(0.625)),
        ]);
        let parsed = Json::parse(&line).unwrap();
        assert_eq!(parsed.get("ok").and_then(Json::as_bool), Some(true));
        assert_eq!(
            parsed.get("job").and_then(Json::as_str),
            Some("00c0ffee00c0ffee")
        );
        assert_eq!(parsed.get("depth").and_then(Json::as_u64), Some(3));
        assert_eq!(parsed.get("ratio").and_then(Json::as_f64), Some(0.625));
    }

    #[test]
    fn as_u64_guards_precision_and_sign() {
        assert_eq!(Json::Num(-1.0).as_u64(), None);
        assert_eq!(Json::Num(1.5).as_u64(), None);
        assert_eq!(Json::Num(1e300).as_u64(), None);
        assert_eq!(Json::Num(9_007_199_254_740_992.0).as_u64(), Some(1 << 53));
        assert_eq!(Json::Str("7".into()).as_u64(), None);
    }

    #[test]
    fn errors_carry_positions() {
        for (text, needle) in [
            ("", "end of input"),
            ("{", "expected `\"`"),
            (r#"{"a":1"#, "expected `,` or `}`"),
            ("[1 2]", "expected `,` or `]`"),
            ("tru", "expected `true`"),
            (r#"{"a":1} extra"#, "trailing"),
            (r#""\q""#, "bad escape"),
            (r#""\u00g1""#, "bad \\u"),
        ] {
            let err = Json::parse(text).unwrap_err();
            assert!(
                err.to_string().contains(needle),
                "`{text}` -> `{err}` (wanted `{needle}`)"
            );
        }
    }
}
