//! `ra-serve`: a concurrent simulation-job service over the reciprocal
//! co-simulation driver.
//!
//! Experiment sweeps and interactive tooling hit the same small set of
//! simulations over and over — the mode ladder on the standard targets,
//! a handful of seeds. Running each request with a fresh [`RunSpec`] is
//! both serial and wasteful. This crate packages the driver as a
//! *service*:
//!
//! * [`JobSpec`] — an owned, canonical job description with a stable
//!   content hash ([`JobKey`]) and text round-trip, convertible into the
//!   borrowed [`RunSpec`];
//! * [`ResultStore`] — sharded in-memory LRU memoization of completed
//!   [`RunResult`]s, plus a checksummed, replayable spill log;
//! * [`journal`] — the crash-safety layer: a shared checksummed frame
//!   format for both durability logs and a write-ahead job journal, so
//!   a restart (even after kill -9) rebuilds the memo cache and
//!   re-enqueues admitted-but-unfinished jobs exactly once;
//! * [`JobService`] — a fixed worker pool behind a *bounded* admission
//!   queue with explicit backpressure ([`Rejected::QueueFull`]),
//!   priorities, whole-life deadlines (queued jobs expire, running jobs
//!   are cooperatively cancelled by a reaper), single-flight coalescing
//!   of identical jobs, interest-counted cooperative cancellation
//!   (reusing the engine's watchdog poll via
//!   [`RunSpec::cancel_flag`](ra_cosim::RunSpec::cancel_flag)), a
//!   panic-catching worker supervisor with per-job strike quarantine,
//!   and bounded retry with exponential backoff for transient faults;
//! * [`wire`] — line-delimited JSON over `std::net` TCP (the `ra-serve`
//!   server bin and the `ra-loadgen` load generator bin), no async
//!   runtime required, with an idle-connection reaper so stalled peers
//!   cannot pin connection threads;
//! * [`cluster`] / [`ring`] / [`health`] — the multi-node tier: the
//!   `ra-relay` coordinator consistent-hashes [`JobKey`]s across N
//!   backend nodes, probes their health (Up/Suspect/Down), forwards the
//!   wire verbs with per-forward deadlines and jittered retries, and on
//!   node death re-routes the dead shard to survivors with exactly-once
//!   handoff (dedup by `JobKey` against the survivor's memo store);
//! * observability — service events (`job_admitted`, `job_rejected`,
//!   `cache_hit`, `job_done`) and per-job run spans flow through the
//!   existing [`ra_obs`] recorder taxonomy.
//!
//! Everything is deterministic where the simulator is: one job's result
//! depends only on its canonical spec, never on scheduling order — the
//! property the workspace-level determinism suite pins down.
//!
//! # Quick start
//!
//! ```
//! use ra_serve::{JobService, JobSpec, Priority, ServeConfig};
//!
//! let service = JobService::start(ServeConfig::default(), ra_obs::ObsSink::disabled())?;
//! let spec: JobSpec = "target=2x2 app=water mode=fixed:10 instructions=20 budget=100000"
//!     .parse()
//!     .expect("canonical spec");
//! let first = service.submit(spec.clone(), Priority::High, None).expect("admitted");
//! let outcome = service.wait(first.ticket, None).expect("finishes");
//! assert_eq!(outcome.label(), "completed");
//!
//! // Identical resubmission: served from the memo store, no simulation.
//! let again = service.submit(spec, Priority::Low, None).expect("admitted");
//! assert_eq!(again.disposition.label(), "cached");
//! service.shutdown();
//! # Ok::<(), std::io::Error>(())
//! ```
//!
//! [`RunSpec`]: ra_cosim::RunSpec
//! [`RunResult`]: ra_cosim::RunResult

pub mod admission;
pub mod breaker;
pub mod cluster;
pub mod codec;
pub mod frame;
pub mod health;
pub mod journal;
pub mod proto;
pub mod json;
pub mod ring;
pub mod scheduler;
pub mod spec;
pub mod store;
pub mod wire;

pub use admission::{AdmissionConfig, AdmissionController, BrownoutLevel, Ewma, TokenBucket};
pub use breaker::{BreakerConfig, BreakerState, CircuitBreaker};
pub use cluster::{Relay, RelayConfig, RelayHandle, RelayStats};
pub use codec::{BinaryCodec, Codec, JsonCodec};
pub use frame::{FrameStep, RecoveryReport};
pub use health::{HealthMachine, HealthPolicy, NodeState};
pub use journal::{Journal, JournalRecovery, UnfinishedJob};
pub use proto::{ErrorCode, Request, Response, SubmitItem, WireError};
pub use json::{Json, JsonError};
pub use ring::HashRing;
pub use scheduler::{
    CancelOutcome, ChaosConfig, Disposition, JobOutcome, JobService, JobStatus, Priority,
    RecoveryInfo, Rejected, ServeConfig, ServiceStats, SubmitParams, SubmitReceipt, Ticket,
    WaitError,
};
pub use spec::{Fidelity, JobKey, JobSpec, SpecError};
pub use store::{ResultStore, StoreStats, StoredResult};
pub use wire::{ServerHandle, WireClient, WireServer};

#[cfg(test)]
mod service_tests {
    use super::*;
    use ra_obs::{Event, ObsSink, RingRecorder};
    use std::time::{Duration, Instant};

    const FAST: &str = "target=2x2 app=water mode=fixed:10 instructions=20 budget=100000";
    /// Long enough to still be running while the test submits more work,
    /// but bounded, and cancellable at the 512-cycle watchdog poll.
    const SLOW: &str = "target=2x2 app=water mode=fixed:10 instructions=60000 budget=30000000";
    /// Comfortably outlives a short deadline even on a loaded CI box.
    const VERY_SLOW: &str =
        "target=2x2 app=water mode=fixed:10 instructions=200000 budget=100000000";

    fn service_with_ring(
        config: ServeConfig,
    ) -> (JobService, std::sync::Arc<std::sync::Mutex<RingRecorder>>) {
        let (sink, ring) = ObsSink::attach(RingRecorder::new(4096));
        let service = JobService::start(config, sink).expect("service starts");
        (service, ring)
    }

    fn spin_until_running(service: &JobService, ticket: Ticket) {
        let deadline = Instant::now() + Duration::from_secs(20);
        loop {
            match service.status(ticket) {
                Some(JobStatus::Running) => return,
                Some(_) if Instant::now() < deadline => {
                    std::thread::sleep(Duration::from_millis(1));
                }
                other => panic!("job never started running: {other:?}"),
            }
        }
    }

    #[test]
    fn resubmission_is_a_cache_hit_and_skips_the_simulator() {
        let (service, ring) = service_with_ring(ServeConfig {
            workers: 1,
            ..ServeConfig::default()
        });
        let spec: JobSpec = FAST.parse().unwrap();

        let first = service.submit(spec.clone(), Priority::Normal, None).unwrap();
        assert!(matches!(first.disposition, Disposition::Enqueued { .. }));
        let outcome = service.wait(first.ticket, None).unwrap();
        let JobOutcome::Completed { result, cached, .. } = outcome else {
            panic!("first run should complete");
        };
        assert!(!cached);

        let second = service.submit(spec, Priority::Normal, None).unwrap();
        assert_eq!(second.disposition, Disposition::CacheHit);
        let JobOutcome::Completed {
            result: cached_result,
            cached: true,
            ..
        } = service.wait(second.ticket, None).unwrap()
        else {
            panic!("resubmission should be served cached");
        };
        assert_eq!(cached_result.cycles, result.cycles);
        assert_eq!(cached_result.latency, result.latency);

        let stats = service.stats();
        assert_eq!(stats.completed, 1, "exactly one simulation ran");
        assert_eq!(stats.cache_hits, 1);
        service.shutdown();

        // The obs stream is the ground truth the tests and CI smoke use:
        // one job_done, one cache_hit, one admission.
        let ring = ring.lock().unwrap();
        let events: Vec<&Event> = ring.events().collect();
        let count = |kind: &str| events.iter().filter(|e| e.kind_name() == kind).count();
        assert_eq!(count("job_done"), 1);
        assert_eq!(count("cache_hit"), 1);
        assert_eq!(count("job_admitted"), 1);
        assert_eq!(count("job_rejected"), 0);
    }

    /// A pipelined reciprocal job must surface its speculation counters
    /// through every reporting layer: the run result, the cumulative
    /// [`ServiceStats`], and the `job_done` observability event.
    #[test]
    fn pipelined_job_reports_speculation_counters() {
        let (service, ring) = service_with_ring(ServeConfig {
            workers: 1,
            ..ServeConfig::default()
        });
        let spec: JobSpec =
            "target=4x4 app=water mode=reciprocal:quantum=300,pipeline=on instructions=200 \
             budget=500000 seed=1"
                .parse()
                .unwrap();
        let receipt = service.submit(spec, Priority::Normal, None).unwrap();
        let JobOutcome::Completed { result, .. } = service.wait(receipt.ticket, None).unwrap()
        else {
            panic!("pipelined job should complete");
        };
        let coupler = result.coupler.as_ref().expect("reciprocal run has coupler stats");
        let decisions = coupler.spec_commits + coupler.spec_rollbacks;
        assert!(decisions > 0, "the run never speculated: {coupler:?}");

        let stats = service.stats();
        assert_eq!(stats.spec_commits, coupler.spec_commits);
        assert_eq!(stats.spec_rollbacks, coupler.spec_rollbacks);
        service.shutdown();

        let ring = ring.lock().unwrap();
        let done: Vec<&Event> = ring
            .events()
            .filter(|e| e.kind_name() == "job_done")
            .collect();
        assert_eq!(done.len(), 1);
        let Event::JobDone {
            spec_commits,
            spec_rollbacks,
            ..
        } = done[0]
        else {
            unreachable!("filtered on kind_name");
        };
        assert_eq!(*spec_commits, coupler.spec_commits);
        assert_eq!(*spec_rollbacks, coupler.spec_rollbacks);
    }

    #[test]
    fn concurrent_identical_jobs_coalesce_to_one_run() {
        let (service, _ring) = service_with_ring(ServeConfig {
            workers: 2,
            ..ServeConfig::default()
        });
        let spec: JobSpec = SLOW.parse().unwrap();
        let first = service.submit(spec.clone(), Priority::Normal, None).unwrap();
        let mut tickets = vec![first.ticket];
        for _ in 0..5 {
            let receipt = service.submit(spec.clone(), Priority::Normal, None).unwrap();
            assert_eq!(receipt.disposition, Disposition::Coalesced);
            assert_eq!(receipt.job, first.job);
            tickets.push(receipt.ticket);
        }
        let mut cycle_counts = Vec::new();
        for ticket in tickets {
            let JobOutcome::Completed { result, .. } = service.wait(ticket, None).unwrap()
            else {
                panic!("coalesced job should complete for every ticket");
            };
            cycle_counts.push(result.cycles);
        }
        cycle_counts.dedup();
        assert_eq!(cycle_counts.len(), 1, "all tickets share one result");
        let stats = service.stats();
        assert_eq!(stats.completed, 1, "single-flight: one simulation for six submits");
        assert_eq!(stats.coalesced, 5);
        service.shutdown();
    }

    #[test]
    fn queue_overflow_rejects_with_explicit_backpressure() {
        let (service, ring) = service_with_ring(ServeConfig {
            workers: 1,
            queue_capacity: 1,
            ..ServeConfig::default()
        });
        // Occupy the only worker, then the only queue slot. Distinct
        // seeds keep the jobs from coalescing.
        let blocker = service
            .submit(SLOW.parse::<JobSpec>().unwrap().seed(1), Priority::Normal, None)
            .unwrap();
        spin_until_running(&service, blocker.ticket);
        let queued = service
            .submit(SLOW.parse::<JobSpec>().unwrap().seed(2), Priority::Normal, None)
            .unwrap();
        assert!(matches!(queued.disposition, Disposition::Enqueued { depth: 1 }));

        let overflow = service.submit(SLOW.parse::<JobSpec>().unwrap().seed(3), Priority::Normal, None);
        assert_eq!(overflow.unwrap_err(), Rejected::QueueFull { depth: 1 });
        assert_eq!(service.stats().rejected, 1);

        // Unblock quickly: drop interest in both live jobs.
        assert_eq!(service.cancel(blocker.ticket), Some(CancelOutcome::Signalled));
        assert_eq!(service.cancel(queued.ticket), Some(CancelOutcome::Cancelled));
        service.shutdown();

        let ring = ring.lock().unwrap();
        let rejected = ring
            .events()
            .filter(|e| e.kind_name() == "job_rejected")
            .count();
        assert_eq!(rejected, 1, "every rejection must emit its signal");
    }

    #[test]
    fn cancelling_a_running_job_stops_it_via_the_watchdog_poll() {
        let (service, _ring) = service_with_ring(ServeConfig {
            workers: 1,
            ..ServeConfig::default()
        });
        let receipt = service
            .submit(SLOW.parse().unwrap(), Priority::Normal, None)
            .unwrap();
        spin_until_running(&service, receipt.ticket);
        // wait() would consume the ticket; keep it for the cancel and
        // poll status instead.
        assert_eq!(service.cancel(receipt.ticket), Some(CancelOutcome::Signalled));
        let deadline = Instant::now() + Duration::from_secs(20);
        loop {
            let stats = service.stats();
            if stats.cancelled == 1 {
                break;
            }
            assert!(stats.completed == 0, "job should stop before completing");
            assert!(Instant::now() < deadline, "cancellation never landed");
            std::thread::sleep(Duration::from_millis(1));
        }
        service.shutdown();
    }

    #[test]
    fn coalesced_interest_survives_a_single_cancel() {
        let (service, _ring) = service_with_ring(ServeConfig {
            workers: 1,
            ..ServeConfig::default()
        });
        let spec: JobSpec = SLOW.parse::<JobSpec>().unwrap().seed(9);
        let keeper = service.submit(spec.clone(), Priority::Normal, None).unwrap();
        let quitter = service.submit(spec, Priority::Normal, None).unwrap();
        assert_eq!(quitter.disposition, Disposition::Coalesced);
        assert_eq!(service.cancel(quitter.ticket), Some(CancelOutcome::Detached));
        let outcome = service.wait(keeper.ticket, None).unwrap();
        assert!(
            matches!(outcome, JobOutcome::Completed { cached: false, .. }),
            "the job must still run for the remaining ticket: {outcome:?}"
        );
        service.shutdown();
    }

    #[test]
    fn priorities_order_the_queue_and_deadlines_expire_in_it() {
        let (service, _ring) = service_with_ring(ServeConfig {
            workers: 1,
            ..ServeConfig::default()
        });
        // Worker busy -> everything below queues up behind it.
        let blocker = service
            .submit(SLOW.parse::<JobSpec>().unwrap().seed(1), Priority::Normal, None)
            .unwrap();
        spin_until_running(&service, blocker.ticket);

        let low = service
            .submit(FAST.parse::<JobSpec>().unwrap().seed(10), Priority::Low, None)
            .unwrap();
        let doomed = service
            .submit(
                FAST.parse::<JobSpec>().unwrap().seed(11),
                Priority::High,
                Some(Duration::from_millis(0)),
            )
            .unwrap();
        let high = service
            .submit(FAST.parse::<JobSpec>().unwrap().seed(12), Priority::High, None)
            .unwrap();

        // Free the worker; the queue drains high-first.
        service.cancel(blocker.ticket);
        let JobOutcome::Completed {
            queue_ns: high_queue_ns,
            ..
        } = service.wait(high.ticket, None).unwrap()
        else {
            panic!("high-priority job should complete");
        };
        let JobOutcome::Completed {
            queue_ns: low_queue_ns,
            ..
        } = service.wait(low.ticket, None).unwrap()
        else {
            panic!("low-priority job should complete");
        };
        assert!(
            high_queue_ns < low_queue_ns,
            "high priority must leave the queue first ({high_queue_ns} vs {low_queue_ns})"
        );
        assert!(
            matches!(
                service.wait(doomed.ticket, None).unwrap(),
                JobOutcome::DeadlineExpired
            ),
            "a zero deadline must expire in the queue"
        );
        assert_eq!(service.stats().expired, 1);
        service.shutdown();
    }

    #[test]
    fn shutdown_drains_queued_work_and_joins_cleanly() {
        let (service, _ring) = service_with_ring(ServeConfig {
            workers: 2,
            ..ServeConfig::default()
        });
        let tickets: Vec<Ticket> = (0..4)
            .map(|seed| {
                service
                    .submit(
                        FAST.parse::<JobSpec>().unwrap().seed(100 + seed),
                        Priority::Normal,
                        None,
                    )
                    .unwrap()
                    .ticket
            })
            .collect();
        // Wait for all, then shut down: drained queue, clean joins.
        for ticket in tickets {
            assert!(matches!(
                service.wait(ticket, Some(Duration::from_secs(60))),
                Ok(JobOutcome::Completed { .. })
            ));
        }
        let stats = service.stats();
        assert_eq!(stats.completed, 4);
        assert_eq!(stats.queue_depth, 0);
        service.shutdown();
    }

    fn temp_state_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "ra-serve-state-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn a_panicking_job_is_quarantined_and_the_pool_survives() {
        let (service, ring) = service_with_ring(ServeConfig {
            workers: 2,
            retry_backoff: Duration::from_millis(1),
            chaos: ChaosConfig {
                panic_on_seeds: vec![777],
                ..ChaosConfig::default()
            },
            ..ServeConfig::default()
        });
        // The poison pill crashes a worker on every attempt; after the
        // second strike it must be quarantined, not retried forever.
        let bad = service
            .submit(FAST.parse::<JobSpec>().unwrap().seed(777), Priority::Normal, None)
            .unwrap();
        // A sibling job in flight at the same time must be unaffected.
        let good = service
            .submit(FAST.parse::<JobSpec>().unwrap().seed(778), Priority::Normal, None)
            .unwrap();
        let outcome = service.wait(bad.ticket, Some(Duration::from_secs(60))).unwrap();
        let JobOutcome::Poisoned { error } = outcome else {
            panic!("poison pill should be quarantined, got {outcome:?}");
        };
        assert!(error.contains("chaos: injected worker panic"), "error: {error}");
        assert!(matches!(
            service.wait(good.ticket, Some(Duration::from_secs(60))).unwrap(),
            JobOutcome::Completed { .. }
        ));
        // The pool is whole again: a fresh job still completes.
        let after = service
            .submit(FAST.parse::<JobSpec>().unwrap().seed(779), Priority::Normal, None)
            .unwrap();
        assert!(matches!(
            service.wait(after.ticket, Some(Duration::from_secs(60))).unwrap(),
            JobOutcome::Completed { .. }
        ));
        let stats = service.stats();
        assert_eq!(stats.poisoned, 1);
        assert_eq!(stats.respawns, 2, "one respawn per strike");
        assert_eq!(stats.completed, 2);
        service.shutdown();

        let ring = ring.lock().unwrap();
        let count = |kind: &str| ring.events().filter(|e| e.kind_name() == kind).count();
        assert_eq!(count("worker_respawn"), 2);
        assert_eq!(count("job_quarantined"), 1);
    }

    #[test]
    fn transient_faults_retry_with_backoff_until_success() {
        let (service, _ring) = service_with_ring(ServeConfig {
            workers: 1,
            retry_budget: 2,
            retry_backoff: Duration::from_millis(1),
            chaos: ChaosConfig {
                fault_on_seeds: vec![555],
                fault_attempts: 2,
                ..ChaosConfig::default()
            },
            ..ServeConfig::default()
        });
        let receipt = service
            .submit(FAST.parse::<JobSpec>().unwrap().seed(555), Priority::Normal, None)
            .unwrap();
        assert!(matches!(
            service.wait(receipt.ticket, Some(Duration::from_secs(60))).unwrap(),
            JobOutcome::Completed { cached: false, .. }
        ));
        let stats = service.stats();
        assert_eq!(stats.retries, 2, "two faulted attempts, then success");
        assert_eq!(stats.completed, 1);
        assert_eq!(stats.failed, 0);
        service.shutdown();
    }

    #[test]
    fn an_exhausted_retry_budget_fails_the_job() {
        let (service, _ring) = service_with_ring(ServeConfig {
            workers: 1,
            retry_budget: 1,
            retry_backoff: Duration::from_millis(1),
            chaos: ChaosConfig {
                fault_on_seeds: vec![556],
                fault_attempts: u32::MAX,
                ..ChaosConfig::default()
            },
            ..ServeConfig::default()
        });
        let receipt = service
            .submit(FAST.parse::<JobSpec>().unwrap().seed(556), Priority::Normal, None)
            .unwrap();
        let outcome = service.wait(receipt.ticket, Some(Duration::from_secs(60))).unwrap();
        let JobOutcome::Failed { error } = outcome else {
            panic!("budget exhaustion should fail the job, got {outcome:?}");
        };
        assert!(error.contains("injected transient fault"), "error: {error}");
        let stats = service.stats();
        assert_eq!(stats.retries, 1);
        assert_eq!(stats.failed, 1);
        service.shutdown();
    }

    #[test]
    fn a_running_job_past_its_deadline_is_cooperatively_cancelled() {
        let (service, ring) = service_with_ring(ServeConfig {
            workers: 1,
            ..ServeConfig::default()
        });
        let receipt = service
            .submit(
                VERY_SLOW.parse::<JobSpec>().unwrap().seed(31),
                Priority::Normal,
                Some(Duration::from_millis(150)),
            )
            .unwrap();
        let outcome = service.wait(receipt.ticket, Some(Duration::from_secs(60))).unwrap();
        assert!(
            matches!(outcome, JobOutcome::DeadlineExceeded),
            "a run past its deadline must finish as deadline_exceeded, got {outcome:?}"
        );
        assert_eq!(service.stats().deadline_exceeded, 1);
        service.shutdown();

        let ring = ring.lock().unwrap();
        let fired = ring
            .events()
            .filter(|e| e.kind_name() == "deadline_cancel")
            .count();
        assert_eq!(fired, 1, "the reaper fires the cancel exactly once");
    }

    #[test]
    fn restart_replays_the_spill_and_reruns_unfinished_journal_entries() {
        let dir = temp_state_dir("restart");
        let spill = dir.join("spill.jsonl");
        let journal_path = dir.join("journal.jsonl");
        let durable = |chaos: ChaosConfig| ServeConfig {
            workers: 1,
            spill: Some(spill.clone()),
            journal: Some(journal_path.clone()),
            fsync_every: 0,
            chaos,
            ..ServeConfig::default()
        };
        let done_spec = FAST.parse::<JobSpec>().unwrap().seed(21);
        let lost_spec = FAST.parse::<JobSpec>().unwrap().seed(22);

        // Life A: complete one job, then die with another admitted but
        // unfinished (simulated by appending its admit record the way a
        // killed process would have left it).
        {
            let (service, _ring) = service_with_ring(durable(ChaosConfig::default()));
            let receipt = service.submit(done_spec.clone(), Priority::Normal, None).unwrap();
            assert!(matches!(
                service.wait(receipt.ticket, Some(Duration::from_secs(60))).unwrap(),
                JobOutcome::Completed { .. }
            ));
            service.shutdown();
            let journal = Journal::open(&journal_path, 0).unwrap();
            journal.admit(lost_spec.job_hash(), &lost_spec.canonical(), Priority::High);
            journal.sync().unwrap();
        }

        // Life B: the completed result survives, the unfinished job is
        // re-enqueued and runs exactly once.
        let (service, ring) = service_with_ring(durable(ChaosConfig::default()));
        let recovery = service.recovery();
        assert_eq!(recovery.recovered_results, 1);
        assert_eq!(recovery.resumed_jobs, 1);
        assert_eq!(recovery.checksum_errors, 0);
        let deadline = Instant::now() + Duration::from_secs(60);
        while service.stats().completed < 1 {
            assert!(Instant::now() < deadline, "resumed job never completed");
            std::thread::sleep(Duration::from_millis(2));
        }
        // Both specs now answer from the memo store without simulating.
        for spec in [done_spec, lost_spec] {
            let receipt = service.submit(spec, Priority::Normal, None).unwrap();
            assert_eq!(receipt.disposition, Disposition::CacheHit, "spec should be memoized");
        }
        assert_eq!(service.stats().completed, 1, "the resumed job ran exactly once");
        service.shutdown();

        let ring = ring.lock().unwrap();
        let replayed = ring
            .events()
            .filter(|e| e.kind_name() == "journal_replay")
            .count();
        assert_eq!(replayed, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn drain_finishes_inflight_work_and_rejects_new_submissions() {
        let (service, _ring) = service_with_ring(ServeConfig {
            workers: 2,
            ..ServeConfig::default()
        });
        for seed in 0..4 {
            service
                .submit(
                    FAST.parse::<JobSpec>().unwrap().seed(300 + seed),
                    Priority::Normal,
                    None,
                )
                .unwrap();
        }
        assert!(service.drain(Duration::from_secs(60)), "drain should finish");
        let stats = service.stats();
        assert_eq!(stats.completed, 4);
        assert_eq!(stats.queue_depth, 0);
        assert_eq!(
            service
                .submit(FAST.parse::<JobSpec>().unwrap().seed(399), Priority::Normal, None)
                .unwrap_err(),
            Rejected::ShuttingDown
        );
        service.shutdown();
    }

    /// Reciprocal-mode spec for the degradation tests: only reciprocal
    /// mode has cheaper rungs (calibrated, hop) to degrade to.
    const RSPEC: &str = "target=2x2 app=water mode=reciprocal instructions=40 budget=100000";

    /// An `AdmissionConfig` whose brownout thresholds are unreachable,
    /// for tests that want overload behaviour without the ladder.
    fn no_brownout() -> AdmissionConfig {
        AdmissionConfig {
            brownout1_pressure: 10.0,
            brownout2_pressure: 20.0,
            ..AdmissionConfig::default()
        }
    }

    fn degraded_params() -> SubmitParams {
        SubmitParams {
            allow_degraded: true,
            ..SubmitParams::default()
        }
    }

    #[test]
    fn a_full_queue_degrades_consenting_jobs_and_upgrades_them_later() {
        let (service, ring) = service_with_ring(ServeConfig {
            workers: 1,
            queue_capacity: 1,
            admission: no_brownout(),
            ..ServeConfig::default()
        });
        // One job running, one queued: the queue is at capacity.
        let blocker = service
            .submit(SLOW.parse::<JobSpec>().unwrap().seed(910), Priority::Normal, None)
            .unwrap();
        spin_until_running(&service, blocker.ticket);
        let queued = service
            .submit(SLOW.parse::<JobSpec>().unwrap().seed(911), Priority::Normal, None)
            .unwrap();

        // A consenting degradable job is not bounced at the full queue:
        // it is admitted at its floor instead.
        let degraded = service
            .submit_with(RSPEC.parse::<JobSpec>().unwrap().seed(912), degraded_params())
            .unwrap();
        assert!(
            matches!(degraded.disposition, Disposition::Enqueued { .. }),
            "consenting job must be admitted, got {:?}",
            degraded.disposition
        );
        // A non-consenting job at the same door is shed.
        assert!(matches!(
            service
                .submit(FAST.parse::<JobSpec>().unwrap().seed(913), Priority::Normal, None)
                .unwrap_err(),
            Rejected::QueueFull { .. }
        ));

        // Unblock the worker and collect the degraded answer.
        assert_eq!(service.cancel(queued.ticket), Some(CancelOutcome::Cancelled));
        assert_eq!(service.cancel(blocker.ticket), Some(CancelOutcome::Signalled));
        let outcome = service.wait(degraded.ticket, Some(Duration::from_secs(60))).unwrap();
        let JobOutcome::Completed { cached, fidelity, error_bound, .. } = outcome else {
            panic!("degraded job should complete, got {outcome:?}");
        };
        assert!(!cached);
        assert_eq!(fidelity, Fidelity::Hop);
        assert!(error_bound > 0.5, "hop answers carry a large error bound, got {error_bound}");
        assert_eq!(service.stats().degraded, 1);
        assert_eq!(service.stats().shed, 1);

        // The background upgrader re-runs the spec at full fidelity.
        let deadline = Instant::now() + Duration::from_secs(60);
        while service.stats().upgraded < 1 {
            assert!(Instant::now() < deadline, "background upgrade never landed");
            std::thread::sleep(Duration::from_millis(2));
        }
        // A strict (non-consenting) resubmit now hits the upgraded entry.
        let strict = service
            .submit_with(RSPEC.parse::<JobSpec>().unwrap().seed(912), SubmitParams::default())
            .unwrap();
        assert_eq!(strict.disposition, Disposition::CacheHit);
        let outcome = service.wait(strict.ticket, Some(Duration::from_secs(60))).unwrap();
        let JobOutcome::Completed { cached: true, fidelity, error_bound, .. } = outcome else {
            panic!("upgraded entry should serve strict callers, got {outcome:?}");
        };
        assert_eq!(fidelity, Fidelity::Reciprocal);
        assert_eq!(error_bound, 0.0);
        service.shutdown();

        let ring = ring.lock().unwrap();
        let count = |kind: &str| ring.events().filter(|e| e.kind_name() == kind).count();
        assert_eq!(count("job_degraded"), 1);
        assert_eq!(count("result_upgraded"), 1);
        let upgraded = ring
            .events()
            .find_map(|e| match e {
                Event::ResultUpgraded { from, to, .. } => Some((from.clone(), to.clone())),
                _ => None,
            })
            .unwrap();
        assert_eq!(upgraded, ("hop".to_owned(), "reciprocal".to_owned()));
    }

    #[test]
    fn an_exhausted_client_quota_degrades_consenting_jobs_and_sheds_the_rest() {
        let (service, ring) = service_with_ring(ServeConfig {
            workers: 2,
            quota_rate: 1e-6, // effectively never refills within the test
            quota_burst: 1.0,
            admission: no_brownout(),
            background_upgrades: false,
            ..ServeConfig::default()
        });
        let with_client = |client: Option<&str>, allow: bool| SubmitParams {
            client: client.map(str::to_owned),
            allow_degraded: allow,
            ..SubmitParams::default()
        };

        // The burst is one token: the first fresh run is free...
        let first = service
            .submit_with(RSPEC.parse::<JobSpec>().unwrap().seed(920), with_client(Some("tenant-a"), false))
            .unwrap();
        // ...the second, non-consenting, is shed...
        assert!(matches!(
            service
                .submit_with(RSPEC.parse::<JobSpec>().unwrap().seed(921), with_client(Some("tenant-a"), false))
                .unwrap_err(),
            Rejected::QueueFull { .. }
        ));
        // ...a consenting one is admitted at its floor instead...
        let cheap = service
            .submit_with(RSPEC.parse::<JobSpec>().unwrap().seed(922), with_client(Some("tenant-a"), true))
            .unwrap();
        // ...anonymous submissions and other tenants are untouched.
        let anon = service
            .submit_with(RSPEC.parse::<JobSpec>().unwrap().seed(923), with_client(None, false))
            .unwrap();
        let other = service
            .submit_with(RSPEC.parse::<JobSpec>().unwrap().seed(924), with_client(Some("tenant-b"), false))
            .unwrap();

        let fidelity_of = |ticket| {
            match service.wait(ticket, Some(Duration::from_secs(60))).unwrap() {
                JobOutcome::Completed { fidelity, .. } => fidelity,
                other => panic!("expected completion, got {other:?}"),
            }
        };
        assert_eq!(fidelity_of(first.ticket), Fidelity::Reciprocal);
        assert_eq!(fidelity_of(cheap.ticket), Fidelity::Hop);
        assert_eq!(fidelity_of(anon.ticket), Fidelity::Reciprocal);
        assert_eq!(fidelity_of(other.ticket), Fidelity::Reciprocal);
        let stats = service.stats();
        assert_eq!(stats.shed, 1);
        assert_eq!(stats.rejected, 1);
        assert_eq!(stats.degraded, 1);
        service.shutdown();

        let ring = ring.lock().unwrap();
        let shed_client = ring
            .events()
            .find_map(|e| match e {
                Event::JobShed { client, .. } => Some(client.clone()),
                _ => None,
            })
            .unwrap();
        assert_eq!(shed_client, "tenant-a");
        let degrade_cause = ring
            .events()
            .find_map(|e| match e {
                Event::JobDegraded { cause, .. } => Some(cause.clone()),
                _ => None,
            })
            .unwrap();
        assert_eq!(degrade_cause, "quota");
    }

    #[test]
    fn the_brownout_ladder_degrades_stepwise_and_never_bounces_consenting_jobs() {
        let (service, ring) = service_with_ring(ServeConfig {
            workers: 1,
            queue_capacity: 8,
            admission: AdmissionConfig {
                // Pressure here is pure backlog fraction: the delay
                // target is far above anything a test run produces.
                delay_target: Duration::from_secs(3600),
                brownout1_pressure: 0.5,
                brownout2_pressure: 0.85,
                exit_pressure: 0.0,
                enter_after: 1,
                exit_after: 1000, // sticky: no exits mid-test
                ..AdmissionConfig::default()
            },
            background_upgrades: false,
            ..ServeConfig::default()
        });
        // A running blocker plus five queued fillers walk the backlog
        // fraction up to 0.625; the 0.5 observation enters Brownout-1.
        let blocker = service
            .submit(SLOW.parse::<JobSpec>().unwrap().seed(930), Priority::Normal, None)
            .unwrap();
        spin_until_running(&service, blocker.ticket);
        let fillers: Vec<_> = (931..=935)
            .map(|seed| {
                service
                    .submit(SLOW.parse::<JobSpec>().unwrap().seed(seed), Priority::Normal, None)
                    .unwrap()
            })
            .collect();
        assert_eq!(service.stats().brownout, 1, "0.5 backlog enters brownout-1");

        // Brownout-1 degrades only new low-priority work.
        let low = service
            .submit_with(
                RSPEC.parse::<JobSpec>().unwrap().seed(936),
                SubmitParams {
                    priority: Priority::Low,
                    allow_degraded: true,
                    ..SubmitParams::default()
                },
            )
            .unwrap();
        let normal = service
            .submit_with(RSPEC.parse::<JobSpec>().unwrap().seed(937), degraded_params())
            .unwrap();
        assert_eq!(service.stats().brownout, 1, "0.75 backlog stays below the b2 threshold");

        // The next observation reads 0.875 and escalates to Brownout-2:
        // now every consenting job degrades to its floor.
        let b2 = service
            .submit_with(RSPEC.parse::<JobSpec>().unwrap().seed(938), degraded_params())
            .unwrap();
        assert_eq!(service.stats().brownout, 2);

        // The queue is now at capacity (8): a consenting job is still
        // admitted (overflow region), a non-consenting one is shed.
        let overflow = service
            .submit_with(RSPEC.parse::<JobSpec>().unwrap().seed(939), degraded_params())
            .unwrap();
        assert!(matches!(overflow.disposition, Disposition::Enqueued { .. }));
        assert!(matches!(
            service
                .submit(FAST.parse::<JobSpec>().unwrap().seed(940), Priority::Normal, None)
                .unwrap_err(),
            Rejected::QueueFull { .. }
        ));

        // Unblock the pool and check each job ran at its planned rung.
        for filler in &fillers {
            assert_eq!(service.cancel(filler.ticket), Some(CancelOutcome::Cancelled));
        }
        assert_eq!(service.cancel(blocker.ticket), Some(CancelOutcome::Signalled));
        let fidelity_of = |ticket| {
            match service.wait(ticket, Some(Duration::from_secs(60))).unwrap() {
                JobOutcome::Completed { fidelity, error_bound, .. } => (fidelity, error_bound),
                other => panic!("expected completion, got {other:?}"),
            }
        };
        let (fid, err) = fidelity_of(low.ticket);
        assert_eq!(fid, Fidelity::Calibrated, "brownout-1 degrades low priority to calibrated");
        assert!(err > 0.0 && err < 0.5, "calibrated error bound is modest, got {err}");
        let (fid, _) = fidelity_of(normal.ticket);
        assert_eq!(fid, Fidelity::Reciprocal, "brownout-1 leaves normal priority alone");
        assert_eq!(fidelity_of(b2.ticket).0, Fidelity::Hop, "brownout-2 degrades to the floor");
        assert_eq!(fidelity_of(overflow.ticket).0, Fidelity::Hop);
        assert_eq!(service.stats().degraded, 3);
        service.shutdown();

        let ring = ring.lock().unwrap();
        let causes: Vec<String> = ring
            .events()
            .filter_map(|e| match e {
                Event::JobDegraded { cause, .. } => Some(cause.clone()),
                _ => None,
            })
            .collect();
        assert_eq!(causes, ["brownout1", "brownout2", "queue_full"]);
        let enters = ring
            .events()
            .filter(|e| e.kind_name() == "brownout_enter")
            .count();
        assert_eq!(enters, 2);
    }

    #[test]
    fn runtime_compaction_under_chaos_does_not_resurrect_settled_jobs() {
        // Regression: jobs settled while size-triggered compactions
        // fire (here after every record) must not be re-enqueued by the
        // next life — the settle and the compaction snapshot race unless
        // both happen under the state lock.
        let dir = temp_state_dir("chaos-compact");
        let journal_path = dir.join("journal.jsonl");
        let compacting = |chaos: ChaosConfig| ServeConfig {
            workers: 1,
            journal: Some(journal_path.clone()),
            journal_compact_bytes: 1,
            fsync_every: 0,
            strike_limit: 1,
            chaos,
            ..ServeConfig::default()
        };

        // Life A: three poison pills and one healthy job, all settled.
        {
            let (service, _ring) = service_with_ring(compacting(ChaosConfig {
                panic_on_seeds: vec![801, 802, 803],
                ..ChaosConfig::default()
            }));
            for seed in [801u64, 802, 803, 810] {
                let receipt = service
                    .submit(FAST.parse::<JobSpec>().unwrap().seed(seed), Priority::Normal, None)
                    .unwrap();
                let outcome = service.wait(receipt.ticket, Some(Duration::from_secs(60))).unwrap();
                if seed == 810 {
                    assert!(matches!(outcome, JobOutcome::Completed { .. }));
                } else {
                    assert!(matches!(outcome, JobOutcome::Poisoned { .. }));
                }
            }
            let stats = service.stats();
            assert!(stats.journal_compactions >= 1, "the tiny threshold must compact");
            assert_eq!(stats.poisoned, 3);
            service.shutdown();
        }

        // Life B: every job of life A was settled; nothing resumes.
        let (service, _ring) = service_with_ring(compacting(ChaosConfig::default()));
        let recovery = service.recovery();
        assert_eq!(
            recovery.resumed_jobs, 0,
            "settled jobs must not resurrect after compaction: {recovery:?}"
        );
        service.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }
}
