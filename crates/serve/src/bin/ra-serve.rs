//! `ra-serve` — the simulation-job server.
//!
//! ```text
//! ra-serve [--addr 127.0.0.1:7743] [--workers 2] [--queue 64]
//!          [--cache 256] [--shards 8] [--state-dir DIR]
//!          [--spill results.jsonl] [--fsync-every 8]
//!          [--drain-timeout 30] [--trace trace.jsonl]
//! ```
//!
//! Binds a TCP endpoint speaking both wire codecs — line JSON and the
//! checksummed binary frame format, sniffed per connection from the
//! first byte (see `ra_serve::wire` for the protocol, including the
//! batched `submit_batch`/`status_batch`/`result_batch` verbs) —
//! prints a `recovery: ...` summary of what it replayed from disk and
//! then `listening on <addr>` once ready — scripts and CI wait for the
//! latter line — and serves until stopped.
//!
//! `--state-dir DIR` turns on crash-safe durability: completed results
//! spill to `DIR/spill.jsonl` and admissions are write-ahead journaled
//! to `DIR/journal.jsonl`, both as checksummed frames. A restart
//! against the same directory (even after kill -9) rebuilds the memo
//! cache and re-runs whatever was admitted but unfinished — exactly
//! once. `--spill FILE` alone keeps the older spill-only behaviour.
//!
//! On SIGTERM or ctrl-c the server stops admitting, drains in-flight
//! jobs for up to `--drain-timeout` seconds, flushes and fsyncs the
//! journal and spill, and exits 0.

use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Duration;

use ra_obs::{JsonlRecorder, ObsSink};
use ra_serve::{JobService, ServeConfig, WireServer};

/// Minimal unix signal latch without any libc crate: `signal(2)` is in
/// every libc the toolchain links anyway, and the handler only performs
/// an async-signal-safe atomic store.
#[cfg(unix)]
mod signals {
    use std::sync::atomic::{AtomicBool, Ordering};

    static SHUTDOWN: AtomicBool = AtomicBool::new(false);
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }

    extern "C" fn on_signal(_signum: i32) {
        SHUTDOWN.store(true, Ordering::SeqCst);
    }

    pub fn install() {
        unsafe {
            signal(SIGINT, on_signal);
            signal(SIGTERM, on_signal);
        }
    }

    pub fn requested() -> bool {
        SHUTDOWN.load(Ordering::SeqCst)
    }
}

#[cfg(not(unix))]
mod signals {
    pub fn install() {}

    pub fn requested() -> bool {
        false
    }
}

struct Args {
    addr: String,
    config: ServeConfig,
    state_dir: Option<PathBuf>,
    drain_timeout: Duration,
    trace: Option<PathBuf>,
}

const USAGE: &str = "usage: ra-serve [--addr HOST:PORT] [--workers N] [--queue N] \
                     [--cache N] [--shards N] [--state-dir DIR] [--spill FILE] \
                     [--fsync-every N] [--journal-compact-bytes N] \
                     [--drain-timeout SECS] [--trace FILE]";

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        addr: "127.0.0.1:7743".to_owned(),
        config: ServeConfig::default(),
        state_dir: None,
        drain_timeout: Duration::from_secs(30),
        trace: None,
    };
    let mut argv = std::env::args().skip(1);
    while let Some(flag) = argv.next() {
        let mut value = |flag: &str| {
            argv.next()
                .ok_or_else(|| format!("{flag} needs a value\n{USAGE}"))
        };
        match flag.as_str() {
            "--addr" => args.addr = value("--addr")?,
            "--workers" => args.config.workers = parse_num(&value("--workers")?, "--workers")?,
            "--queue" => {
                args.config.queue_capacity = parse_num(&value("--queue")?, "--queue")?;
            }
            "--cache" => {
                args.config.cache_capacity = parse_num(&value("--cache")?, "--cache")?;
            }
            "--shards" => {
                args.config.cache_shards = parse_num(&value("--shards")?, "--shards")?;
            }
            "--state-dir" => args.state_dir = Some(PathBuf::from(value("--state-dir")?)),
            "--spill" => args.config.spill = Some(PathBuf::from(value("--spill")?)),
            "--fsync-every" => {
                // 0 is meaningful here: flush every record, fsync never.
                let text = value("--fsync-every")?;
                args.config.fsync_every = text.parse::<u64>().map_err(|_| {
                    format!("--fsync-every needs a non-negative integer, got `{text}`")
                })?;
            }
            "--journal-compact-bytes" => {
                // 0 is meaningful here: compact only at startup.
                let text = value("--journal-compact-bytes")?;
                args.config.journal_compact_bytes = text.parse::<u64>().map_err(|_| {
                    format!(
                        "--journal-compact-bytes needs a non-negative integer, got `{text}`"
                    )
                })?;
            }
            "--drain-timeout" => {
                args.drain_timeout = Duration::from_secs(
                    parse_num(&value("--drain-timeout")?, "--drain-timeout")? as u64,
                );
            }
            "--trace" => args.trace = Some(PathBuf::from(value("--trace")?)),
            "--help" | "-h" => return Err(USAGE.to_owned()),
            other => return Err(format!("unknown flag `{other}`\n{USAGE}")),
        }
    }
    if let Some(dir) = &args.state_dir {
        std::fs::create_dir_all(dir)
            .map_err(|err| format!("cannot create --state-dir {}: {err}", dir.display()))?;
        args.config.spill = Some(dir.join("spill.jsonl"));
        args.config.journal = Some(dir.join("journal.jsonl"));
    }
    Ok(args)
}

fn parse_num(text: &str, flag: &str) -> Result<usize, String> {
    text.parse::<usize>()
        .ok()
        .filter(|n| *n > 0)
        .ok_or_else(|| format!("{flag} needs a positive integer, got `{text}`"))
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(message) => {
            eprintln!("{message}");
            return ExitCode::FAILURE;
        }
    };
    let obs = match &args.trace {
        None => ObsSink::disabled(),
        Some(path) => match JsonlRecorder::create(path) {
            Ok(recorder) => ObsSink::attach(recorder).0,
            Err(err) => {
                eprintln!("ra-serve: cannot create trace file {}: {err}", path.display());
                return ExitCode::FAILURE;
            }
        },
    };
    let service = match JobService::start(args.config.clone(), obs) {
        Ok(service) => service,
        Err(err) => {
            eprintln!("ra-serve: cannot start service: {err}");
            return ExitCode::FAILURE;
        }
    };
    let recovery = service.recovery();
    println!(
        "recovery: spill_records={} journal_records={} resumed={} dropped_tail_bytes={} \
         checksum_errors={}",
        recovery.recovered_results,
        recovery.journal_records,
        recovery.resumed_jobs,
        recovery.dropped_tail_bytes,
        recovery.checksum_errors
    );
    signals::install();
    let server = match WireServer::bind(args.addr.as_str(), service) {
        Ok(server) => server,
        Err(err) => {
            eprintln!("ra-serve: cannot bind {}: {err}", args.addr);
            return ExitCode::FAILURE;
        }
    };
    let handle = match server.spawn() {
        Ok(handle) => handle,
        Err(err) => {
            eprintln!("ra-serve: cannot start accept loop: {err}");
            return ExitCode::FAILURE;
        }
    };
    // Flushed immediately: launch scripts block on this line.
    println!("listening on {}", handle.addr());
    use std::io::Write as _;
    let _ = std::io::stdout().flush();
    eprintln!(
        "ra-serve: {} workers, queue {}, cache {} entries / {} shards{}",
        args.config.workers,
        args.config.queue_capacity,
        args.config.cache_capacity,
        args.config.cache_shards,
        match &args.state_dir {
            Some(dir) => format!(", state dir {}", dir.display()),
            None => String::new(),
        }
    );
    while !signals::requested() {
        std::thread::sleep(Duration::from_millis(50));
    }
    eprintln!(
        "ra-serve: shutdown signal received, draining (up to {}s)",
        args.drain_timeout.as_secs()
    );
    let service = handle.service();
    let drained = service.drain(args.drain_timeout);
    let _ = service.obs().flush();
    handle.stop();
    if drained {
        eprintln!("ra-serve: drained cleanly, journal and spill synced");
    } else {
        eprintln!(
            "ra-serve: drain timed out after {}s; unfinished jobs stay journaled \
             and will resume on restart",
            args.drain_timeout.as_secs()
        );
    }
    ExitCode::SUCCESS
}
