//! `ra-serve` — the simulation-job server.
//!
//! ```text
//! ra-serve [--addr 127.0.0.1:7743] [--workers 2] [--queue 64]
//!          [--cache 256] [--shards 8] [--spill results.jsonl]
//!          [--trace trace.jsonl]
//! ```
//!
//! Binds a line-JSON TCP endpoint (see `ra_serve::wire` for the
//! protocol), prints `listening on <addr>` once ready — scripts and CI
//! wait for that line — and serves until killed. `--spill` appends one
//! JSON line per completed result; `--trace` streams the full service +
//! simulation event stream (admissions, rejections, cache hits, run
//! spans) as JSONL.

use std::path::PathBuf;
use std::process::ExitCode;

use ra_obs::{JsonlRecorder, ObsSink};
use ra_serve::{JobService, ServeConfig, WireServer};

struct Args {
    addr: String,
    config: ServeConfig,
    trace: Option<PathBuf>,
}

const USAGE: &str = "usage: ra-serve [--addr HOST:PORT] [--workers N] [--queue N] \
                     [--cache N] [--shards N] [--spill FILE] [--trace FILE]";

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        addr: "127.0.0.1:7743".to_owned(),
        config: ServeConfig::default(),
        trace: None,
    };
    let mut argv = std::env::args().skip(1);
    while let Some(flag) = argv.next() {
        let mut value = |flag: &str| {
            argv.next()
                .ok_or_else(|| format!("{flag} needs a value\n{USAGE}"))
        };
        match flag.as_str() {
            "--addr" => args.addr = value("--addr")?,
            "--workers" => args.config.workers = parse_num(&value("--workers")?, "--workers")?,
            "--queue" => {
                args.config.queue_capacity = parse_num(&value("--queue")?, "--queue")?;
            }
            "--cache" => {
                args.config.cache_capacity = parse_num(&value("--cache")?, "--cache")?;
            }
            "--shards" => {
                args.config.cache_shards = parse_num(&value("--shards")?, "--shards")?;
            }
            "--spill" => args.config.spill = Some(PathBuf::from(value("--spill")?)),
            "--trace" => args.trace = Some(PathBuf::from(value("--trace")?)),
            "--help" | "-h" => return Err(USAGE.to_owned()),
            other => return Err(format!("unknown flag `{other}`\n{USAGE}")),
        }
    }
    Ok(args)
}

fn parse_num(text: &str, flag: &str) -> Result<usize, String> {
    text.parse::<usize>()
        .ok()
        .filter(|n| *n > 0)
        .ok_or_else(|| format!("{flag} needs a positive integer, got `{text}`"))
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(message) => {
            eprintln!("{message}");
            return ExitCode::FAILURE;
        }
    };
    let obs = match &args.trace {
        None => ObsSink::disabled(),
        Some(path) => match JsonlRecorder::create(path) {
            Ok(recorder) => ObsSink::attach(recorder).0,
            Err(err) => {
                eprintln!("ra-serve: cannot create trace file {}: {err}", path.display());
                return ExitCode::FAILURE;
            }
        },
    };
    let service = match JobService::start(args.config.clone(), obs) {
        Ok(service) => service,
        Err(err) => {
            eprintln!("ra-serve: cannot start service: {err}");
            return ExitCode::FAILURE;
        }
    };
    let server = match WireServer::bind(args.addr.as_str(), service) {
        Ok(server) => server,
        Err(err) => {
            eprintln!("ra-serve: cannot bind {}: {err}", args.addr);
            return ExitCode::FAILURE;
        }
    };
    match server.local_addr() {
        Ok(addr) => {
            // Flushed immediately: launch scripts block on this line.
            println!("listening on {addr}");
            use std::io::Write as _;
            let _ = std::io::stdout().flush();
        }
        Err(err) => {
            eprintln!("ra-serve: cannot read bound address: {err}");
            return ExitCode::FAILURE;
        }
    }
    eprintln!(
        "ra-serve: {} workers, queue {}, cache {} entries / {} shards",
        args.config.workers,
        args.config.queue_capacity,
        args.config.cache_capacity,
        args.config.cache_shards
    );
    match server.run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(err) => {
            eprintln!("ra-serve: accept loop failed: {err}");
            ExitCode::FAILURE
        }
    }
}
