//! `ra-loadgen` — mixed open-loop load generator for `ra-serve`.
//!
//! ```text
//! ra-loadgen --addr 127.0.0.1:7743 [--jobs 64] [--workers 4]
//!            [--distinct 8] [--spec "target=2x2 app=water ..."]
//!            [--timeout-ms 120000] [--binary] [--batch N]
//! ```
//!
//! Drives the server with `--jobs` submissions spread round-robin over
//! `--workers` persistent connections. The stream cycles through
//! `--distinct` seed variants of the base `--spec` and through the three
//! priorities, so it exercises coalescing, caching, and priority
//! ordering at once. Submission is *open-loop*: each connection fires
//! all of its submits back-to-back, then collects results.
//!
//! `--binary` speaks the checksummed binary frame codec instead of
//! line JSON (the server sniffs the codec per connection, no flag
//! needed on its side). `--batch N` rides the `submit_batch` /
//! `result_batch` verbs, N jobs per round-trip; both compose, and
//! `--binary --batch 16` is the wire's cheapest shape.
//!
//! The report (stable, CI-greppable):
//!
//! ```text
//! dispositions: enqueued=8 coalesced=40 cached=16 rejected=0 rejected_without_signal=0 retries=0
//! outcomes: completed=8 cached=56 failed=0 cancelled=0 expired=0
//! latency ms: p50=1.2 p95=9.8 p99=14.0 mean=3.4
//! throughput: 410.3 jobs/s over 0.16 s
//! bytes: sent=9184 received=21440 per_job=478.5
//! server cache: ... hit_ratio=0.875 memo_ratio=0.875
//! ```
//!
//! The `bytes:` line counts wire traffic on the loadgen's job
//! connections (submits + results, not the final stats poll);
//! `per_job` divides the total by finished jobs, which is what the CI
//! binary-vs-JSON efficiency gate compares.
//!
//! `rejected_without_signal` counts submissions the server turned away
//! *without* the explicit `queue_full` backpressure signal — always 0
//! for a well-behaved server, and CI asserts exactly that.
//!
//! `--addr` may point at an `ra-relay` instead of a single backend —
//! the protocol is identical. In that case the report grows a
//! `relay: ... retries=... reroutes=...` line (forward retries and
//! failover re-routes observed at the relay) and one `shard N:` row per
//! backend with its health state and share of the work.
//!
//! When the server *does* signal `queue_full` + `retryable`, each
//! connection retries the same submission with exponential backoff plus
//! jitter drawn from a per-connection seeded generator, so runs are
//! reproducible and connections do not thunder back in lockstep. The
//! `retries=` field on the dispositions line counts those resubmits;
//! `rejected=` counts only submissions that exhausted the budget.

use std::process::ExitCode;
use std::time::{Duration, Instant};

use ra_bench::percentile;
use ra_serve::{ErrorCode, Json, Response, SubmitItem, WireClient};

struct Args {
    addr: String,
    jobs: usize,
    workers: usize,
    distinct: usize,
    spec: String,
    timeout_ms: u64,
    binary: bool,
    batch: usize,
    /// `--overload`: closed-loop capacity calibration, then an open-loop
    /// arrival-rate ramp past capacity (see [`overload`]).
    overload: bool,
    /// Offered-load multipliers for the ramp, vs measured capacity.
    steps: Vec<f64>,
    /// Wall-clock per ramp step, milliseconds.
    step_ms: u64,
    /// Every Nth overload submission withholds `allow_degraded`
    /// (0 = every submission consents).
    strict_every: usize,
}

const USAGE: &str = "usage: ra-loadgen --addr HOST:PORT [--jobs N] [--workers N] \
                     [--distinct N] [--spec SPEC] [--timeout-ms N] [--binary] [--batch N] \
                     [--overload] [--steps M,M,...] [--step-ms N] [--strict-every N]";

const PRIORITIES: [&str; 3] = ["low", "normal", "high"];

/// Backoff schedule for `queue_full` rejections: attempt `n` (1-based)
/// sleeps `BACKOFF_BASE_MS << (n-1)` plus jitter in `[0, same)` ms.
const MAX_SUBMIT_ATTEMPTS: u32 = 6;
const BACKOFF_BASE_MS: u64 = 2;

/// xorshift64* — tiny, seedable, and plenty for backoff jitter.
/// Seeded from the connection index so every run of the same command
/// line produces the same retry timing per connection.
struct Jitter(u64);

impl Jitter {
    fn seeded(client_id: usize) -> Jitter {
        Jitter((client_id as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1)
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform-ish draw in `[0, bound)`; bound must be non-zero.
    fn below(&mut self, bound: u64) -> u64 {
        self.next() % bound
    }
}

/// Default spec for `--overload`: reciprocal mode, so the ladder has
/// cheaper rungs to degrade to, and heavy enough at full fidelity that
/// a small worker pool saturates at a measurable rate.
const OVERLOAD_SPEC: &str =
    "target=4x4 app=water mode=reciprocal:quantum=500 instructions=3000 budget=20000000";

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        addr: String::new(),
        jobs: 64,
        workers: 4,
        distinct: 8,
        spec: String::new(),
        timeout_ms: 120_000,
        binary: false,
        batch: 1,
        overload: false,
        steps: vec![0.5, 1.5, 3.0],
        step_ms: 2_000,
        strict_every: 4,
    };
    let mut argv = std::env::args().skip(1);
    while let Some(flag) = argv.next() {
        let mut value = |flag: &str| {
            argv.next()
                .ok_or_else(|| format!("{flag} needs a value\n{USAGE}"))
        };
        match flag.as_str() {
            "--addr" => args.addr = value("--addr")?,
            "--jobs" => args.jobs = parse_num(&value("--jobs")?, "--jobs")?,
            "--workers" => args.workers = parse_num(&value("--workers")?, "--workers")?,
            "--distinct" => args.distinct = parse_num(&value("--distinct")?, "--distinct")?,
            "--spec" => args.spec = value("--spec")?,
            "--timeout-ms" => {
                args.timeout_ms = parse_num(&value("--timeout-ms")?, "--timeout-ms")? as u64;
            }
            "--binary" => args.binary = true,
            "--batch" => args.batch = parse_num(&value("--batch")?, "--batch")?,
            "--overload" => args.overload = true,
            "--steps" => {
                let text = value("--steps")?;
                args.steps = text
                    .split(',')
                    .map(|part| {
                        part.trim()
                            .parse::<f64>()
                            .ok()
                            .filter(|m| *m > 0.0)
                            .ok_or_else(|| {
                                format!("--steps needs positive multipliers, got `{text}`")
                            })
                    })
                    .collect::<Result<Vec<f64>, String>>()?;
            }
            "--step-ms" => {
                args.step_ms = parse_num(&value("--step-ms")?, "--step-ms")? as u64;
            }
            "--strict-every" => {
                // 0 is meaningful: every submission consents to degrade.
                let text = value("--strict-every")?;
                args.strict_every = text.parse::<usize>().map_err(|_| {
                    format!("--strict-every needs a non-negative integer, got `{text}`")
                })?;
            }
            "--help" | "-h" => return Err(USAGE.to_owned()),
            other => return Err(format!("unknown flag `{other}`\n{USAGE}")),
        }
    }
    if args.addr.is_empty() {
        return Err(format!("--addr is required\n{USAGE}"));
    }
    if args.spec.is_empty() {
        args.spec = if args.overload {
            OVERLOAD_SPEC.to_owned()
        } else {
            "target=2x2 app=water mode=fixed:10 instructions=50 budget=200000".to_owned()
        };
    }
    Ok(args)
}

fn parse_num(text: &str, flag: &str) -> Result<usize, String> {
    text.parse::<usize>()
        .ok()
        .filter(|n| *n > 0)
        .ok_or_else(|| format!("{flag} needs a positive integer, got `{text}`"))
}

/// What one connection observed.
#[derive(Default)]
struct Tally {
    enqueued: u64,
    coalesced: u64,
    cached_submit: u64,
    rejected: u64,
    rejected_without_signal: u64,
    retries: u64,
    completed: u64,
    cached_outcome: u64,
    failed: u64,
    cancelled: u64,
    expired: u64,
    transport_errors: u64,
    /// Wire bytes this connection wrote / read (submits + results).
    bytes_sent: u64,
    bytes_received: u64,
    /// Client-observed submit -> result wall latency, milliseconds.
    latency_ms: Vec<f64>,
}

impl Tally {
    fn absorb(&mut self, other: Tally) {
        self.enqueued += other.enqueued;
        self.coalesced += other.coalesced;
        self.cached_submit += other.cached_submit;
        self.rejected += other.rejected;
        self.rejected_without_signal += other.rejected_without_signal;
        self.retries += other.retries;
        self.completed += other.completed;
        self.cached_outcome += other.cached_outcome;
        self.failed += other.failed;
        self.cancelled += other.cancelled;
        self.expired += other.expired;
        self.transport_errors += other.transport_errors;
        self.bytes_sent += other.bytes_sent;
        self.bytes_received += other.bytes_received;
        self.latency_ms.extend(other.latency_ms);
    }
}

/// One job's spec + priority, with its original submit instant for the
/// latency tally.
struct PendingJob {
    spec: String,
    priority: &'static str,
    submitted: Instant,
}

/// Records one typed submit response; returns the ticket if accepted,
/// `Some(true)` in `.1` if the job should be retried (signalled
/// `queue_full`).
fn record_submit(tally: &mut Tally, response: &Response) -> (Option<u64>, bool) {
    match response {
        Response::Submit(ok) => {
            match ok.disposition.as_str() {
                "enqueued" => tally.enqueued += 1,
                "coalesced" => tally.coalesced += 1,
                "cached" => tally.cached_submit += 1,
                other => {
                    eprintln!("ra-loadgen: odd disposition {other:?}");
                    tally.transport_errors += 1;
                }
            }
            (Some(ok.ticket), false)
        }
        Response::Error(err) => {
            let signalled = err.code == ErrorCode::QueueFull && err.depth.is_some();
            (None, signalled)
        }
        other => {
            eprintln!("ra-loadgen: odd submit response {other:?}");
            tally.transport_errors += 1;
            (None, false)
        }
    }
}

/// Submits one job with the signalled-`queue_full` backoff loop.
fn submit_one(
    client: &mut WireClient,
    tally: &mut Tally,
    jitter: &mut Jitter,
    job: &PendingJob,
) -> Option<u64> {
    let item = SubmitItem::new(job.spec.clone()).priority(job.priority);
    let mut attempt: u32 = 0;
    loop {
        attempt += 1;
        let mut responses = match client.submit_batch(vec![item.clone()]) {
            Ok(responses) => responses,
            Err(err) => {
                eprintln!("ra-loadgen: submit: {err}");
                tally.transport_errors += 1;
                return None;
            }
        };
        let response = responses.pop().unwrap_or_else(|| {
            Response::Error(ra_serve::WireError::new(ErrorCode::Unavailable, "submit"))
        });
        let (ticket, retryable) = record_submit(tally, &response);
        if ticket.is_some() {
            return ticket;
        }
        if retryable && attempt < MAX_SUBMIT_ATTEMPTS {
            let base = BACKOFF_BASE_MS << (attempt - 1);
            std::thread::sleep(Duration::from_millis(base + jitter.below(base)));
            tally.retries += 1;
            continue;
        }
        tally.rejected += 1;
        if !retryable {
            tally.rejected_without_signal += 1;
        }
        return None;
    }
}

/// Records one typed result response against its submit instant.
fn record_result(tally: &mut Tally, response: &Response, submitted: Instant) {
    let outcome = match response {
        Response::Outcome(ok) => ok.outcome.as_str(),
        Response::Error(err) => {
            eprintln!("ra-loadgen: no outcome: {} ({})", err.code.as_str(), err.verb);
            tally.transport_errors += 1;
            return;
        }
        other => {
            eprintln!("ra-loadgen: odd result response {other:?}");
            tally.transport_errors += 1;
            return;
        }
    };
    match outcome {
        "completed" => tally.completed += 1,
        "cached" => tally.cached_outcome += 1,
        "failed" | "poisoned" => tally.failed += 1,
        "cancelled" => tally.cancelled += 1,
        "deadline_expired" | "deadline_exceeded" => tally.expired += 1,
        other => {
            eprintln!("ra-loadgen: odd outcome {other:?}");
            tally.transport_errors += 1;
            return;
        }
    }
    tally.latency_ms.push(submitted.elapsed().as_secs_f64() * 1e3);
}

fn drive_connection(args: &Args, jobs: &[usize], client_id: usize) -> Tally {
    let mut tally = Tally::default();
    let mut jitter = Jitter::seeded(client_id);
    let mut client = match WireClient::connect(args.addr.as_str()) {
        Ok(client) => client.with_binary(args.binary),
        Err(err) => {
            eprintln!("ra-loadgen: connect {}: {err}", args.addr);
            tally.transport_errors += 1;
            return tally;
        }
    };
    let queue: Vec<PendingJob> = jobs
        .iter()
        .map(|&job| PendingJob {
            spec: format!("{} seed={}", args.spec, job % args.distinct),
            priority: PRIORITIES[job % PRIORITIES.len()],
            submitted: Instant::now(),
        })
        .collect();
    // Open-loop phase: all submits back-to-back (in `--batch`-sized
    // bursts when batching); a signalled `queue_full` pauses just that
    // job for a jittered exponential backoff.
    let mut pending: Vec<(u64, Instant)> = Vec::with_capacity(jobs.len());
    let batch = args.batch.max(1);
    for chunk in queue.chunks(batch) {
        if batch == 1 {
            let job = &chunk[0];
            if let Some(ticket) = submit_one(&mut client, &mut tally, &mut jitter, job) {
                pending.push((ticket, job.submitted));
            }
            continue;
        }
        let items: Vec<SubmitItem> = chunk
            .iter()
            .map(|job| SubmitItem::new(job.spec.clone()).priority(job.priority))
            .collect();
        let responses = match client.submit_batch(items) {
            Ok(responses) => responses,
            Err(err) => {
                eprintln!("ra-loadgen: submit_batch: {err}");
                tally.transport_errors += 1;
                continue;
            }
        };
        for (job, response) in chunk.iter().zip(&responses) {
            let (ticket, retryable) = record_submit(&mut tally, response);
            match ticket {
                Some(ticket) => pending.push((ticket, job.submitted)),
                // A signalled queue_full falls back to the per-job
                // backoff loop; anything else is a final rejection.
                None if retryable => {
                    tally.retries += 1;
                    let base = BACKOFF_BASE_MS + jitter.below(BACKOFF_BASE_MS);
                    std::thread::sleep(Duration::from_millis(base));
                    if let Some(ticket) =
                        submit_one(&mut client, &mut tally, &mut jitter, job)
                    {
                        pending.push((ticket, job.submitted));
                    }
                }
                None => {
                    tally.rejected += 1;
                    tally.rejected_without_signal += 1;
                }
            }
        }
        // A short sub-batch answer loses the tail items.
        if responses.len() < chunk.len() {
            tally.transport_errors += (chunk.len() - responses.len()) as u64;
        }
    }
    // Collection phase.
    for chunk in pending.chunks(batch) {
        if batch == 1 {
            let (ticket, submitted) = chunk[0];
            match client.result_batch(vec![ticket], Some(args.timeout_ms)) {
                Ok(responses) if responses.len() == 1 => {
                    record_result(&mut tally, &responses[0], submitted);
                }
                Ok(_) | Err(_) => {
                    eprintln!("ra-loadgen: result: ticket {ticket} got no answer");
                    tally.transport_errors += 1;
                }
            }
            continue;
        }
        let tickets: Vec<u64> = chunk.iter().map(|&(ticket, _)| ticket).collect();
        match client.result_batch(tickets, Some(args.timeout_ms)) {
            Ok(responses) if responses.len() == chunk.len() => {
                for (&(_, submitted), response) in chunk.iter().zip(&responses) {
                    record_result(&mut tally, response, submitted);
                }
            }
            Ok(responses) => {
                eprintln!(
                    "ra-loadgen: result_batch: {} answers for {} tickets",
                    responses.len(),
                    chunk.len()
                );
                tally.transport_errors += 1;
            }
            Err(err) => {
                eprintln!("ra-loadgen: result_batch: {err}");
                tally.transport_errors += 1;
            }
        }
    }
    tally.bytes_sent = client.bytes_sent();
    tally.bytes_received = client.bytes_received();
    tally
}

/// One `shard N:` line per backend the relay fronts — health state and
/// each live node's share of the work (its own counters).
fn report_shards(args: &Args) {
    let nodes = match WireClient::connect(args.addr.as_str()).and_then(|mut c| c.node_stats()) {
        Ok(nodes) => nodes,
        Err(err) => {
            eprintln!("ra-loadgen: node_stats: {err}");
            return;
        }
    };
    let Some(Json::Arr(rows)) = nodes.get("nodes") else {
        return;
    };
    for row in rows {
        let num = |key: &str| row.get(key).and_then(Json::as_u64).unwrap_or(0);
        println!(
            "shard {}: state={} submitted={} completed={} cache_hits={} coalesced={} \
             queue_depth={} rtt_ns={}",
            num("node"),
            row.get("state").and_then(Json::as_str).unwrap_or("?"),
            num("submitted"),
            num("completed"),
            num("cache_hits"),
            num("coalesced"),
            num("queue_depth"),
            num("rtt_ns")
        );
    }
}

/// What one overload step observed, across all connections.
#[derive(Default)]
struct StepTally {
    /// Submissions offered (accepted or shed — not transport errors).
    offered: u64,
    /// Terminal completed/cached answers collected.
    answered: u64,
    /// Answers at `fidelity=reciprocal`.
    full: u64,
    /// Answers at a cheaper rung.
    degraded: u64,
    /// Answers served from a memo/edge cache.
    cached: u64,
    /// `queue_full` for submissions that withheld `allow_degraded`.
    shed: u64,
    /// `queue_full` for *consenting* submissions — the acceptance
    /// criterion says this must stay zero.
    shed_consenting: u64,
    /// Completed answers missing the fidelity tag — must stay zero.
    tag_missing: u64,
    /// Jobs that finished failed/poisoned.
    failed: u64,
    transport_errors: u64,
}

impl StepTally {
    fn absorb(&mut self, other: StepTally) {
        self.offered += other.offered;
        self.answered += other.answered;
        self.full += other.full;
        self.degraded += other.degraded;
        self.cached += other.cached;
        self.shed += other.shed;
        self.shed_consenting += other.shed_consenting;
        self.tag_missing += other.tag_missing;
        self.failed += other.failed;
        self.transport_errors += other.transport_errors;
    }
}

/// Classifies one collected outcome into the step tally.
fn record_overload_result(tally: &mut StepTally, response: &Response) {
    match response {
        Response::Outcome(ok) => match ok.outcome.as_str() {
            "completed" | "cached" => {
                tally.answered += 1;
                if ok.outcome == "cached" {
                    tally.cached += 1;
                }
                match ok.body.as_ref().and_then(|b| b.fidelity.as_deref()) {
                    Some("reciprocal") => tally.full += 1,
                    Some(_) => tally.degraded += 1,
                    None => tally.tag_missing += 1,
                }
            }
            "failed" | "poisoned" => tally.failed += 1,
            // Cancelled/expired never happens here (no deadlines set);
            // count it against the run rather than ignore it.
            _ => tally.failed += 1,
        },
        Response::Error(err) => {
            eprintln!("ra-loadgen: overload result: {} ({})", err.code.as_str(), err.verb);
            tally.transport_errors += 1;
        }
        other => {
            eprintln!("ra-loadgen: odd overload result {other:?}");
            tally.transport_errors += 1;
        }
    }
}

/// One connection's closed-loop calibration: submit one full-fidelity
/// job at a time, wait for its answer, repeat until the deadline.
fn calibrate_connection(args: &Args, seeds: &std::sync::atomic::AtomicU64, until: Instant) -> u64 {
    use std::sync::atomic::Ordering;
    let mut client = match WireClient::connect(args.addr.as_str()) {
        Ok(client) => client.with_binary(args.binary),
        Err(err) => {
            eprintln!("ra-loadgen: connect {}: {err}", args.addr);
            return 0;
        }
    };
    let mut answered = 0;
    while Instant::now() < until {
        let seed = seeds.fetch_add(1, Ordering::Relaxed);
        let item = SubmitItem::new(format!("{} seed={}", args.spec, seed)).priority("normal");
        let Ok(responses) = client.submit_batch(vec![item]) else {
            break;
        };
        let Some(Response::Submit(ok)) = responses.first() else {
            // Calibration backs off on queue_full instead of counting it:
            // the goal is a service-rate estimate, not a stress run.
            std::thread::sleep(Duration::from_millis(5));
            continue;
        };
        match client.result_batch(vec![ok.ticket], Some(args.timeout_ms)) {
            Ok(responses) if matches!(responses.first(), Some(Response::Outcome(_))) => {
                answered += 1;
            }
            _ => break,
        }
    }
    answered
}

/// One connection's share of a ramp step: paced open-loop submits for
/// `duration`, then collect every accepted ticket.
fn overload_step_connection(
    args: &Args,
    client_id: usize,
    interval: Duration,
    duration: Duration,
    seeds: &std::sync::atomic::AtomicU64,
) -> StepTally {
    use std::sync::atomic::Ordering;
    let mut tally = StepTally::default();
    let mut client = match WireClient::connect(args.addr.as_str()) {
        Ok(client) => client.with_binary(args.binary),
        Err(err) => {
            eprintln!("ra-loadgen: connect {}: {err}", args.addr);
            tally.transport_errors += 1;
            return tally;
        }
    };
    let mut pending: Vec<u64> = Vec::new();
    let end = Instant::now() + duration;
    let mut next = Instant::now();
    while Instant::now() < end {
        let now = Instant::now();
        if next > now {
            std::thread::sleep(next - now);
        }
        next += interval;
        let seed = seeds.fetch_add(1, Ordering::Relaxed);
        let strict = args.strict_every > 0 && seed.is_multiple_of(args.strict_every as u64);
        let mut item = SubmitItem::new(format!("{} seed={}", args.spec, seed))
            .priority(PRIORITIES[seed as usize % PRIORITIES.len()])
            .client(format!("loadgen-{client_id}"));
        if !strict {
            item = item.allow_degraded(true);
        }
        let responses = match client.submit_batch(vec![item]) {
            Ok(responses) => responses,
            Err(err) => {
                eprintln!("ra-loadgen: overload submit: {err}");
                tally.transport_errors += 1;
                continue;
            }
        };
        match responses.first() {
            Some(Response::Submit(ok)) => {
                tally.offered += 1;
                pending.push(ok.ticket);
            }
            Some(Response::Error(err)) if err.code == ErrorCode::QueueFull => {
                tally.offered += 1;
                if strict {
                    tally.shed += 1;
                } else {
                    tally.shed_consenting += 1;
                }
            }
            other => {
                eprintln!("ra-loadgen: odd overload submit response {other:?}");
                tally.transport_errors += 1;
            }
        }
    }
    for chunk in pending.chunks(16) {
        match client.result_batch(chunk.to_vec(), Some(args.timeout_ms)) {
            Ok(responses) if responses.len() == chunk.len() => {
                for response in &responses {
                    record_overload_result(&mut tally, response);
                }
            }
            Ok(responses) => {
                eprintln!(
                    "ra-loadgen: overload collect: {} answers for {} tickets",
                    responses.len(),
                    chunk.len()
                );
                tally.transport_errors += 1;
            }
            Err(err) => {
                eprintln!("ra-loadgen: overload collect: {err}");
                tally.transport_errors += 1;
            }
        }
    }
    tally
}

/// One server-stats counter, fresh connection each poll.
fn server_stat(args: &Args, key: &str) -> u64 {
    WireClient::connect(args.addr.as_str())
        .and_then(|mut c| c.stats())
        .ok()
        .and_then(|stats| stats.get(key).and_then(Json::as_u64))
        .unwrap_or(0)
}

/// `--overload`: measure closed-loop full-fidelity capacity, then ramp
/// an open-loop arrival rate through `--steps` multiples of it. Each
/// step prints one JSON curve row (`overload: {...}`); the run ends
/// with a bounded wait for a background upgrade to land.
fn run_overload(args: &Args) -> ExitCode {
    use std::sync::atomic::AtomicU64;
    let seeds = AtomicU64::new(0x10_0000);
    let upgraded_base = server_stat(args, "upgraded");

    // Closed-loop calibration: `--workers` connections, one in-flight
    // full-fidelity job each — the sustainable service rate.
    let calib = Duration::from_millis(args.step_ms.clamp(500, 5_000));
    let started = Instant::now();
    let until = Instant::now() + calib;
    let answered: u64 = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..args.workers)
            .map(|_| scope.spawn(|| calibrate_connection(args, &seeds, until)))
            .collect();
        handles.into_iter().map(|h| h.join().unwrap_or(0)).sum()
    });
    let capacity = answered as f64 / started.elapsed().as_secs_f64();
    if answered == 0 || capacity <= 0.0 {
        eprintln!("ra-loadgen: overload calibration produced no completions");
        return ExitCode::FAILURE;
    }
    println!(
        "overload_capacity: {capacity:.1} jobs/s closed-loop full fidelity \
         ({answered} jobs over {:.2} s, {} connections)",
        started.elapsed().as_secs_f64(),
        args.workers
    );

    let mut total = StepTally::default();
    let duration = Duration::from_millis(args.step_ms);
    for (step, &multiplier) in args.steps.iter().enumerate() {
        let rate = capacity * multiplier;
        let per_conn = (rate / args.workers as f64).max(0.1);
        let interval = Duration::from_secs_f64(1.0 / per_conn);
        let step_started = Instant::now();
        let mut tally = StepTally::default();
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..args.workers)
                .map(|client_id| {
                    let seeds = &seeds;
                    scope.spawn(move || {
                        overload_step_connection(args, client_id, interval, duration, seeds)
                    })
                })
                .collect();
            for handle in handles {
                match handle.join() {
                    Ok(t) => tally.absorb(t),
                    Err(_) => tally.transport_errors += 1,
                }
            }
        });
        let elapsed = step_started.elapsed().as_secs_f64();
        let goodput = tally.answered as f64 / elapsed;
        println!(
            "overload: {{\"step\":{step},\"multiplier\":{multiplier:.2},\
             \"offered_rate\":{rate:.1},\"offered\":{},\"answered\":{},\
             \"full\":{},\"degraded\":{},\"cached\":{},\"shed\":{},\
             \"shed_consenting\":{},\"failed\":{},\"goodput\":{goodput:.1},\
             \"goodput_ratio\":{:.3},\"brownout\":{},\"elapsed_s\":{elapsed:.2}}}",
            tally.offered,
            tally.answered,
            tally.full,
            tally.degraded,
            tally.cached,
            tally.shed,
            tally.shed_consenting,
            tally.failed,
            goodput / capacity,
            server_stat(args, "brownout"),
        );
        total.absorb(tally);
    }

    // Bounded wait for the background upgrader: at least one degraded
    // answer must be re-run at full fidelity (if any were degraded).
    let mut upgraded = server_stat(args, "upgraded").saturating_sub(upgraded_base);
    if total.degraded > 0 {
        let deadline = Instant::now() + Duration::from_secs(30);
        while upgraded == 0 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(100));
            upgraded = server_stat(args, "upgraded").saturating_sub(upgraded_base);
        }
    }
    println!(
        "overload_upgrades: upgraded={upgraded} pending={}",
        server_stat(args, "upgrades_pending")
    );
    println!(
        "overload totals: offered={} answered={} full={} degraded={} cached={} shed={} \
         shed_consenting={} tag_missing={} failed={} transport_errors={}",
        total.offered,
        total.answered,
        total.full,
        total.degraded,
        total.cached,
        total.shed,
        total.shed_consenting,
        total.tag_missing,
        total.failed,
        total.transport_errors
    );

    if total.transport_errors > 0
        || total.shed_consenting > 0
        || total.tag_missing > 0
        || total.failed > 0
    {
        eprintln!(
            "ra-loadgen: OVERLOAD FAILED (transport_errors={}, shed_consenting={}, \
             tag_missing={}, failed={})",
            total.transport_errors, total.shed_consenting, total.tag_missing, total.failed
        );
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(message) => {
            eprintln!("{message}");
            return ExitCode::FAILURE;
        }
    };
    if args.overload {
        println!(
            "loadgen overload: steps {:?} x capacity, {} ms/step, {} connections, \
             strict every {} -> {}",
            args.steps, args.step_ms, args.workers, args.strict_every, args.addr
        );
        return run_overload(&args);
    }
    println!(
        "loadgen: {} jobs, {} connections, {} distinct specs, codec={}, batch={} -> {}",
        args.jobs,
        args.workers,
        args.distinct,
        if args.binary { "binary" } else { "json" },
        args.batch.max(1),
        args.addr
    );
    let started = Instant::now();
    let slices: Vec<Vec<usize>> = (0..args.workers)
        .map(|w| (w..args.jobs).step_by(args.workers).collect())
        .collect();
    let mut total = Tally::default();
    std::thread::scope(|scope| {
        let args = &args;
        let handles: Vec<_> = slices
            .iter()
            .enumerate()
            .map(|(client_id, jobs)| scope.spawn(move || drive_connection(args, jobs, client_id)))
            .collect();
        for handle in handles {
            match handle.join() {
                Ok(tally) => total.absorb(tally),
                Err(_) => total.transport_errors += 1,
            }
        }
    });
    let elapsed = started.elapsed().as_secs_f64();

    println!(
        "dispositions: enqueued={} coalesced={} cached={} rejected={} \
         rejected_without_signal={} retries={}",
        total.enqueued,
        total.coalesced,
        total.cached_submit,
        total.rejected,
        total.rejected_without_signal,
        total.retries
    );
    println!(
        "outcomes: completed={} cached={} failed={} cancelled={} expired={}",
        total.completed, total.cached_outcome, total.failed, total.cancelled, total.expired
    );
    let mean = if total.latency_ms.is_empty() {
        0.0
    } else {
        total.latency_ms.iter().sum::<f64>() / total.latency_ms.len() as f64
    };
    println!(
        "latency ms: p50={:.2} p95={:.2} p99={:.2} mean={:.2}",
        percentile(&total.latency_ms, 50.0),
        percentile(&total.latency_ms, 95.0),
        percentile(&total.latency_ms, 99.0),
        mean
    );
    let finished = total.completed + total.cached_outcome;
    println!(
        "throughput: {:.1} jobs/s over {:.2} s",
        if elapsed > 0.0 { finished as f64 / elapsed } else { 0.0 },
        elapsed
    );
    let per_job = if finished > 0 {
        (total.bytes_sent + total.bytes_received) as f64 / finished as f64
    } else {
        0.0
    };
    println!(
        "bytes: sent={} received={} per_job={per_job:.1}",
        total.bytes_sent, total.bytes_received
    );

    match WireClient::connect(args.addr.as_str()).and_then(|mut c| c.stats()) {
        Ok(stats) => {
            let num = |key: &str| stats.get(key).and_then(Json::as_u64).unwrap_or(0);
            let ratio = |key: &str| stats.get(key).and_then(Json::as_f64).unwrap_or(0.0);
            println!(
                "server cache: store_hits={} store_misses={} insertions={} evictions={} \
                 hit_ratio={:.3} memo_ratio={:.3}",
                num("store_hits"),
                num("store_misses"),
                num("insertions"),
                num("evictions"),
                ratio("hit_ratio"),
                ratio("memo_ratio")
            );
            // Pointed at a relay instead of a single backend, the stats
            // snapshot carries the cluster-level counters too: surface
            // the forwarding retries and failover re-routes so chaos
            // runs can grep for them.
            if stats.get("role").and_then(Json::as_str) == Some("relay") {
                println!(
                    "relay: forwards={} retries={} reroutes={} failovers={} edge_hits={} \
                     nodes_routable={}/{}",
                    num("relay_forwards"),
                    num("relay_retries"),
                    num("relay_reroutes"),
                    num("relay_failovers"),
                    num("relay_edge_hits"),
                    num("nodes_routable"),
                    num("nodes")
                );
                report_shards(&args);
            }
        }
        Err(err) => {
            eprintln!("ra-loadgen: stats: {err}");
            total.transport_errors += 1;
        }
    }

    if total.transport_errors > 0 || total.rejected_without_signal > 0 || total.failed > 0 {
        eprintln!(
            "ra-loadgen: FAILED (transport_errors={}, rejected_without_signal={}, failed={})",
            total.transport_errors, total.rejected_without_signal, total.failed
        );
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
