//! `ra-relay` — the cluster coordinator in front of N `ra-serve` nodes.
//!
//! ```text
//! ra-relay --backend 127.0.0.1:7743 --backend 127.0.0.1:7744 ...
//!          [--addr 127.0.0.1:7742] [--vnodes 128]
//!          [--probe-interval-ms 250] [--probe-timeout-ms 500]
//!          [--fail-threshold 3] [--recover-threshold 2]
//!          [--forward-deadline-ms 2000] [--retry-budget 3]
//!          [--retry-backoff-ms 10] [--edge-cache 64] [--seed 42]
//!          [--trace trace.jsonl]
//! ```
//!
//! Speaks the same dual-codec wire protocol as a single `ra-serve`
//! (line JSON and binary frames, sniffed per connection), so every
//! client points at the relay unchanged; its own forwards to the
//! backends ride the binary codec. Jobs are consistent-hashed across
//! the backends, batch verbs fan out as one sub-batch per owning node,
//! a probe loop drives each backend's Up/Suspect/Down health machine,
//! and when a node dies its in-flight jobs are re-driven on the
//! survivors exactly once (`ra_serve::cluster` has the full story).
//! Prints `listening on <addr>` once ready — scripts and CI wait for
//! that line — and serves until SIGTERM/ctrl-c.

use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Duration;

use ra_obs::{JsonlRecorder, ObsSink};
use ra_serve::cluster::{Relay, RelayConfig, RelayServer};

/// Minimal unix signal latch without any libc crate: `signal(2)` is in
/// every libc the toolchain links anyway, and the handler only performs
/// an async-signal-safe atomic store.
#[cfg(unix)]
mod signals {
    use std::sync::atomic::{AtomicBool, Ordering};

    static SHUTDOWN: AtomicBool = AtomicBool::new(false);
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }

    extern "C" fn on_signal(_signum: i32) {
        SHUTDOWN.store(true, Ordering::SeqCst);
    }

    pub fn install() {
        unsafe {
            signal(SIGINT, on_signal);
            signal(SIGTERM, on_signal);
        }
    }

    pub fn requested() -> bool {
        SHUTDOWN.load(Ordering::SeqCst)
    }
}

#[cfg(not(unix))]
mod signals {
    pub fn install() {}

    pub fn requested() -> bool {
        false
    }
}

struct Args {
    addr: String,
    config: RelayConfig,
    trace: Option<PathBuf>,
}

const USAGE: &str = "usage: ra-relay --backend HOST:PORT [--backend HOST:PORT ...] \
                     [--addr HOST:PORT] [--vnodes N] [--probe-interval-ms N] \
                     [--probe-timeout-ms N] [--fail-threshold N] [--recover-threshold N] \
                     [--forward-deadline-ms N] [--retry-budget N] [--retry-backoff-ms N] \
                     [--edge-cache N] [--seed N] [--trace FILE]";

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        addr: "127.0.0.1:7742".to_owned(),
        config: RelayConfig::default(),
        trace: None,
    };
    let mut argv = std::env::args().skip(1);
    while let Some(flag) = argv.next() {
        let mut value = |flag: &str| {
            argv.next()
                .ok_or_else(|| format!("{flag} needs a value\n{USAGE}"))
        };
        match flag.as_str() {
            "--addr" => args.addr = value("--addr")?,
            "--backend" => args.config.backends.push(value("--backend")?),
            "--vnodes" => args.config.vnodes = parse_num(&value("--vnodes")?, "--vnodes")?,
            "--probe-interval-ms" => {
                args.config.health.probe_interval =
                    parse_ms(&value("--probe-interval-ms")?, "--probe-interval-ms")?;
            }
            "--probe-timeout-ms" => {
                args.config.health.probe_timeout =
                    parse_ms(&value("--probe-timeout-ms")?, "--probe-timeout-ms")?;
            }
            "--fail-threshold" => {
                args.config.health.fail_threshold =
                    parse_num(&value("--fail-threshold")?, "--fail-threshold")? as u32;
            }
            "--recover-threshold" => {
                args.config.health.recover_threshold =
                    parse_num(&value("--recover-threshold")?, "--recover-threshold")? as u32;
            }
            "--forward-deadline-ms" => {
                args.config.forward_deadline =
                    parse_ms(&value("--forward-deadline-ms")?, "--forward-deadline-ms")?;
            }
            "--retry-budget" => {
                args.config.retry_budget =
                    parse_num(&value("--retry-budget")?, "--retry-budget")? as u32;
            }
            "--retry-backoff-ms" => {
                args.config.retry_backoff =
                    parse_ms(&value("--retry-backoff-ms")?, "--retry-backoff-ms")?;
            }
            "--edge-cache" => {
                // 0 is meaningful: disables the edge LRU entirely.
                let text = value("--edge-cache")?;
                args.config.edge_cache = text.parse::<usize>().map_err(|_| {
                    format!("--edge-cache needs a non-negative integer, got `{text}`")
                })?;
            }
            "--seed" => {
                let text = value("--seed")?;
                args.config.seed = text
                    .parse::<u64>()
                    .map_err(|_| format!("--seed needs a non-negative integer, got `{text}`"))?;
            }
            "--trace" => args.trace = Some(PathBuf::from(value("--trace")?)),
            "--help" | "-h" => return Err(USAGE.to_owned()),
            other => return Err(format!("unknown flag `{other}`\n{USAGE}")),
        }
    }
    if args.config.backends.is_empty() {
        return Err(format!("at least one --backend is required\n{USAGE}"));
    }
    Ok(args)
}

fn parse_num(text: &str, flag: &str) -> Result<usize, String> {
    text.parse::<usize>()
        .ok()
        .filter(|n| *n > 0)
        .ok_or_else(|| format!("{flag} needs a positive integer, got `{text}`"))
}

fn parse_ms(text: &str, flag: &str) -> Result<Duration, String> {
    Ok(Duration::from_millis(parse_num(text, flag)? as u64))
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(message) => {
            eprintln!("{message}");
            return ExitCode::FAILURE;
        }
    };
    let obs = match &args.trace {
        None => ObsSink::disabled(),
        Some(path) => match JsonlRecorder::create(path) {
            Ok(recorder) => ObsSink::attach(recorder).0,
            Err(err) => {
                eprintln!("ra-relay: cannot create trace file {}: {err}", path.display());
                return ExitCode::FAILURE;
            }
        },
    };
    let backends = args.config.backends.clone();
    let relay = match Relay::new(args.config, obs) {
        Ok(relay) => relay,
        Err(err) => {
            eprintln!("ra-relay: bad cluster config: {err}");
            return ExitCode::FAILURE;
        }
    };
    signals::install();
    let server = match RelayServer::bind(args.addr.as_str(), relay) {
        Ok(server) => server,
        Err(err) => {
            eprintln!("ra-relay: cannot bind {}: {err}", args.addr);
            return ExitCode::FAILURE;
        }
    };
    let handle = match server.spawn() {
        Ok(handle) => handle,
        Err(err) => {
            eprintln!("ra-relay: cannot start relay loops: {err}");
            return ExitCode::FAILURE;
        }
    };
    // Flushed immediately: launch scripts block on this line.
    println!("listening on {}", handle.addr());
    use std::io::Write as _;
    let _ = std::io::stdout().flush();
    eprintln!(
        "ra-relay: fronting {} backend(s): {}",
        backends.len(),
        backends.join(", ")
    );
    while !signals::requested() {
        std::thread::sleep(Duration::from_millis(50));
    }
    eprintln!("ra-relay: shutdown signal received, stopping probe and accept loops");
    handle.stop();
    ExitCode::SUCCESS
}
