//! Crash-safe framing and the write-ahead job journal.
//!
//! # Frame format
//!
//! Both durability logs — the [`ResultStore`](crate::ResultStore) spill
//! and the job journal — share one record framing, designed so a reader
//! can always tell a *complete, intact* record from a torn or corrupt
//! tail:
//!
//! ```text
//! <len-hex> SP <fnv1a-16hex> SP <payload bytes> LF
//! ```
//!
//! * `len-hex` — payload length in bytes, lower-case hex, no padding;
//! * `fnv1a-16hex` — FNV-1a 64-bit checksum of the payload, zero-padded
//!   to 16 hex digits (the same hash that content-addresses job specs,
//!   so the whole durability layer has exactly one hash function);
//! * `payload` — one JSON object, newline-free by construction.
//!
//! Recovery ([`read_frames`]) walks the file front to back and stops at
//! the *first* frame that is truncated, malformed, or fails its
//! checksum; everything before that point is trusted, everything after
//! is reported as `dropped_tail_bytes`. A clean kill -9 tears at most
//! the buffered tail, which shows up as truncation
//! (`dropped_tail_bytes > 0`, `checksum_errors == 0`); flipped bits in
//! the middle of the file show up as `checksum_errors > 0`. The
//! workspace torn-write proptest drives both.
//!
//! # The journal
//!
//! [`Journal`] is the write-ahead log of the scheduler's admissions:
//! every fresh job appends an `admit` record *before* any worker can
//! pick it up, and every terminal outcome appends a `settle` record.
//! On restart, [`replay`] folds the two streams: admits without a
//! matching settle are the jobs the previous process accepted but never
//! finished, and the service re-enqueues them (unless the warmed result
//! store already has their result, which means only the settle record
//! was lost). [`compact`] then rewrites the journal to just those
//! unfinished admits, so the file stays proportional to outstanding
//! work rather than to service uptime.

use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::{self, BufWriter, Write};
use std::path::Path;
use std::sync::Mutex;

use ra_bench::{json_object, JsonField};

use crate::json::Json;
use crate::scheduler::Priority;
use crate::spec::{fnv1a, JobKey};

/// What a recovery pass over one framed log found.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Intact records recovered before the first bad frame.
    pub recovered_records: u64,
    /// Bytes from the first bad frame to end-of-file, all ignored.
    pub dropped_tail_bytes: u64,
    /// Complete-looking frames whose checksum did not match (0 for a
    /// cleanly truncated tail — the benign kill -9 signature).
    pub checksum_errors: u64,
}

impl RecoveryReport {
    /// Folds another log's report into this one (spill + journal).
    pub fn absorb(&mut self, other: RecoveryReport) {
        self.recovered_records += other.recovered_records;
        self.dropped_tail_bytes += other.dropped_tail_bytes;
        self.checksum_errors += other.checksum_errors;
    }
}

/// Renders one payload as a checksummed frame (including the trailing
/// newline). `payload` must not contain `\n` — the JSON writers used by
/// the service never emit one.
pub fn frame(payload: &str) -> String {
    format!(
        "{:x} {:016x} {payload}\n",
        payload.len(),
        fnv1a(payload.as_bytes())
    )
}

/// Walks `bytes` front to back, returning every intact payload and a
/// report of where (and why) reading stopped. Never panics, whatever
/// the input: torn, bit-flipped, and non-UTF-8 tails all degrade to a
/// truncated prefix plus an accurate `dropped_tail_bytes`.
pub fn read_frames(bytes: &[u8]) -> (Vec<String>, RecoveryReport) {
    let mut records = Vec::new();
    let mut report = RecoveryReport::default();
    let mut pos = 0usize;
    while pos < bytes.len() {
        let Some(parsed) = parse_frame(&bytes[pos..]) else {
            break;
        };
        match parsed {
            Frame::Ok { payload, advance } => {
                records.push(payload);
                report.recovered_records += 1;
                pos += advance;
            }
            Frame::BadChecksum => {
                report.checksum_errors += 1;
                break;
            }
        }
    }
    report.dropped_tail_bytes = (bytes.len() - pos) as u64;
    (records, report)
}

enum Frame {
    Ok { payload: String, advance: usize },
    BadChecksum,
}

/// Writers emit lower-case hex only; rejecting the upper-case aliases
/// keeps the header canonical, so any single-bit flip in a header byte
/// invalidates the frame rather than silently parsing to the same value
/// (`from_str_radix` alone would accept `A` for `a`).
fn is_canonical_hex(text: &str) -> bool {
    text.bytes().all(|b| matches!(b, b'0'..=b'9' | b'a'..=b'f'))
}

/// Parses one frame at the start of `bytes`. `None` for anything that
/// is not a complete, well-formed frame header + body (truncation or
/// header corruption); `Frame::BadChecksum` when the frame is complete
/// but its payload hash does not match.
fn parse_frame(bytes: &[u8]) -> Option<Frame> {
    // Header: "<len-hex> <hash-16hex> ". Bound the length field so a
    // corrupt header cannot claim a multi-exabyte payload.
    let len_end = bytes.iter().take(9).position(|&b| b == b' ')?;
    if len_end == 0 {
        return None;
    }
    let len_text = std::str::from_utf8(&bytes[..len_end]).ok()?;
    if !is_canonical_hex(len_text) {
        return None;
    }
    let len = usize::from_str_radix(len_text, 16).ok()?;
    let hash_start = len_end + 1;
    let hash_end = hash_start + 16;
    if bytes.len() < hash_end + 1 || bytes[hash_end] != b' ' {
        return None;
    }
    let hash_text = std::str::from_utf8(&bytes[hash_start..hash_end]).ok()?;
    if !is_canonical_hex(hash_text) {
        return None;
    }
    let hash = u64::from_str_radix(hash_text, 16).ok()?;
    let body_start = hash_end + 1;
    let body_end = body_start.checked_add(len)?;
    if bytes.len() < body_end + 1 || bytes[body_end] != b'\n' {
        return None;
    }
    let body = &bytes[body_start..body_end];
    if fnv1a(body) != hash {
        return Some(Frame::BadChecksum);
    }
    let payload = std::str::from_utf8(body).ok()?.to_owned();
    Some(Frame::Ok {
        payload,
        advance: body_end + 1,
    })
}

/// A buffered, frame-at-a-time appender with periodic fsync — the
/// shared writer behind both the journal and the spill log.
pub(crate) struct FrameWriter {
    out: BufWriter<File>,
    /// Records appended since the last fsync.
    since_sync: u64,
    /// fsync after every N records (0 = flush only, let the OS decide).
    fsync_every: u64,
}

impl FrameWriter {
    pub(crate) fn append_to(path: &Path, fsync_every: u64) -> io::Result<FrameWriter> {
        truncate_torn_tail(path)?;
        let file = OpenOptions::new().create(true).append(true).open(path)?;
        Ok(FrameWriter {
            out: BufWriter::new(file),
            since_sync: 0,
            fsync_every,
        })
    }

    /// Frames and appends one payload. Each record is flushed to the OS
    /// so a kill -9 loses at most the write in progress; fsync is
    /// amortized over `fsync_every` records.
    pub(crate) fn append(&mut self, payload: &str) -> io::Result<()> {
        self.out.write_all(frame(payload).as_bytes())?;
        self.out.flush()?;
        self.since_sync += 1;
        if self.fsync_every > 0 && self.since_sync >= self.fsync_every {
            self.sync()?;
        }
        Ok(())
    }

    pub(crate) fn sync(&mut self) -> io::Result<()> {
        self.out.flush()?;
        self.out.get_ref().sync_data()?;
        self.since_sync = 0;
        Ok(())
    }
}

/// Drops any torn or corrupt tail before a log is reopened for append.
/// Without this, a record appended after a tear is glued onto the
/// partial frame and the *next* replay discards it along with the tear —
/// a completed result silently lost (the torn-tail regression test).
fn truncate_torn_tail(path: &Path) -> io::Result<()> {
    let bytes = match std::fs::read(path) {
        Ok(bytes) => bytes,
        Err(err) if err.kind() == io::ErrorKind::NotFound => return Ok(()),
        Err(err) => return Err(err),
    };
    let (_, report) = read_frames(&bytes);
    if report.dropped_tail_bytes == 0 {
        return Ok(());
    }
    let keep = bytes.len() as u64 - report.dropped_tail_bytes;
    let file = OpenOptions::new().write(true).open(path)?;
    file.set_len(keep)?;
    file.sync_data()?;
    Ok(())
}

/// A journaled-but-unfinished job: admitted by a previous process, never
/// settled, and (after the spill replay) not memoized either — it must
/// run again.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnfinishedJob {
    /// Content hash of the canonical spec.
    pub key: JobKey,
    /// Canonical spec text, re-parseable into a `JobSpec`.
    pub spec: String,
    /// The priority it was admitted at.
    pub priority: Priority,
}

/// What [`replay`] recovered from a journal file.
#[derive(Debug, Clone, Default)]
pub struct JournalRecovery {
    /// Admitted jobs with no settle record, in admission order.
    pub unfinished: Vec<UnfinishedJob>,
    /// Frame-level accounting for the pass.
    pub report: RecoveryReport,
}

/// The write-ahead job journal: checksummed `admit` / `settle` records.
///
/// Append failures are swallowed after the first (the journal is a
/// durability aid; a full disk must not take the service down), but the
/// first error is remembered and surfaced by [`Journal::sync`].
pub struct Journal {
    writer: Mutex<JournalWriter>,
    path: std::path::PathBuf,
    fsync_every: u64,
}

struct JournalWriter {
    frames: FrameWriter,
    /// First append error, reported once by `sync`.
    error: Option<io::Error>,
    /// Current journal file length in bytes (frames appended since open
    /// plus whatever was already there), kept so the scheduler can
    /// trigger compaction without a stat per settle.
    bytes: u64,
    /// Completed runtime compactions.
    compactions: u64,
}

impl Journal {
    /// Opens (creating or appending to) the journal at `path`.
    ///
    /// # Errors
    ///
    /// Propagates the underlying open failure.
    pub fn open(path: &Path, fsync_every: u64) -> io::Result<Journal> {
        let frames = FrameWriter::append_to(path, fsync_every)?;
        let bytes = std::fs::metadata(path).map(|m| m.len()).unwrap_or(0);
        Ok(Journal {
            writer: Mutex::new(JournalWriter {
                frames,
                error: None,
                bytes,
                compactions: 0,
            }),
            path: path.to_path_buf(),
            fsync_every,
        })
    }

    fn append(&self, payload: &str) {
        let mut writer = self.writer.lock().unwrap_or_else(|e| e.into_inner());
        if writer.error.is_some() {
            return;
        }
        match writer.frames.append(payload) {
            Ok(()) => writer.bytes += frame(payload).len() as u64,
            Err(err) => writer.error = Some(err),
        }
    }

    /// Current journal file length in bytes, as tracked by the writer.
    pub fn len_bytes(&self) -> u64 {
        self.writer.lock().unwrap_or_else(|e| e.into_inner()).bytes
    }

    /// Completed runtime compactions since open.
    pub fn compactions(&self) -> u64 {
        let writer = self.writer.lock().unwrap_or_else(|e| e.into_inner());
        writer.compactions
    }

    /// Rewrites the journal in place to exactly `unfinished`, with the
    /// same tmp + fsync + rename discipline as the startup [`compact`].
    /// The writer lock is held across the rewrite, so no append can
    /// interleave with the rename; the caller must pass an `unfinished`
    /// set consistent with everything appended so far (i.e. call this
    /// under the same lock that orders admits and settles).
    ///
    /// # Errors
    ///
    /// Propagates write/rename/reopen failures; on error the journal
    /// keeps appending to whichever file the rename left behind.
    pub fn compact_live(&self, unfinished: &[UnfinishedJob]) -> io::Result<()> {
        let mut writer = self.writer.lock().unwrap_or_else(|e| e.into_inner());
        // Flush buffered frames so the pre-compaction file is complete
        // (a crash mid-compaction must leave a fully-replayable log).
        writer.frames.sync()?;
        compact(&self.path, unfinished)?;
        writer.frames = FrameWriter::append_to(&self.path, self.fsync_every)?;
        writer.bytes = std::fs::metadata(&self.path).map(|m| m.len()).unwrap_or(0);
        writer.compactions += 1;
        Ok(())
    }

    /// Records an admission. Must be called *before* the job becomes
    /// visible to any worker (the write-ahead contract).
    pub fn admit(&self, key: JobKey, spec: &str, priority: Priority) {
        self.append(&json_object(&[
            ("rec", JsonField::Str("admit".into())),
            ("job", JsonField::Str(key.to_string())),
            ("spec", JsonField::Str(spec.to_owned())),
            ("priority", JsonField::Str(priority.to_string())),
        ]));
    }

    /// Records a terminal outcome for a previously admitted job.
    pub fn settle(&self, key: JobKey, outcome: &str) {
        self.append(&json_object(&[
            ("rec", JsonField::Str("settle".into())),
            ("job", JsonField::Str(key.to_string())),
            ("outcome", JsonField::Str(outcome.to_owned())),
        ]));
    }

    /// Flushes and fsyncs, surfacing any deferred append error once.
    ///
    /// # Errors
    ///
    /// The first deferred append failure, or the sync failure itself.
    pub fn sync(&self) -> io::Result<()> {
        let mut writer = self.writer.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(err) = writer.error.take() {
            return Err(err);
        }
        writer.frames.sync()
    }
}

/// Replays the journal at `path`, tolerating a torn or corrupt tail. A
/// missing file is an empty journal, not an error.
///
/// # Errors
///
/// Propagates read failures other than `NotFound`.
pub fn replay(path: &Path) -> io::Result<JournalRecovery> {
    let bytes = match std::fs::read(path) {
        Ok(bytes) => bytes,
        Err(err) if err.kind() == io::ErrorKind::NotFound => Vec::new(),
        Err(err) => return Err(err),
    };
    let (records, report) = read_frames(&bytes);
    // Fold admits against settles, preserving admission order. The same
    // key can legitimately cycle admit -> settle -> admit (re-admitted
    // after a cache eviction), so a settle clears only the pending slot.
    let mut order: Vec<Option<UnfinishedJob>> = Vec::new();
    let mut pending: HashMap<u64, usize> = HashMap::new();
    for record in &records {
        let Ok(json) = Json::parse(record) else {
            continue; // checksum-valid but semantically foreign: skip
        };
        let job = json
            .get("job")
            .and_then(Json::as_str)
            .and_then(|s| s.parse::<JobKey>().ok());
        let Some(key) = job else { continue };
        match json.get("rec").and_then(Json::as_str) {
            Some("admit") => {
                let Some(spec) = json.get("spec").and_then(Json::as_str) else {
                    continue;
                };
                let priority = json
                    .get("priority")
                    .and_then(Json::as_str)
                    .and_then(|p| p.parse().ok())
                    .unwrap_or_default();
                if let Some(&slot) = pending.get(&key.0) {
                    // Duplicate admit without a settle: refresh in place.
                    order[slot] = Some(UnfinishedJob {
                        key,
                        spec: spec.to_owned(),
                        priority,
                    });
                } else {
                    pending.insert(key.0, order.len());
                    order.push(Some(UnfinishedJob {
                        key,
                        spec: spec.to_owned(),
                        priority,
                    }));
                }
            }
            Some("settle") => {
                if let Some(slot) = pending.remove(&key.0) {
                    order[slot] = None;
                }
            }
            _ => {}
        }
    }
    Ok(JournalRecovery {
        unfinished: order.into_iter().flatten().collect(),
        report,
    })
}

/// Rewrites the journal to exactly `unfinished` admit records, via a
/// temp file + atomic rename so a crash mid-compaction leaves either
/// the old journal or the new one, never a mix.
///
/// # Errors
///
/// Propagates write/rename failures.
pub fn compact(path: &Path, unfinished: &[UnfinishedJob]) -> io::Result<()> {
    let tmp = path.with_extension("compact.tmp");
    {
        let mut out = BufWriter::new(File::create(&tmp)?);
        for job in unfinished {
            let payload = json_object(&[
                ("rec", JsonField::Str("admit".into())),
                ("job", JsonField::Str(job.key.to_string())),
                ("spec", JsonField::Str(job.spec.clone())),
                ("priority", JsonField::Str(job.priority.to_string())),
            ]);
            out.write_all(frame(&payload).as_bytes())?;
        }
        out.flush()?;
        out.get_ref().sync_data()?;
    }
    std::fs::rename(&tmp, path)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(tag: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!(
            "ra-serve-journal-{tag}-{}-{:?}.jsonl",
            std::process::id(),
            std::thread::current().id()
        ))
    }

    #[test]
    fn frames_round_trip_and_stop_at_a_torn_tail() {
        let payloads = ["{\"a\":1}", "{\"b\":\"two\"}", "{\"c\":[1,2,3]}"];
        let mut file = String::new();
        for p in &payloads {
            file.push_str(&frame(p));
        }
        let (records, report) = read_frames(file.as_bytes());
        assert_eq!(records, payloads);
        assert_eq!(report.recovered_records, 3);
        assert_eq!(report.dropped_tail_bytes, 0);
        assert_eq!(report.checksum_errors, 0);

        // Truncate mid-record: the intact prefix survives, the tail is
        // counted, and no checksum error is charged (benign tear).
        let cut = file.len() - 5;
        let (records, report) = read_frames(&file.as_bytes()[..cut]);
        assert_eq!(records, &payloads[..2]);
        assert_eq!(report.recovered_records, 2);
        assert!(report.dropped_tail_bytes > 0);
        assert_eq!(report.checksum_errors, 0);
    }

    #[test]
    fn a_flipped_bit_is_a_checksum_error_not_a_bad_record() {
        let mut file = frame("{\"a\":1}").into_bytes();
        file.extend_from_slice(frame("{\"b\":2}").as_bytes());
        // Flip a bit inside the second record's payload.
        let second_start = frame("{\"a\":1}").len();
        let target = second_start + frame("{\"b\":2}").len() - 3;
        file[target] ^= 0x01;
        let (records, report) = read_frames(&file);
        assert_eq!(records, ["{\"a\":1}"]);
        assert_eq!(report.checksum_errors, 1);
        assert_eq!(
            report.dropped_tail_bytes as usize,
            file.len() - second_start
        );
    }

    #[test]
    fn garbage_input_never_panics_and_recovers_nothing() {
        for bytes in [
            &b"not a frame at all"[..],
            &b"ffffffffffffffff "[..],
            &b"5 0123456789abcdef"[..],
            &[0xFF, 0xFE, 0x00, 0x20, 0x20][..],
            &b""[..],
        ] {
            let (records, report) = read_frames(bytes);
            assert!(records.is_empty());
            assert_eq!(report.dropped_tail_bytes as usize, bytes.len());
        }
    }

    #[test]
    fn journal_replay_resumes_only_unsettled_admits() {
        let path = temp_path("replay");
        let _ = std::fs::remove_file(&path);
        {
            let journal = Journal::open(&path, 0).unwrap();
            journal.admit(JobKey(1), "spec one", Priority::High);
            journal.admit(JobKey(2), "spec two", Priority::Low);
            journal.settle(JobKey(1), "completed");
            journal.admit(JobKey(3), "spec three", Priority::Normal);
            journal.sync().unwrap();
        }
        let recovery = replay(&path).unwrap();
        assert_eq!(recovery.report.recovered_records, 4);
        assert_eq!(recovery.report.checksum_errors, 0);
        let keys: Vec<u64> = recovery.unfinished.iter().map(|j| j.key.0).collect();
        assert_eq!(keys, vec![2, 3], "settled jobs are not resumed");
        assert_eq!(recovery.unfinished[0].spec, "spec two");
        assert_eq!(recovery.unfinished[0].priority, Priority::Low);

        // Compaction keeps exactly the unfinished set.
        compact(&path, &recovery.unfinished).unwrap();
        let again = replay(&path).unwrap();
        assert_eq!(again.unfinished, recovery.unfinished);
        assert_eq!(again.report.recovered_records, 2);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn replay_of_a_missing_journal_is_empty() {
        let recovery = replay(Path::new("/nonexistent/ra-serve/journal")).unwrap();
        assert!(recovery.unfinished.is_empty());
        assert_eq!(recovery.report, RecoveryReport::default());
    }

    #[test]
    fn appending_after_a_torn_tail_truncates_the_tear_first() {
        let path = temp_path("torn-append");
        let _ = std::fs::remove_file(&path);
        {
            let journal = Journal::open(&path, 0).unwrap();
            journal.admit(JobKey(1), "spec one", Priority::Normal);
            journal.admit(JobKey(2), "spec two", Priority::Normal);
            journal.sync().unwrap();
        }
        // kill -9 tears the tail of record 2.
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 7]).unwrap();
        // Reopen-for-append must not glue record 3 onto the tear.
        {
            let journal = Journal::open(&path, 0).unwrap();
            journal.admit(JobKey(3), "spec three", Priority::High);
            journal.sync().unwrap();
        }
        let recovery = replay(&path).unwrap();
        assert_eq!(recovery.report.checksum_errors, 0);
        assert_eq!(recovery.report.dropped_tail_bytes, 0);
        let keys: Vec<u64> = recovery.unfinished.iter().map(|j| j.key.0).collect();
        assert_eq!(keys, vec![1, 3], "the record after the tear must survive");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn compact_live_bounds_the_file_and_keeps_appending() {
        let path = temp_path("compact-live");
        let _ = std::fs::remove_file(&path);
        let journal = Journal::open(&path, 0).unwrap();
        for i in 0..32u64 {
            journal.admit(JobKey(i), &format!("spec {i}"), Priority::Normal);
            journal.settle(JobKey(i), "completed");
        }
        let unfinished = vec![UnfinishedJob {
            key: JobKey(99),
            spec: "spec ninety-nine".to_owned(),
            priority: Priority::High,
        }];
        journal.admit(JobKey(99), "spec ninety-nine", Priority::High);
        let before = journal.len_bytes();
        journal.compact_live(&unfinished).unwrap();
        assert!(journal.len_bytes() < before);
        assert_eq!(journal.compactions(), 1);
        // The writer keeps working against the compacted file.
        journal.settle(JobKey(99), "completed");
        journal.sync().unwrap();
        let recovery = replay(&path).unwrap();
        assert!(recovery.unfinished.is_empty());
        assert_eq!(recovery.report.checksum_errors, 0);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn a_settle_then_readmit_cycle_stays_pending() {
        let path = temp_path("cycle");
        let _ = std::fs::remove_file(&path);
        {
            let journal = Journal::open(&path, 0).unwrap();
            journal.admit(JobKey(7), "spec", Priority::Normal);
            journal.settle(JobKey(7), "completed");
            journal.admit(JobKey(7), "spec", Priority::High);
            journal.sync().unwrap();
        }
        let recovery = replay(&path).unwrap();
        assert_eq!(recovery.unfinished.len(), 1);
        assert_eq!(recovery.unfinished[0].priority, Priority::High);
        let _ = std::fs::remove_file(&path);
    }
}
