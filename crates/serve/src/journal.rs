//! The write-ahead job journal.
//!
//! # Frame format
//!
//! Both durability logs — the [`ResultStore`](crate::ResultStore) spill
//! and the job journal — share the checksummed record framing in
//! [`crate::frame`] (also the binary wire codec's envelope), designed so
//! a reader can always tell a *complete, intact* record from a torn or
//! corrupt tail. [`frame`], [`read_frames`], and [`RecoveryReport`] are
//! re-exported here for the recovery-facing callers that grew up when
//! the framing lived in this module.
//!
//! # The journal
//!
//! [`Journal`] is the write-ahead log of the scheduler's admissions:
//! every fresh job appends an `admit` record *before* any worker can
//! pick it up, and every terminal outcome appends a `settle` record.
//! On restart, [`replay`] folds the two streams: admits without a
//! matching settle are the jobs the previous process accepted but never
//! finished, and the service re-enqueues them (unless the warmed result
//! store already has their result, which means only the settle record
//! was lost). [`compact`] then rewrites the journal to just those
//! unfinished admits, so the file stays proportional to outstanding
//! work rather than to service uptime.

use std::collections::HashMap;
use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::Path;
use std::sync::Mutex;

use ra_bench::{json_object, JsonField};

pub use crate::frame::{frame, read_frames, RecoveryReport};
pub(crate) use crate::frame::FrameWriter;

use crate::json::Json;
use crate::scheduler::Priority;
use crate::spec::JobKey;

/// A journaled-but-unfinished job: admitted by a previous process, never
/// settled, and (after the spill replay) not memoized either — it must
/// run again.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnfinishedJob {
    /// Content hash of the canonical spec.
    pub key: JobKey,
    /// Canonical spec text, re-parseable into a `JobSpec`.
    pub spec: String,
    /// The priority it was admitted at.
    pub priority: Priority,
}

/// A journaled intent to re-run a degraded answer at full fidelity: the
/// service published a brownout answer and owes the client's cache an
/// upgrade. Cleared by an `upgraded` record when the full run lands.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UpgradeIntent {
    /// Content hash of the canonical spec.
    pub key: JobKey,
    /// Canonical spec text, re-parseable into a `JobSpec`.
    pub spec: String,
}

/// What [`replay`] recovered from a journal file.
#[derive(Debug, Clone, Default)]
pub struct JournalRecovery {
    /// Admitted jobs with no settle record, in admission order.
    pub unfinished: Vec<UnfinishedJob>,
    /// Degraded answers whose full-fidelity upgrade never landed, in
    /// intent order.
    pub pending_upgrades: Vec<UpgradeIntent>,
    /// Frame-level accounting for the pass.
    pub report: RecoveryReport,
}

/// The write-ahead job journal: checksummed `admit` / `settle` records.
///
/// Append failures are swallowed after the first (the journal is a
/// durability aid; a full disk must not take the service down), but the
/// first error is remembered and surfaced by [`Journal::sync`].
pub struct Journal {
    writer: Mutex<JournalWriter>,
    path: std::path::PathBuf,
    fsync_every: u64,
}

struct JournalWriter {
    frames: FrameWriter,
    /// First append error, reported once by `sync`.
    error: Option<io::Error>,
    /// Current journal file length in bytes (frames appended since open
    /// plus whatever was already there), kept so the scheduler can
    /// trigger compaction without a stat per settle.
    bytes: u64,
    /// Completed runtime compactions.
    compactions: u64,
}

impl Journal {
    /// Opens (creating or appending to) the journal at `path`.
    ///
    /// # Errors
    ///
    /// Propagates the underlying open failure.
    pub fn open(path: &Path, fsync_every: u64) -> io::Result<Journal> {
        let frames = FrameWriter::append_to(path, fsync_every)?;
        let bytes = std::fs::metadata(path).map(|m| m.len()).unwrap_or(0);
        Ok(Journal {
            writer: Mutex::new(JournalWriter {
                frames,
                error: None,
                bytes,
                compactions: 0,
            }),
            path: path.to_path_buf(),
            fsync_every,
        })
    }

    fn append(&self, payload: &str) {
        let mut writer = self.writer.lock().unwrap_or_else(|e| e.into_inner());
        if writer.error.is_some() {
            return;
        }
        match writer.frames.append(payload) {
            Ok(()) => writer.bytes += frame(payload).len() as u64,
            Err(err) => writer.error = Some(err),
        }
    }

    /// Current journal file length in bytes, as tracked by the writer.
    pub fn len_bytes(&self) -> u64 {
        self.writer.lock().unwrap_or_else(|e| e.into_inner()).bytes
    }

    /// Completed runtime compactions since open.
    pub fn compactions(&self) -> u64 {
        let writer = self.writer.lock().unwrap_or_else(|e| e.into_inner());
        writer.compactions
    }

    /// Rewrites the journal in place to exactly `unfinished` plus
    /// `upgrades`, with the same tmp + fsync + rename discipline as the
    /// startup [`compact`]. The writer lock is held across the rewrite,
    /// so no append can interleave with the rename; the caller must pass
    /// sets consistent with everything appended so far (i.e. call this
    /// under the same lock that orders admits and settles).
    ///
    /// # Errors
    ///
    /// Propagates write/rename/reopen failures; on error the journal
    /// keeps appending to whichever file the rename left behind.
    pub fn compact_live(
        &self,
        unfinished: &[UnfinishedJob],
        upgrades: &[UpgradeIntent],
    ) -> io::Result<()> {
        let mut writer = self.writer.lock().unwrap_or_else(|e| e.into_inner());
        // Flush buffered frames so the pre-compaction file is complete
        // (a crash mid-compaction must leave a fully-replayable log).
        writer.frames.sync()?;
        compact(&self.path, unfinished, upgrades)?;
        writer.frames = FrameWriter::append_to(&self.path, self.fsync_every)?;
        writer.bytes = std::fs::metadata(&self.path).map(|m| m.len()).unwrap_or(0);
        writer.compactions += 1;
        Ok(())
    }

    /// Records an admission. Must be called *before* the job becomes
    /// visible to any worker (the write-ahead contract).
    pub fn admit(&self, key: JobKey, spec: &str, priority: Priority) {
        self.append(&json_object(&[
            ("rec", JsonField::Str("admit".into())),
            ("job", JsonField::Str(key.to_string())),
            ("spec", JsonField::Str(spec.to_owned())),
            ("priority", JsonField::Str(priority.to_string())),
        ]));
    }

    /// Records a terminal outcome for a previously admitted job.
    pub fn settle(&self, key: JobKey, outcome: &str) {
        self.append(&json_object(&[
            ("rec", JsonField::Str("settle".into())),
            ("job", JsonField::Str(key.to_string())),
            ("outcome", JsonField::Str(outcome.to_owned())),
        ]));
    }

    /// Records an upgrade intent: a degraded answer was published for
    /// `key` and a full-fidelity re-run is owed. Written alongside the
    /// settle so a crash cannot lose the debt.
    pub fn upgrade(&self, key: JobKey, spec: &str) {
        self.append(&json_object(&[
            ("rec", JsonField::Str("upgrade".into())),
            ("job", JsonField::Str(key.to_string())),
            ("spec", JsonField::Str(spec.to_owned())),
        ]));
    }

    /// Records that the full-fidelity re-run for `key` landed (or that
    /// the intent became moot), clearing the pending upgrade.
    pub fn upgraded(&self, key: JobKey) {
        self.append(&json_object(&[
            ("rec", JsonField::Str("upgraded".into())),
            ("job", JsonField::Str(key.to_string())),
        ]));
    }

    /// Flushes and fsyncs, surfacing any deferred append error once.
    ///
    /// # Errors
    ///
    /// The first deferred append failure, or the sync failure itself.
    pub fn sync(&self) -> io::Result<()> {
        let mut writer = self.writer.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(err) = writer.error.take() {
            return Err(err);
        }
        writer.frames.sync()
    }
}

/// Replays the journal at `path`, tolerating a torn or corrupt tail. A
/// missing file is an empty journal, not an error.
///
/// # Errors
///
/// Propagates read failures other than `NotFound`.
pub fn replay(path: &Path) -> io::Result<JournalRecovery> {
    let bytes = match std::fs::read(path) {
        Ok(bytes) => bytes,
        Err(err) if err.kind() == io::ErrorKind::NotFound => Vec::new(),
        Err(err) => return Err(err),
    };
    let (records, report) = read_frames(&bytes);
    // Fold admits against settles, preserving admission order. The same
    // key can legitimately cycle admit -> settle -> admit (re-admitted
    // after a cache eviction), so a settle clears only the pending slot.
    let mut order: Vec<Option<UnfinishedJob>> = Vec::new();
    let mut pending: HashMap<u64, usize> = HashMap::new();
    // Upgrade intents fold independently of admits/settles: a `settle`
    // never clears an upgrade debt, only an `upgraded` record does.
    let mut upgrade_order: Vec<Option<UpgradeIntent>> = Vec::new();
    let mut upgrades_pending: HashMap<u64, usize> = HashMap::new();
    for record in &records {
        let Ok(json) = Json::parse(record) else {
            continue; // checksum-valid but semantically foreign: skip
        };
        let job = json
            .get("job")
            .and_then(Json::as_str)
            .and_then(|s| s.parse::<JobKey>().ok());
        let Some(key) = job else { continue };
        match json.get("rec").and_then(Json::as_str) {
            Some("admit") => {
                let Some(spec) = json.get("spec").and_then(Json::as_str) else {
                    continue;
                };
                let priority = json
                    .get("priority")
                    .and_then(Json::as_str)
                    .and_then(|p| p.parse().ok())
                    .unwrap_or_default();
                if let Some(&slot) = pending.get(&key.0) {
                    // Duplicate admit without a settle: refresh in place.
                    order[slot] = Some(UnfinishedJob {
                        key,
                        spec: spec.to_owned(),
                        priority,
                    });
                } else {
                    pending.insert(key.0, order.len());
                    order.push(Some(UnfinishedJob {
                        key,
                        spec: spec.to_owned(),
                        priority,
                    }));
                }
            }
            Some("settle") => {
                if let Some(slot) = pending.remove(&key.0) {
                    order[slot] = None;
                }
            }
            Some("upgrade") => {
                let Some(spec) = json.get("spec").and_then(Json::as_str) else {
                    continue;
                };
                let intent = UpgradeIntent {
                    key,
                    spec: spec.to_owned(),
                };
                if let Some(&slot) = upgrades_pending.get(&key.0) {
                    upgrade_order[slot] = Some(intent);
                } else {
                    upgrades_pending.insert(key.0, upgrade_order.len());
                    upgrade_order.push(Some(intent));
                }
            }
            Some("upgraded") => {
                if let Some(slot) = upgrades_pending.remove(&key.0) {
                    upgrade_order[slot] = None;
                }
            }
            _ => {}
        }
    }
    Ok(JournalRecovery {
        unfinished: order.into_iter().flatten().collect(),
        pending_upgrades: upgrade_order.into_iter().flatten().collect(),
        report,
    })
}

/// Rewrites the journal to exactly `unfinished` admit records plus
/// `upgrades` upgrade-intent records, via a temp file + atomic rename so
/// a crash mid-compaction leaves either the old journal or the new one,
/// never a mix.
///
/// # Errors
///
/// Propagates write/rename failures.
pub fn compact(
    path: &Path,
    unfinished: &[UnfinishedJob],
    upgrades: &[UpgradeIntent],
) -> io::Result<()> {
    let tmp = path.with_extension("compact.tmp");
    {
        let mut out = BufWriter::new(File::create(&tmp)?);
        for job in unfinished {
            let payload = json_object(&[
                ("rec", JsonField::Str("admit".into())),
                ("job", JsonField::Str(job.key.to_string())),
                ("spec", JsonField::Str(job.spec.clone())),
                ("priority", JsonField::Str(job.priority.to_string())),
            ]);
            out.write_all(frame(&payload).as_bytes())?;
        }
        for intent in upgrades {
            let payload = json_object(&[
                ("rec", JsonField::Str("upgrade".into())),
                ("job", JsonField::Str(intent.key.to_string())),
                ("spec", JsonField::Str(intent.spec.clone())),
            ]);
            out.write_all(frame(&payload).as_bytes())?;
        }
        out.flush()?;
        out.get_ref().sync_data()?;
    }
    std::fs::rename(&tmp, path)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(tag: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!(
            "ra-serve-journal-{tag}-{}-{:?}.jsonl",
            std::process::id(),
            std::thread::current().id()
        ))
    }

    #[test]
    fn journal_replay_resumes_only_unsettled_admits() {
        let path = temp_path("replay");
        let _ = std::fs::remove_file(&path);
        {
            let journal = Journal::open(&path, 0).unwrap();
            journal.admit(JobKey(1), "spec one", Priority::High);
            journal.admit(JobKey(2), "spec two", Priority::Low);
            journal.settle(JobKey(1), "completed");
            journal.admit(JobKey(3), "spec three", Priority::Normal);
            journal.sync().unwrap();
        }
        let recovery = replay(&path).unwrap();
        assert_eq!(recovery.report.recovered_records, 4);
        assert_eq!(recovery.report.checksum_errors, 0);
        let keys: Vec<u64> = recovery.unfinished.iter().map(|j| j.key.0).collect();
        assert_eq!(keys, vec![2, 3], "settled jobs are not resumed");
        assert_eq!(recovery.unfinished[0].spec, "spec two");
        assert_eq!(recovery.unfinished[0].priority, Priority::Low);

        // Compaction keeps exactly the unfinished set.
        compact(&path, &recovery.unfinished, &[]).unwrap();
        let again = replay(&path).unwrap();
        assert_eq!(again.unfinished, recovery.unfinished);
        assert_eq!(again.report.recovered_records, 2);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn upgrade_intents_replay_and_survive_compaction() {
        let path = temp_path("upgrades");
        let _ = std::fs::remove_file(&path);
        {
            let journal = Journal::open(&path, 0).unwrap();
            journal.admit(JobKey(1), "spec one", Priority::Normal);
            // Degraded publish: settle the admit, journal the debt.
            journal.settle(JobKey(1), "degraded");
            journal.upgrade(JobKey(1), "spec one");
            journal.admit(JobKey(2), "spec two", Priority::Normal);
            journal.settle(JobKey(2), "degraded");
            journal.upgrade(JobKey(2), "spec two");
            // Job 2's upgrade lands; job 1's is still owed.
            journal.upgraded(JobKey(2));
            journal.sync().unwrap();
        }
        let recovery = replay(&path).unwrap();
        assert!(recovery.unfinished.is_empty(), "settles clear the admits");
        assert_eq!(
            recovery.pending_upgrades,
            vec![UpgradeIntent {
                key: JobKey(1),
                spec: "spec one".to_owned(),
            }],
            "a settle never clears the upgrade debt; only `upgraded` does"
        );

        // Compaction carries the pending intent forward.
        compact(&path, &recovery.unfinished, &recovery.pending_upgrades).unwrap();
        let again = replay(&path).unwrap();
        assert_eq!(again.pending_upgrades, recovery.pending_upgrades);
        assert_eq!(again.report.recovered_records, 1);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn replay_of_a_missing_journal_is_empty() {
        let recovery = replay(Path::new("/nonexistent/ra-serve/journal")).unwrap();
        assert!(recovery.unfinished.is_empty());
        assert_eq!(recovery.report, RecoveryReport::default());
    }

    #[test]
    fn appending_after_a_torn_tail_truncates_the_tear_first() {
        let path = temp_path("torn-append");
        let _ = std::fs::remove_file(&path);
        {
            let journal = Journal::open(&path, 0).unwrap();
            journal.admit(JobKey(1), "spec one", Priority::Normal);
            journal.admit(JobKey(2), "spec two", Priority::Normal);
            journal.sync().unwrap();
        }
        // kill -9 tears the tail of record 2.
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 7]).unwrap();
        // Reopen-for-append must not glue record 3 onto the tear.
        {
            let journal = Journal::open(&path, 0).unwrap();
            journal.admit(JobKey(3), "spec three", Priority::High);
            journal.sync().unwrap();
        }
        let recovery = replay(&path).unwrap();
        assert_eq!(recovery.report.checksum_errors, 0);
        assert_eq!(recovery.report.dropped_tail_bytes, 0);
        let keys: Vec<u64> = recovery.unfinished.iter().map(|j| j.key.0).collect();
        assert_eq!(keys, vec![1, 3], "the record after the tear must survive");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn compact_live_bounds_the_file_and_keeps_appending() {
        let path = temp_path("compact-live");
        let _ = std::fs::remove_file(&path);
        let journal = Journal::open(&path, 0).unwrap();
        for i in 0..32u64 {
            journal.admit(JobKey(i), &format!("spec {i}"), Priority::Normal);
            journal.settle(JobKey(i), "completed");
        }
        let unfinished = vec![UnfinishedJob {
            key: JobKey(99),
            spec: "spec ninety-nine".to_owned(),
            priority: Priority::High,
        }];
        journal.admit(JobKey(99), "spec ninety-nine", Priority::High);
        let before = journal.len_bytes();
        journal.compact_live(&unfinished, &[]).unwrap();
        assert!(journal.len_bytes() < before);
        assert_eq!(journal.compactions(), 1);
        // The writer keeps working against the compacted file.
        journal.settle(JobKey(99), "completed");
        journal.sync().unwrap();
        let recovery = replay(&path).unwrap();
        assert!(recovery.unfinished.is_empty());
        assert_eq!(recovery.report.checksum_errors, 0);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn a_settle_then_readmit_cycle_stays_pending() {
        let path = temp_path("cycle");
        let _ = std::fs::remove_file(&path);
        {
            let journal = Journal::open(&path, 0).unwrap();
            journal.admit(JobKey(7), "spec", Priority::Normal);
            journal.settle(JobKey(7), "completed");
            journal.admit(JobKey(7), "spec", Priority::High);
            journal.sync().unwrap();
        }
        let recovery = replay(&path).unwrap();
        assert_eq!(recovery.unfinished.len(), 1);
        assert_eq!(recovery.unfinished[0].priority, Priority::High);
        let _ = std::fs::remove_file(&path);
    }
}
