//! The shared checksummed frame format: one implementation behind both
//! the durability logs (journal + spill) and the binary wire codec.
//!
//! # Frame format
//!
//! ```text
//! <len-hex> SP <fnv1a-16hex> SP <payload bytes> LF
//! ```
//!
//! * `len-hex` — payload length in bytes, lower-case hex, no padding;
//! * `fnv1a-16hex` — FNV-1a 64-bit checksum of the payload, zero-padded
//!   to 16 hex digits (the same hash that content-addresses job specs,
//!   so the whole stack has exactly one hash function);
//! * `payload` — arbitrary bytes; the length field delimits the body, so
//!   an embedded LF is legal (binary wire payloads contain them). The
//!   durability logs additionally keep their payloads newline-free UTF-8
//!   JSON, which is what makes them `tail`- and `grep`-able.
//!
//! Two readers share the parser:
//!
//! * [`read_frames`] — the recovery pass over a whole log file. It walks
//!   front to back and stops at the *first* frame that is truncated,
//!   malformed, or fails its checksum; everything before that point is
//!   trusted, everything after is reported as `dropped_tail_bytes`. A
//!   clean kill -9 tears at most the buffered tail, which shows up as
//!   truncation (`dropped_tail_bytes > 0`, `checksum_errors == 0`);
//!   flipped bits in the middle of the file show up as
//!   `checksum_errors > 0`. The workspace torn-write proptest drives
//!   both.
//! * [`step`] — the incremental form for a socket, where "not enough
//!   bytes yet" ([`FrameStep::Incomplete`]) means *keep reading* while
//!   corruption ([`FrameStep::Malformed`] / [`FrameStep::BadChecksum`])
//!   means *hang up*. A file reader cannot tell the two apart (both end
//!   the trustworthy prefix); a stream reader must.

use std::fs::{File, OpenOptions};
use std::io::{self, BufWriter, Write};
use std::path::Path;

use crate::spec::fnv1a;

/// What a recovery pass over one framed log found.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Intact records recovered before the first bad frame.
    pub recovered_records: u64,
    /// Bytes from the first bad frame to end-of-file, all ignored.
    pub dropped_tail_bytes: u64,
    /// Complete-looking frames whose checksum did not match (0 for a
    /// cleanly truncated tail — the benign kill -9 signature).
    pub checksum_errors: u64,
}

impl RecoveryReport {
    /// Folds another log's report into this one (spill + journal).
    pub fn absorb(&mut self, other: RecoveryReport) {
        self.recovered_records += other.recovered_records;
        self.dropped_tail_bytes += other.dropped_tail_bytes;
        self.checksum_errors += other.checksum_errors;
    }
}

/// Renders one text payload as a checksummed frame (including the
/// trailing newline). `payload` must not contain `\n` if the framed log
/// is meant to stay line-tool-friendly — the JSON writers used by the
/// durability logs never emit one.
pub fn frame(payload: &str) -> String {
    format!(
        "{:x} {:016x} {payload}\n",
        payload.len(),
        fnv1a(payload.as_bytes())
    )
}

/// Renders one byte payload as a checksummed frame — the binary wire
/// codec's message envelope. Same bytes on the wire as [`frame`] when
/// the payload happens to be UTF-8 text.
pub fn frame_bytes(payload: &[u8]) -> Vec<u8> {
    let mut out = format!("{:x} {:016x} ", payload.len(), fnv1a(payload)).into_bytes();
    out.extend_from_slice(payload);
    out.push(b'\n');
    out
}

/// Walks `bytes` front to back, returning every intact UTF-8 payload and
/// a report of where (and why) reading stopped. Never panics, whatever
/// the input: torn, bit-flipped, and non-UTF-8 tails all degrade to a
/// truncated prefix plus an accurate `dropped_tail_bytes`.
pub fn read_frames(bytes: &[u8]) -> (Vec<String>, RecoveryReport) {
    let mut records = Vec::new();
    let mut report = RecoveryReport::default();
    let mut pos = 0usize;
    while pos < bytes.len() {
        match step(&bytes[pos..]) {
            FrameStep::Ok { payload, advance } => {
                // The durability logs carry JSON text; a checksum-valid
                // frame with non-UTF-8 bytes is foreign and ends the
                // trustworthy prefix like any other malformed frame.
                let Ok(text) = String::from_utf8(payload) else {
                    break;
                };
                records.push(text);
                report.recovered_records += 1;
                pos += advance;
            }
            FrameStep::Incomplete | FrameStep::Malformed => break,
            FrameStep::BadChecksum => {
                report.checksum_errors += 1;
                break;
            }
        }
    }
    report.dropped_tail_bytes = (bytes.len() - pos) as u64;
    (records, report)
}

/// One incremental parse attempt at the start of a byte buffer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameStep {
    /// A complete, checksum-valid frame; consume `advance` bytes.
    Ok {
        /// The frame body (length-delimited, may contain any byte).
        payload: Vec<u8>,
        /// Total frame size including header and trailing LF.
        advance: usize,
    },
    /// The buffer ends mid-frame; a stream reader should read more.
    Incomplete,
    /// The header or terminator is corrupt; no more frames can follow.
    Malformed,
    /// A complete frame whose payload hash does not match.
    BadChecksum,
}

/// Writers emit lower-case hex only; rejecting the upper-case aliases
/// keeps the header canonical, so any single-bit flip in a header byte
/// invalidates the frame rather than silently parsing to the same value
/// (`from_str_radix` alone would accept `A` for `a`).
fn is_canonical_hex(text: &str) -> bool {
    text.bytes().all(|b| matches!(b, b'0'..=b'9' | b'a'..=b'f'))
}

/// Parses one frame at the start of `bytes`, distinguishing "need more
/// bytes" from "corrupt". The length field is bounded to 8 hex digits so
/// a corrupt header cannot claim a multi-exabyte payload.
pub fn step(bytes: &[u8]) -> FrameStep {
    // Header: "<len-hex> <hash-16hex> ".
    let Some(len_end) = bytes.iter().take(9).position(|&b| b == b' ') else {
        return if bytes.len() < 9 {
            FrameStep::Incomplete
        } else {
            FrameStep::Malformed
        };
    };
    if len_end == 0 {
        return FrameStep::Malformed;
    }
    let Ok(len_text) = std::str::from_utf8(&bytes[..len_end]) else {
        return FrameStep::Malformed;
    };
    if !is_canonical_hex(len_text) {
        return FrameStep::Malformed;
    }
    let Ok(len) = usize::from_str_radix(len_text, 16) else {
        return FrameStep::Malformed;
    };
    let hash_start = len_end + 1;
    let hash_end = hash_start + 16;
    if bytes.len() < hash_end + 1 {
        return FrameStep::Incomplete;
    }
    if bytes[hash_end] != b' ' {
        return FrameStep::Malformed;
    }
    let Ok(hash_text) = std::str::from_utf8(&bytes[hash_start..hash_end]) else {
        return FrameStep::Malformed;
    };
    if !is_canonical_hex(hash_text) {
        return FrameStep::Malformed;
    }
    let Ok(hash) = u64::from_str_radix(hash_text, 16) else {
        return FrameStep::Malformed;
    };
    let body_start = hash_end + 1;
    let Some(body_end) = body_start.checked_add(len) else {
        return FrameStep::Malformed;
    };
    if bytes.len() < body_end + 1 {
        return FrameStep::Incomplete;
    }
    if bytes[body_end] != b'\n' {
        return FrameStep::Malformed;
    }
    let body = &bytes[body_start..body_end];
    if fnv1a(body) != hash {
        return FrameStep::BadChecksum;
    }
    FrameStep::Ok {
        payload: body.to_vec(),
        advance: body_end + 1,
    }
}

/// A buffered, frame-at-a-time appender with periodic fsync — the
/// shared writer behind both the journal and the spill log.
pub(crate) struct FrameWriter {
    out: BufWriter<File>,
    /// Records appended since the last fsync.
    since_sync: u64,
    /// fsync after every N records (0 = flush only, let the OS decide).
    fsync_every: u64,
}

impl FrameWriter {
    pub(crate) fn append_to(path: &Path, fsync_every: u64) -> io::Result<FrameWriter> {
        truncate_torn_tail(path)?;
        let file = OpenOptions::new().create(true).append(true).open(path)?;
        Ok(FrameWriter {
            out: BufWriter::new(file),
            since_sync: 0,
            fsync_every,
        })
    }

    /// Frames and appends one payload. Each record is flushed to the OS
    /// so a kill -9 loses at most the write in progress; fsync is
    /// amortized over `fsync_every` records.
    pub(crate) fn append(&mut self, payload: &str) -> io::Result<()> {
        self.out.write_all(frame(payload).as_bytes())?;
        self.out.flush()?;
        self.since_sync += 1;
        if self.fsync_every > 0 && self.since_sync >= self.fsync_every {
            self.sync()?;
        }
        Ok(())
    }

    pub(crate) fn sync(&mut self) -> io::Result<()> {
        self.out.flush()?;
        self.out.get_ref().sync_data()?;
        self.since_sync = 0;
        Ok(())
    }
}

/// Drops any torn or corrupt tail before a log is reopened for append.
/// Without this, a record appended after a tear is glued onto the
/// partial frame and the *next* replay discards it along with the tear —
/// a completed result silently lost (the torn-tail regression test).
fn truncate_torn_tail(path: &Path) -> io::Result<()> {
    let bytes = match std::fs::read(path) {
        Ok(bytes) => bytes,
        Err(err) if err.kind() == io::ErrorKind::NotFound => return Ok(()),
        Err(err) => return Err(err),
    };
    let (_, report) = read_frames(&bytes);
    if report.dropped_tail_bytes == 0 {
        return Ok(());
    }
    let keep = bytes.len() as u64 - report.dropped_tail_bytes;
    let file = OpenOptions::new().write(true).open(path)?;
    file.set_len(keep)?;
    file.sync_data()?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_round_trip_and_stop_at_a_torn_tail() {
        let payloads = ["{\"a\":1}", "{\"b\":\"two\"}", "{\"c\":[1,2,3]}"];
        let mut file = String::new();
        for p in &payloads {
            file.push_str(&frame(p));
        }
        let (records, report) = read_frames(file.as_bytes());
        assert_eq!(records, payloads);
        assert_eq!(report.recovered_records, 3);
        assert_eq!(report.dropped_tail_bytes, 0);
        assert_eq!(report.checksum_errors, 0);

        // Truncate mid-record: the intact prefix survives, the tail is
        // counted, and no checksum error is charged (benign tear).
        let cut = file.len() - 5;
        let (records, report) = read_frames(&file.as_bytes()[..cut]);
        assert_eq!(records, &payloads[..2]);
        assert_eq!(report.recovered_records, 2);
        assert!(report.dropped_tail_bytes > 0);
        assert_eq!(report.checksum_errors, 0);
    }

    #[test]
    fn a_flipped_bit_is_a_checksum_error_not_a_bad_record() {
        let mut file = frame("{\"a\":1}").into_bytes();
        file.extend_from_slice(frame("{\"b\":2}").as_bytes());
        // Flip a bit inside the second record's payload.
        let second_start = frame("{\"a\":1}").len();
        let target = second_start + frame("{\"b\":2}").len() - 3;
        file[target] ^= 0x01;
        let (records, report) = read_frames(&file);
        assert_eq!(records, ["{\"a\":1}"]);
        assert_eq!(report.checksum_errors, 1);
        assert_eq!(
            report.dropped_tail_bytes as usize,
            file.len() - second_start
        );
    }

    #[test]
    fn garbage_input_never_panics_and_recovers_nothing() {
        for bytes in [
            &b"not a frame at all"[..],
            &b"ffffffffffffffff "[..],
            &b"5 0123456789abcdef"[..],
            &[0xFF, 0xFE, 0x00, 0x20, 0x20][..],
            &b""[..],
        ] {
            let (records, report) = read_frames(bytes);
            assert!(records.is_empty());
            assert_eq!(report.dropped_tail_bytes as usize, bytes.len());
        }
    }

    #[test]
    fn byte_frames_carry_arbitrary_payloads_including_newlines() {
        let payload = [0u8, 1, 2, b'\n', 0xFF, b' ', b'\n', 0x7F];
        let framed = frame_bytes(&payload);
        let FrameStep::Ok {
            payload: parsed,
            advance,
        } = step(&framed)
        else {
            panic!("a written byte frame must parse");
        };
        assert_eq!(parsed, payload);
        assert_eq!(advance, framed.len());
        // Text and byte framing are the same bytes for the same payload.
        assert_eq!(frame("{\"a\":1}").as_bytes(), &frame_bytes(b"{\"a\":1}")[..]);
    }

    #[test]
    fn step_distinguishes_truncation_from_corruption() {
        let framed = frame_bytes(b"payload");
        // Every proper prefix is Incomplete, never Malformed: a socket
        // reader must keep waiting for the rest.
        for cut in 0..framed.len() {
            assert_eq!(
                step(&framed[..cut]),
                FrameStep::Incomplete,
                "prefix of {cut} bytes"
            );
        }
        // A corrupt header byte is Malformed (hang up).
        let mut bad = framed.clone();
        bad[0] = b'G';
        assert_eq!(step(&bad), FrameStep::Malformed);
        // An upper-case hex alias is not canonical.
        let mut upper = framed.clone();
        upper[2] = b'A';
        assert_eq!(step(&upper), FrameStep::Malformed);
        // A wrong terminator is Malformed.
        let mut no_lf = framed.clone();
        let last = no_lf.len() - 1;
        no_lf[last] = b' ';
        assert_eq!(step(&no_lf), FrameStep::Malformed);
        // A flipped payload bit is BadChecksum.
        let mut flipped = framed;
        flipped[22] ^= 0x01;
        assert_eq!(step(&flipped), FrameStep::BadChecksum);
        // Nine-plus bytes with no header space can never become a frame.
        assert_eq!(step(b"ffffffffffffffff "), FrameStep::Malformed);
        assert_eq!(step(b"ffff"), FrameStep::Incomplete);
    }
}
