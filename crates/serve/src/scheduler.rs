//! Job scheduling: bounded admission, priorities, deadlines, a fixed
//! worker pool, single-flight coalescing, cooperative cancellation,
//! crash-safe journaling, and a self-healing worker supervisor.
//!
//! # Admission and backpressure
//!
//! The queue is bounded ([`ServeConfig::queue_capacity`]). A submission
//! that would overflow it is *rejected at the door* with
//! [`Rejected::QueueFull`] — an explicit signal the client can see and
//! retry on — never silently dropped or unboundedly buffered. Every
//! rejection also emits [`Event::JobRejected`], so a trace with a
//! `job_rejected` line is the ground truth for "the service shed load".
//!
//! # Single-flight coalescing
//!
//! Identical jobs (same [`JobKey`]) are *coalesced*: the first
//! submission enqueues a run; later submissions while it is queued or
//! running attach to the same in-flight entry and share its outcome. N
//! concurrent submissions of one spec cost one simulation. Completed
//! results land in the [`ResultStore`], so later resubmissions are
//! cache hits without any scheduling at all.
//!
//! # Cancellation and deadlines
//!
//! Cancellation reuses the run-loop watchdog plumbing: each job owns an
//! `Arc<AtomicBool>` handed to [`RunSpec::cancel_flag`], which the
//! full-system engine polls every 512 cycles and honours with
//! `SimError::Cancelled`. Because coalesced submissions share one run,
//! cancellation is *interest-counted*: cancelling one ticket detaches
//! that submission; only when the last interested ticket cancels is the
//! flag actually raised (or the queued entry tombstoned).
//!
//! A submission deadline bounds the job's *whole* life, not just its
//! queue wait: a job still queued when it elapses never runs
//! ([`JobOutcome::DeadlineExpired`]), and a job still *running* past it
//! is cooperatively cancelled by the reaper thread through the same
//! flag and finishes as [`JobOutcome::DeadlineExceeded`].
//!
//! # Durability
//!
//! With [`ServeConfig::journal`] set, every fresh admission is appended
//! to a write-ahead [`Journal`] *before* any worker can pick the job
//! up, and every terminal outcome appends a settle record. Together
//! with the result-store spill ([`ServeConfig::spill`]), a restart
//! against the same state directory rebuilds the memo cache and
//! re-enqueues exactly the jobs the previous process admitted but never
//! finished — a kill -9 loses no completed result and re-runs each
//! unfinished job exactly once.
//!
//! # Self-healing
//!
//! Worker threads run under a supervisor: a panic inside a run is
//! caught with `catch_unwind`, the worker is respawned (same OS thread,
//! next incarnation), and the offending job is retried with backoff. A
//! job that kills [`ServeConfig::strike_limit`] workers is quarantined
//! as [`JobOutcome::Poisoned`] instead of being retried forever.
//! Transient [`SimError::Fault`] outcomes are retried up to
//! [`ServeConfig::retry_budget`] times with exponential backoff.
//!
//! # Overload control
//!
//! An [`AdmissionController`] watches queue depth and queue delay on
//! every submission and steps a brownout ladder with hysteresis
//! ([`BrownoutLevel`]). Clients that opt in
//! ([`SubmitParams::allow_degraded`]) may have their reciprocal-mode
//! jobs answered from a cheaper rung of the [`Fidelity`] ladder instead
//! of being rejected: Brownout-1 degrades new low-priority jobs to the
//! calibrated model, Brownout-2 degrades every job whose floor allows
//! it, and a full queue admits degradable jobs at their floor into an
//! overflow region (up to 4x capacity) rather than bouncing them with
//! `queue_full`. Per-client token buckets bound each client's fresh-run
//! rate the same way. Every degraded answer journals an *upgrade
//! intent*: when the queue is empty and the brownout has cleared, idle
//! workers re-run the spec at full fidelity and replace the store entry
//! in place (upgrade-only), emitting [`Event::ResultUpgraded`].
//!
//! [`RunSpec::cancel_flag`]: ra_cosim::RunSpec::cancel_flag
//! [`Event::JobRejected`]: ra_obs::Event::JobRejected
//! [`Event::ResultUpgraded`]: ra_obs::Event::ResultUpgraded

use std::any::Any;
use std::collections::{BinaryHeap, HashMap, HashSet, VecDeque};
use std::fmt;
use std::path::PathBuf;
use std::str::FromStr;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use ra_cosim::{ModeSpec, RunResult};
use ra_obs::{Event, ObsSink};
use ra_sim::SimError;

use crate::admission::{AdmissionConfig, AdmissionController, BrownoutLevel, Ewma, TokenBucket};
use crate::journal::{self, Journal, RecoveryReport, UnfinishedJob, UpgradeIntent};
use crate::spec::{Fidelity, JobKey, JobSpec};
use crate::store::{ResultStore, StoreStats, StoredResult};

/// Error bound reported for a pure hop-model answer: the paper's A1
/// configuration sees up to ~69% latency error from the hop model alone.
pub(crate) const HOP_ERROR_BOUND: f64 = 0.69;

/// Smallest error bound a calibrated-only answer will claim, even when
/// the observed drift EWMA says the models currently agree closely.
const CALIBRATED_ERROR_FLOOR: f64 = 0.15;

/// Scheduling priority. Higher priorities always dequeue first; within a
/// priority the queue is FIFO.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default)]
pub enum Priority {
    /// Background work (sweeps, prefetching).
    Low,
    /// The default.
    #[default]
    Normal,
    /// Interactive requests.
    High,
}

impl Priority {
    /// Numeric rank for observability events (0 = low, 2 = high).
    pub fn rank(self) -> u64 {
        match self {
            Priority::Low => 0,
            Priority::Normal => 1,
            Priority::High => 2,
        }
    }
}

impl fmt::Display for Priority {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Priority::Low => "low",
            Priority::Normal => "normal",
            Priority::High => "high",
        })
    }
}

impl FromStr for Priority {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "low" => Ok(Priority::Low),
            "normal" => Ok(Priority::Normal),
            "high" => Ok(Priority::High),
            other => Err(format!("unknown priority `{other}` (low/normal/high)")),
        }
    }
}

/// Why a submission was turned away at the door.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Rejected {
    /// The admission queue is at capacity — the backpressure signal.
    /// `depth` is the queue depth the client collided with.
    QueueFull {
        /// Queued jobs at rejection time.
        depth: usize,
    },
    /// The service is shutting down and admits nothing new.
    ShuttingDown,
}

impl fmt::Display for Rejected {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Rejected::QueueFull { depth } => {
                write!(f, "admission queue full ({depth} queued); retry later")
            }
            Rejected::ShuttingDown => f.write_str("service is shutting down"),
        }
    }
}

impl std::error::Error for Rejected {}

/// How a submission was admitted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Disposition {
    /// Result was already memoized; the ticket is immediately ready.
    CacheHit,
    /// Attached to an identical job already queued or running.
    Coalesced,
    /// Enqueued as a fresh run; `depth` is the queue depth after.
    Enqueued {
        /// Queued jobs after admission.
        depth: usize,
    },
}

impl Disposition {
    /// Wire label (`cached` / `coalesced` / `enqueued`).
    pub fn label(self) -> &'static str {
        match self {
            Disposition::CacheHit => "cached",
            Disposition::Coalesced => "coalesced",
            Disposition::Enqueued { .. } => "enqueued",
        }
    }
}

/// A submission handle: use it with [`JobService::status`],
/// [`JobService::wait`], and [`JobService::cancel`].
pub type Ticket = u64;

/// What [`JobService::submit`] returns on admission.
#[derive(Debug, Clone)]
pub struct SubmitReceipt {
    /// Handle for status/wait/cancel.
    pub ticket: Ticket,
    /// Content hash of the submitted spec.
    pub job: JobKey,
    /// How the submission was admitted.
    pub disposition: Disposition,
}

/// Terminal state of a job.
#[derive(Debug, Clone)]
pub enum JobOutcome {
    /// The simulation finished (or was already memoized).
    Completed {
        /// The run's results, shared with the cache.
        result: Arc<RunResult>,
        /// True when served from the memo store without simulating.
        cached: bool,
        /// Which rung of the fidelity ladder produced the answer.
        fidelity: Fidelity,
        /// Estimated relative error of the answer for that rung.
        error_bound: f64,
        /// Nanoseconds spent queued before the run started.
        queue_ns: u64,
        /// Nanoseconds spent simulating.
        run_ns: u64,
    },
    /// The simulation errored (budget exhausted, stall, ...).
    Failed {
        /// Rendered `SimError` chain.
        error: String,
    },
    /// Every interested submission cancelled before completion.
    Cancelled,
    /// The job was still queued past its deadline and never ran.
    DeadlineExpired,
    /// The job was *running* past its deadline and was cooperatively
    /// cancelled by the reaper.
    DeadlineExceeded,
    /// The job crashed [`ServeConfig::strike_limit`] workers and was
    /// quarantined instead of retried again.
    Poisoned {
        /// Rendered fault describing the last crash.
        error: String,
    },
}

impl JobOutcome {
    /// Stable label for wire responses and [`Event::JobDone`].
    ///
    /// [`Event::JobDone`]: ra_obs::Event::JobDone
    pub fn label(&self) -> &'static str {
        match self {
            JobOutcome::Completed { cached: true, .. } => "cached",
            JobOutcome::Completed { cached: false, .. } => "completed",
            JobOutcome::Failed { .. } => "failed",
            JobOutcome::Cancelled => "cancelled",
            JobOutcome::DeadlineExpired => "deadline_expired",
            JobOutcome::DeadlineExceeded => "deadline_exceeded",
            JobOutcome::Poisoned { .. } => "poisoned",
        }
    }
}

/// Non-terminal view of a job for the `status` verb.
#[derive(Debug, Clone)]
pub enum JobStatus {
    /// Waiting in the admission queue.
    Queued,
    /// A worker is simulating it.
    Running,
    /// Finished; the outcome is ready to collect.
    Done(JobOutcome),
}

impl JobStatus {
    /// Stable label for wire responses.
    pub fn label(&self) -> &'static str {
        match self {
            JobStatus::Queued => "queued",
            JobStatus::Running => "running",
            JobStatus::Done(outcome) => outcome.label(),
        }
    }
}

/// Why [`JobService::wait`] returned without an outcome.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WaitError {
    /// No such ticket (never issued, or already collected/cancelled).
    UnknownTicket,
    /// The timeout elapsed first; the ticket stays valid.
    TimedOut,
}

impl fmt::Display for WaitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WaitError::UnknownTicket => f.write_str("unknown ticket"),
            WaitError::TimedOut => f.write_str("timed out waiting for the job"),
        }
    }
}

impl std::error::Error for WaitError {}

/// What [`JobService::cancel`] did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CancelOutcome {
    /// This was the last interested ticket of a *queued* job: it will
    /// never run.
    Cancelled,
    /// This was the last interested ticket of a *running* job: the halt
    /// flag is raised and the engine will stop at the next poll.
    Signalled,
    /// Other submissions still want the job; only this ticket detached.
    Detached,
    /// The job had already finished; the ticket was simply collected.
    AlreadyDone,
}

/// Deterministic failure injection for chaos drills and the supervisor
/// tests: matching is by workload seed, so a test can aim a crash at
/// exactly one job without touching the engine.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ChaosConfig {
    /// Jobs whose spec seed is listed here panic the worker instead of
    /// running (every attempt — what the strike limit is for).
    pub panic_on_seeds: Vec<u64>,
    /// Jobs whose spec seed is listed here fail with a transient
    /// [`SimError::Fault`] while their attempt number is at most
    /// [`fault_attempts`](ChaosConfig::fault_attempts).
    pub fault_on_seeds: Vec<u64>,
    /// How many leading attempts of a `fault_on_seeds` job fault.
    pub fault_attempts: u32,
}

impl ChaosConfig {
    /// True when no fault injection is configured (the default).
    pub fn is_quiet(&self) -> bool {
        self.panic_on_seeds.is_empty() && self.fault_on_seeds.is_empty()
    }
}

/// Per-submission knobs beyond the spec itself. The 3-argument
/// [`JobService::submit`] fills the degradation fields with their
/// defaults (no client id, degradation not allowed), which is exactly
/// the pre-overload-control behaviour.
#[derive(Debug, Clone, Default)]
pub struct SubmitParams {
    /// Scheduling priority.
    pub priority: Priority,
    /// Whole-life deadline (queue wait + run).
    pub deadline: Option<Duration>,
    /// Client identity for per-client quota buckets (`None` = anonymous,
    /// never quota-limited).
    pub client: Option<String>,
    /// Whether the service may answer from a cheaper fidelity rung
    /// under overload instead of rejecting.
    pub allow_degraded: bool,
    /// The cheapest rung the client will accept when degraded
    /// (`None` = [`Fidelity::Hop`], i.e. anything). Ignored unless
    /// `allow_degraded`.
    pub min_fidelity: Option<Fidelity>,
}

impl SubmitParams {
    /// The cheapest fidelity this submission will accept: `Reciprocal`
    /// unless degradation is allowed (and the spec's mode has cheaper
    /// rungs at all).
    fn floor(&self, spec: &JobSpec) -> Fidelity {
        if self.allow_degraded && Fidelity::degradable(&spec.mode) {
            self.min_fidelity.unwrap_or(Fidelity::Hop)
        } else {
            Fidelity::Reciprocal
        }
    }
}

/// Tuning knobs for [`JobService::start`].
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Simulation worker threads.
    pub workers: usize,
    /// Bounded admission-queue capacity (queued, not running, jobs).
    pub queue_capacity: usize,
    /// Result-cache capacity in entries.
    pub cache_capacity: usize,
    /// Result-cache lock shards.
    pub cache_shards: usize,
    /// Optional framed spill log for completed results; replayed on
    /// startup to rebuild the memo cache.
    pub spill: Option<PathBuf>,
    /// Optional write-ahead job journal; replayed on startup to
    /// re-enqueue admitted-but-unfinished jobs.
    pub journal: Option<PathBuf>,
    /// fsync the journal and spill after every N records (0 = flush
    /// only, letting the OS decide when bytes reach the platter).
    pub fsync_every: u64,
    /// Rewrite the journal to just the live admissions once the file
    /// exceeds this many bytes (0 = compact only at startup). Keeps a
    /// long-running service's journal proportional to outstanding work
    /// instead of uptime.
    pub journal_compact_bytes: u64,
    /// Retries allowed for a transient (`SimError::Fault`) outcome
    /// before the job finishes as failed.
    pub retry_budget: u32,
    /// Base delay before a retry; doubles per attempt.
    pub retry_backoff: Duration,
    /// Worker crashes one job may cause before it is quarantined as
    /// [`JobOutcome::Poisoned`].
    pub strike_limit: u32,
    /// Deterministic failure injection (quiet by default).
    pub chaos: ChaosConfig,
    /// Brownout-controller thresholds and hysteresis.
    pub admission: AdmissionConfig,
    /// Per-client fresh-run quota: sustained admissions per second
    /// (0 = unlimited, the default). Applies only to submissions that
    /// carry a [`SubmitParams::client`] id.
    pub quota_rate: f64,
    /// Per-client quota burst (token-bucket capacity). Ignored when
    /// `quota_rate` is 0.
    pub quota_burst: f64,
    /// Whether idle workers drain journaled upgrade intents, re-running
    /// degraded answers at full fidelity (on by default; the
    /// determinism drills turn it off to pin per-tier results).
    pub background_upgrades: bool,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workers: 2,
            queue_capacity: 64,
            cache_capacity: 256,
            cache_shards: 8,
            spill: None,
            journal: None,
            fsync_every: 8,
            journal_compact_bytes: 1 << 20,
            retry_budget: 2,
            retry_backoff: Duration::from_millis(10),
            strike_limit: 2,
            chaos: ChaosConfig::default(),
            admission: AdmissionConfig::default(),
            quota_rate: 0.0,
            quota_burst: 8.0,
            background_upgrades: true,
        }
    }
}

/// Counter snapshot for the `stats` verb and the smoke tests.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServiceStats {
    /// Submissions received (including rejected ones).
    pub submitted: u64,
    /// Fresh runs admitted to the queue.
    pub admitted: u64,
    /// Submissions rejected with [`Rejected::QueueFull`].
    pub rejected: u64,
    /// Submissions attached to an in-flight identical job.
    pub coalesced: u64,
    /// Submissions served straight from the result store.
    pub cache_hits: u64,
    /// Runs that completed successfully.
    pub completed: u64,
    /// Runs that errored.
    pub failed: u64,
    /// Jobs cancelled before or during their run.
    pub cancelled: u64,
    /// Jobs that expired in the queue.
    pub expired: u64,
    /// Running jobs cooperatively cancelled at their deadline.
    pub deadline_exceeded: u64,
    /// Jobs quarantined after crashing too many workers.
    pub poisoned: u64,
    /// Transient-failure retries scheduled.
    pub retries: u64,
    /// Worker respawns after a caught panic.
    pub respawns: u64,
    /// Runtime journal compactions (size-threshold triggered).
    pub journal_compactions: u64,
    /// Results rebuilt from the spill log at startup.
    pub recovered_results: u64,
    /// Journaled-but-unfinished jobs re-enqueued at startup.
    pub resumed_jobs: u64,
    /// Speculative quanta committed across all completed pipelined runs.
    pub spec_commits: u64,
    /// Speculative quanta rolled back across all completed pipelined runs.
    pub spec_rollbacks: u64,
    /// Submissions shed by overload control (quota or full queue with no
    /// degradation headroom). Every shed also counts in `rejected`.
    pub shed: u64,
    /// Runs published below full fidelity.
    pub degraded: u64,
    /// Degraded answers re-run at full fidelity by the background
    /// upgrader.
    pub upgraded: u64,
    /// Upgrade intents waiting for an idle worker.
    pub upgrades_pending: u64,
    /// Current brownout level (0 = normal, 1, 2).
    pub brownout: u64,
    /// Jobs queued right now.
    pub queue_depth: usize,
    /// Result-store counters.
    pub store: StoreStats,
}

/// What startup recovery found, for the `ra-serve` banner and tests.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryInfo {
    /// Results rebuilt from the spill log.
    pub recovered_results: u64,
    /// Intact records read from the journal.
    pub journal_records: u64,
    /// Unfinished jobs re-enqueued.
    pub resumed_jobs: u64,
    /// Torn-tail bytes dropped across both logs.
    pub dropped_tail_bytes: u64,
    /// Checksum mismatches across both logs.
    pub checksum_errors: u64,
}

type JobId = u64;

#[derive(Debug)]
enum Phase {
    Queued,
    Running,
    Done(JobOutcome),
}

struct JobCell {
    spec: JobSpec,
    key: JobKey,
    deadline: Option<Instant>,
    submitted: Instant,
    cancel: Arc<AtomicBool>,
    phase: Phase,
    /// Live submissions (tickets not yet collected or cancelled).
    interest: usize,
    /// Priority it was admitted at (retries requeue at the same one).
    priority: Priority,
    /// Times a worker has started running it.
    attempts: u32,
    /// Workers it has crashed (quarantine at `strike_limit`).
    strikes: u32,
    /// Backoff gate: not runnable before this instant.
    not_before: Option<Instant>,
    /// The reaper already raised the cancel flag for its deadline.
    deadline_fired: bool,
    /// Fidelity rung the next run will execute at (brownout planning).
    planned: Fidelity,
    /// Cheapest rung any attached submission will accept: the max of
    /// every waiter's floor. A publish below this re-enqueues the job.
    floor: Fidelity,
    /// A background upgrade re-run (interest starts at 0, results
    /// publish through the store's upgrade-only rule).
    is_upgrade: bool,
}

/// Max-heap slot: higher priority first, then FIFO by sequence number.
#[derive(PartialEq, Eq)]
struct QueueSlot {
    priority: Priority,
    seq: u64,
    job: JobId,
}

impl Ord for QueueSlot {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.priority
            .cmp(&other.priority)
            .then(other.seq.cmp(&self.seq))
    }
}

impl PartialOrd for QueueSlot {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

#[derive(Default)]
struct State {
    queue: BinaryHeap<QueueSlot>,
    cells: HashMap<JobId, JobCell>,
    /// key -> queued-or-running job, for single-flight coalescing.
    inflight: HashMap<u64, JobId>,
    tickets: HashMap<Ticket, JobId>,
    /// worker id -> the job it is currently running (what the panic
    /// supervisor uses to find the victim).
    running: HashMap<usize, JobId>,
    next_id: u64,
    next_seq: u64,
    /// Live (non-tombstoned) queued jobs — what `queue_capacity` bounds.
    queued: usize,
    shutting_down: bool,
    stats: ServiceStats,
    /// The brownout controller (pressure EWMA + hysteresis).
    admission: AdmissionController,
    /// Per-client fresh-run token buckets.
    quotas: HashMap<String, TokenBucket>,
    /// Upgrade intents awaiting an idle worker, FIFO.
    upgrades: VecDeque<UpgradeIntent>,
    /// Keys currently in `upgrades` (dedup on repeated degraded runs).
    upgrade_keys: HashSet<u64>,
    /// EWMA of the relative coupler drift observed on full-fidelity
    /// runs, feeding the calibrated tier's error-bound estimate.
    drift: Ewma,
}

struct Inner {
    state: Mutex<State>,
    /// Wakes workers when work arrives or shutdown starts.
    work_cv: Condvar,
    /// Wakes `wait`ers whenever any job reaches a terminal phase.
    done_cv: Condvar,
    /// Wakes the deadline reaper when a deadline-bearing job arrives.
    reaper_cv: Condvar,
    store: ResultStore,
    obs: ObsSink,
    journal: Option<Journal>,
    config: ServeConfig,
    recovery: RecoveryInfo,
    /// Epoch for the token buckets' injected clock.
    started: Instant,
}

/// A multi-worker simulation-job service: canonical [`JobSpec`]s in,
/// memoized [`RunResult`]s out.
///
/// ```
/// use ra_serve::{JobService, ServeConfig};
///
/// let service = JobService::start(ServeConfig::default(), ra_obs::ObsSink::disabled())?;
/// let spec = "target=2x2 app=water mode=fixed:10 instructions=20 budget=100000"
///     .parse::<ra_serve::JobSpec>()
///     .map_err(|e| std::io::Error::other(e.to_string()))?;
/// let receipt = service.submit(spec, Default::default(), None).expect("admitted");
/// let outcome = service.wait(receipt.ticket, None).expect("completes");
/// assert_eq!(outcome.label(), "completed");
/// service.shutdown();
/// # Ok::<(), std::io::Error>(())
/// ```
pub struct JobService {
    inner: Arc<Inner>,
    workers: Vec<JoinHandle<()>>,
}

impl JobService {
    /// Spawns the worker pool and the deadline reaper, after replaying
    /// any configured spill log and journal (warm restart): memoized
    /// results are rebuilt, admitted-but-unfinished jobs re-enqueued,
    /// and the journal compacted to exactly those jobs.
    ///
    /// # Errors
    ///
    /// Propagates spill/journal open, replay, and compaction failures.
    pub fn start(config: ServeConfig, obs: ObsSink) -> std::io::Result<JobService> {
        let mut store = ResultStore::new(config.cache_capacity, config.cache_shards);
        let mut recovery = RecoveryInfo::default();
        let mut frames = RecoveryReport::default();
        if let Some(path) = &config.spill {
            let report = store.warm_from_spill(path)?;
            recovery.recovered_results = report.recovered_records;
            frames.absorb(report);
            store = store.with_spill(path, config.fsync_every)?;
        }
        let mut journal = None;
        let mut resumed: Vec<UnfinishedJob> = Vec::new();
        let mut owed_upgrades: Vec<UpgradeIntent> = Vec::new();
        if let Some(path) = &config.journal {
            let replayed = journal::replay(path)?;
            recovery.journal_records = replayed.report.recovered_records;
            frames.absorb(replayed.report);
            // An unfinished job whose result came back with the spill
            // replay only lost its settle record; it is already done.
            resumed = replayed
                .unfinished
                .into_iter()
                .filter(|u| !store.contains(u.key))
                .collect();
            // An upgrade intent whose store entry is already full
            // fidelity (or gone — nothing to upgrade) only lost its
            // `upgraded` record; the debt is paid.
            owed_upgrades = replayed
                .pending_upgrades
                .into_iter()
                .filter(|u| store.fidelity_of(u.key).is_some_and(|f| f < Fidelity::Reciprocal))
                .collect();
            journal::compact(path, &resumed, &owed_upgrades)?;
            journal = Some(Journal::open(path, config.fsync_every)?);
        }
        // Re-parse resumed specs; a spec this build can no longer parse
        // (foreign or stale journal) is dropped rather than wedging the
        // queue forever.
        let seeds: Vec<(JobSpec, Priority)> = resumed
            .into_iter()
            .filter_map(|u| u.spec.parse::<JobSpec>().ok().map(|s| (s, u.priority)))
            .collect();
        recovery.resumed_jobs = seeds.len() as u64;
        recovery.dropped_tail_bytes = frames.dropped_tail_bytes;
        recovery.checksum_errors = frames.checksum_errors;

        let inner = Arc::new(Inner {
            state: Mutex::new(State::default()),
            work_cv: Condvar::new(),
            done_cv: Condvar::new(),
            reaper_cv: Condvar::new(),
            store,
            obs,
            journal,
            config: config.clone(),
            recovery,
            started: Instant::now(),
        });
        {
            let mut st = lock_state(&inner);
            st.admission = AdmissionController::new(config.admission.clone());
            for intent in owed_upgrades {
                st.upgrade_keys.insert(intent.key.0);
                st.upgrades.push_back(intent);
            }
            st.stats.upgrades_pending = st.upgrades.len() as u64;
            let now = Instant::now();
            for (spec, priority) in seeds {
                let key = spec.job_hash();
                let job = st.next_id;
                st.next_id += 1;
                st.cells.insert(
                    job,
                    JobCell {
                        spec,
                        key,
                        deadline: None,
                        submitted: now,
                        cancel: Arc::new(AtomicBool::new(false)),
                        phase: Phase::Queued,
                        // No ticket survives a restart; the cell frees
                        // itself when done. New submissions of the same
                        // spec coalesce onto it as usual.
                        interest: 0,
                        priority,
                        attempts: 0,
                        strikes: 0,
                        not_before: None,
                        deadline_fired: false,
                        // Resumed jobs re-run at full fidelity: the
                        // original submitter's degradation consent did
                        // not survive the restart, so the safe floor is
                        // the spec's own mode.
                        planned: Fidelity::Reciprocal,
                        floor: Fidelity::Reciprocal,
                        is_upgrade: false,
                    },
                );
                st.inflight.insert(key.0, job);
                let seq = st.next_seq;
                st.next_seq += 1;
                st.queue.push(QueueSlot { priority, seq, job });
                st.queued += 1;
            }
            st.stats.recovered_results = recovery.recovered_results;
            st.stats.resumed_jobs = recovery.resumed_jobs;
        }
        if config.spill.is_some() || config.journal.is_some() {
            inner.obs.emit(|| Event::JournalReplay {
                recovered_results: recovery.recovered_results,
                resumed_jobs: recovery.resumed_jobs,
                dropped_tail_bytes: recovery.dropped_tail_bytes,
                checksum_errors: recovery.checksum_errors,
            });
        }
        let mut workers: Vec<JoinHandle<()>> = (0..config.workers.max(1))
            .map(|i| {
                let inner = inner.clone();
                std::thread::Builder::new()
                    .name(format!("ra-serve-worker-{i}"))
                    .spawn(move || supervise(&inner, i))
                    .expect("spawn worker")
            })
            .collect();
        {
            let inner = inner.clone();
            workers.push(
                std::thread::Builder::new()
                    .name("ra-serve-reaper".to_owned())
                    .spawn(move || reaper_loop(&inner))
                    .expect("spawn reaper"),
            );
        }
        Ok(JobService { inner, workers })
    }

    /// Submits a job. `deadline` bounds the job's whole life: still
    /// queued when it elapses → [`JobOutcome::DeadlineExpired`] without
    /// running; still *running* when it elapses → cooperatively
    /// cancelled and [`JobOutcome::DeadlineExceeded`].
    ///
    /// Degradation is off for this entry point; see
    /// [`submit_with`](JobService::submit_with) for the overload-aware
    /// vocabulary.
    ///
    /// # Errors
    ///
    /// [`Rejected::QueueFull`] when the admission queue is at capacity
    /// (the backpressure signal), [`Rejected::ShuttingDown`] after
    /// [`shutdown`](JobService::shutdown) began.
    pub fn submit(
        &self,
        spec: JobSpec,
        priority: Priority,
        deadline: Option<Duration>,
    ) -> Result<SubmitReceipt, Rejected> {
        self.submit_with(
            spec,
            SubmitParams {
                priority,
                deadline,
                ..SubmitParams::default()
            },
        )
    }

    /// Submits a job with the full overload-control vocabulary: client
    /// identity for quota buckets, and degradation consent
    /// (`allow_degraded` + `min_fidelity`). A consenting submission is
    /// never bounced with `queue_full`: under brownout or a full queue
    /// it is planned at a cheaper fidelity rung instead (down to its
    /// floor), and the degraded answer is journaled for a background
    /// full-fidelity upgrade.
    ///
    /// # Errors
    ///
    /// As [`submit`](JobService::submit); additionally, a submission
    /// over its client quota that cannot degrade is shed with
    /// [`Rejected::QueueFull`].
    pub fn submit_with(
        &self,
        spec: JobSpec,
        params: SubmitParams,
    ) -> Result<SubmitReceipt, Rejected> {
        let key = spec.job_hash();
        let now = Instant::now();
        let priority = params.priority;
        let floor = params.floor(&spec);
        let degradable = params.allow_degraded && Fidelity::degradable(&spec.mode);
        let mut st = self.lock();
        if st.shutting_down {
            return Err(Rejected::ShuttingDown);
        }
        st.stats.submitted += 1;

        // Feed the brownout controller one pressure observation per
        // submission; its level decides the fidelity planning below.
        let capacity = self.inner.config.queue_capacity;
        let queued_now = st.queued;
        let level_change = st.admission.update(queued_now, capacity);
        if let Some(change) = level_change {
            st.stats.brownout = u64::from(change.to.level());
            self.inner.obs.emit(|| {
                if change.to.level() > change.from.level() {
                    Event::BrownoutEnter {
                        level: u64::from(change.to.level()),
                        pressure: change.pressure,
                    }
                } else {
                    Event::BrownoutExit {
                        level: u64::from(change.to.level()),
                        pressure: change.pressure,
                    }
                }
            });
        }

        // Tier 1: the memo store — a hit must meet the caller's floor.
        // (Lock order is always state -> store.)
        if let Some(stored) = self.inner.store.get(key) {
            if stored.fidelity >= floor {
                st.stats.cache_hits += 1;
                let ticket = new_cell(
                    &mut st,
                    spec,
                    key,
                    None,
                    now,
                    priority,
                    Phase::Done(JobOutcome::Completed {
                        result: stored.result,
                        cached: true,
                        fidelity: stored.fidelity,
                        error_bound: stored.error_bound,
                        queue_ns: 0,
                        run_ns: 0,
                    }),
                    floor,
                );
                drop(st);
                self.inner.obs.emit(|| Event::CacheHit { job: key.0 });
                // The outcome is already terminal; let sleeping waiters of
                // other tickets coexist — only this ticket's waiter matters,
                // and it will observe Done immediately.
                return Ok(SubmitReceipt {
                    ticket,
                    job: key,
                    disposition: Disposition::CacheHit,
                });
            }
            // A cached answer below the floor is a miss for this caller;
            // fall through to coalesce/admit a better run.
        }

        // Tier 2: single-flight — attach to an identical in-flight job,
        // raising its floor (and, while still queued, its plan) to ours.
        if let Some(&job) = st.inflight.get(&key.0) {
            let ticket = st.next_id;
            st.next_id += 1;
            st.tickets.insert(ticket, job);
            let cell = st.cells.get_mut(&job).expect("inflight cell");
            cell.interest += 1;
            if floor > cell.floor {
                cell.floor = floor;
            }
            if cell.planned < cell.floor && matches!(cell.phase, Phase::Queued) {
                cell.planned = cell.floor;
            }
            st.stats.coalesced += 1;
            drop(st);
            self.inner.obs.emit(|| Event::CacheHit { job: key.0 });
            return Ok(SubmitReceipt {
                ticket,
                job: key,
                disposition: Disposition::Coalesced,
            });
        }

        // Per-client quota: a fresh run costs one token. Over-quota
        // submissions degrade to their floor when allowed, else shed.
        let mut planned = Fidelity::Reciprocal;
        let mut degrade_cause: Option<&'static str> = None;
        if self.inner.config.quota_rate > 0.0 {
            if let Some(client) = &params.client {
                let now_ns = elapsed_ns(self.inner.started, now);
                let rate = self.inner.config.quota_rate;
                let burst = self.inner.config.quota_burst;
                let bucket = st
                    .quotas
                    .entry(client.clone())
                    .or_insert_with(|| TokenBucket::new(burst, rate));
                if !bucket.try_take(now_ns, 1.0) {
                    if degradable {
                        planned = floor;
                        degrade_cause = Some("quota");
                    } else {
                        let depth = st.queued;
                        st.stats.rejected += 1;
                        st.stats.shed += 1;
                        drop(st);
                        self.inner.obs.emit(|| Event::JobShed {
                            job: key.0,
                            client: client.clone(),
                            queue_depth: depth as u64,
                        });
                        return Err(Rejected::QueueFull { depth });
                    }
                }
            }
        }

        // Brownout planning: level 1 degrades new low-priority work to
        // the calibrated model, level 2 degrades everything consenting
        // down to its floor.
        if degradable && degrade_cause.is_none() {
            match st.admission.level() {
                BrownoutLevel::Normal => {}
                BrownoutLevel::Brownout1 if priority == Priority::Low => {
                    planned = Fidelity::Calibrated.max(floor);
                    degrade_cause = Some("brownout1");
                }
                BrownoutLevel::Brownout1 => {}
                BrownoutLevel::Brownout2 => {
                    planned = floor;
                    degrade_cause = Some("brownout2");
                }
            }
        }

        // Tier 3: a fresh run — subject to bounded admission. Degradable
        // jobs that collide with a full queue are not bounced: they are
        // forced to their floor and admitted into an overflow region
        // (4x capacity), because a floor-fidelity run costs milliseconds.
        if st.queued >= capacity {
            if degradable && st.queued < capacity.saturating_mul(4) {
                planned = floor;
                degrade_cause = Some("queue_full");
            } else {
                let depth = st.queued;
                st.stats.rejected += 1;
                st.stats.shed += 1;
                let client = params.client.clone().unwrap_or_default();
                drop(st);
                self.inner.obs.emit(|| Event::JobRejected {
                    job: key.0,
                    queue_depth: depth as u64,
                });
                self.inner.obs.emit(|| Event::JobShed {
                    job: key.0,
                    client,
                    queue_depth: depth as u64,
                });
                return Err(Rejected::QueueFull { depth });
            }
        }
        let canonical = spec.canonical();
        let has_deadline = params.deadline.is_some();
        let ticket = new_cell(
            &mut st,
            spec,
            key,
            params.deadline.map(|d| now + d),
            now,
            priority,
            Phase::Queued,
            floor,
        );
        let job = st.tickets[&ticket];
        if let Some(cell) = st.cells.get_mut(&job) {
            cell.planned = planned.max(floor);
        }
        st.inflight.insert(key.0, job);
        let seq = st.next_seq;
        st.next_seq += 1;
        st.queue.push(QueueSlot { priority, seq, job });
        st.queued += 1;
        st.stats.admitted += 1;
        let depth = st.queued;
        // Write-ahead: the admit record lands while the state lock still
        // blocks every worker from popping the job.
        if let Some(journal) = &self.inner.journal {
            journal.admit(key, &canonical, priority);
        }
        drop(st);
        self.inner.work_cv.notify_one();
        if has_deadline {
            self.inner.reaper_cv.notify_all();
        }
        if let Some(cause) = degrade_cause {
            let fidelity = planned.name().to_owned();
            self.inner.obs.emit(|| Event::JobDegraded {
                job: key.0,
                fidelity,
                cause: cause.to_owned(),
            });
        }
        self.inner.obs.emit(|| Event::JobAdmitted {
            job: key.0,
            queue_depth: depth as u64,
            priority: priority.rank(),
        });
        Ok(SubmitReceipt {
            ticket,
            job: key,
            disposition: Disposition::Enqueued { depth },
        })
    }

    /// Non-consuming snapshot of a ticket's job, or `None` for an
    /// unknown (or already collected) ticket.
    pub fn status(&self, ticket: Ticket) -> Option<JobStatus> {
        let st = self.lock();
        let cell = st.cells.get(st.tickets.get(&ticket)?)?;
        Some(match &cell.phase {
            Phase::Queued => JobStatus::Queued,
            Phase::Running => JobStatus::Running,
            Phase::Done(outcome) => JobStatus::Done(outcome.clone()),
        })
    }

    /// Blocks until the ticket's job finishes, then *collects* the
    /// ticket (it stops resolving afterwards). `None` waits forever.
    ///
    /// # Errors
    ///
    /// [`WaitError::TimedOut`] leaves the ticket collectable later;
    /// [`WaitError::UnknownTicket`] means it never existed or was
    /// already collected.
    pub fn wait(&self, ticket: Ticket, timeout: Option<Duration>) -> Result<JobOutcome, WaitError> {
        let deadline = timeout.map(|t| Instant::now() + t);
        let mut st = self.lock();
        loop {
            let job = *st.tickets.get(&ticket).ok_or(WaitError::UnknownTicket)?;
            let cell = st.cells.get(&job).ok_or(WaitError::UnknownTicket)?;
            if let Phase::Done(outcome) = &cell.phase {
                let outcome = outcome.clone();
                collect_ticket(&mut st, ticket);
                return Ok(outcome);
            }
            st = match deadline {
                None => self
                    .inner
                    .done_cv
                    .wait(st)
                    .unwrap_or_else(|e| e.into_inner()),
                Some(deadline) => {
                    let left = deadline
                        .checked_duration_since(Instant::now())
                        .ok_or(WaitError::TimedOut)?;
                    let (guard, timeout) = self
                        .inner
                        .done_cv
                        .wait_timeout(st, left)
                        .unwrap_or_else(|e| e.into_inner());
                    if timeout.timed_out() {
                        return Err(WaitError::TimedOut);
                    }
                    guard
                }
            };
        }
    }

    /// Withdraws this ticket's interest in its job and collects the
    /// ticket. The job itself is only cancelled when *no* submission
    /// remains interested (see the module docs). Returns `None` for an
    /// unknown ticket.
    pub fn cancel(&self, ticket: Ticket) -> Option<CancelOutcome> {
        let mut st = self.lock();
        let job = *st.tickets.get(&ticket)?;
        let (outcome, key) = {
            let cell = st.cells.get_mut(&job)?;
            let last = cell.interest <= 1;
            let outcome = match &cell.phase {
                Phase::Done(_) => CancelOutcome::AlreadyDone,
                _ if !last => CancelOutcome::Detached,
                Phase::Queued => {
                    // Tombstone: the heap slot stays; workers skip it.
                    cell.phase = Phase::Done(JobOutcome::Cancelled);
                    CancelOutcome::Cancelled
                }
                Phase::Running => {
                    cell.cancel.store(true, Ordering::Relaxed);
                    CancelOutcome::Signalled
                }
            };
            (outcome, cell.key)
        };
        if outcome == CancelOutcome::Cancelled {
            st.inflight.remove(&key.0);
            st.queued -= 1;
            st.stats.cancelled += 1;
            if let Some(journal) = &self.inner.journal {
                journal.settle(key, "cancelled");
            }
            maybe_compact_journal(&self.inner, &mut st);
        }
        collect_ticket(&mut st, ticket);
        drop(st);
        if outcome == CancelOutcome::Cancelled {
            self.inner.done_cv.notify_all();
        }
        Some(outcome)
    }

    /// Counter snapshot (service + store).
    pub fn stats(&self) -> ServiceStats {
        let mut stats = {
            let st = self.lock();
            let mut stats = st.stats;
            stats.queue_depth = st.queued;
            stats.upgrades_pending = st.upgrades.len() as u64;
            stats.brownout = u64::from(st.admission.level().level());
            stats
        };
        stats.store = self.inner.store.stats();
        stats
    }

    /// What startup recovery found (zeroes when no state was configured).
    pub fn recovery(&self) -> RecoveryInfo {
        self.inner.recovery
    }

    /// The sink service events and per-job run spans are emitted into.
    pub fn obs(&self) -> &ObsSink {
        &self.inner.obs
    }

    /// Graceful-shutdown half: stops admissions, then waits up to
    /// `timeout` for the queue to empty and every running job to
    /// publish. Returns `true` when fully drained. Either way the
    /// journal and spill are flushed and fsynced before returning, so a
    /// follow-up exit (or even a kill) loses nothing that finished.
    ///
    /// Call [`shutdown`](JobService::shutdown) (or drop) afterwards to
    /// join the workers.
    pub fn drain(&self, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        let mut st = self.lock();
        st.shutting_down = true;
        self.inner.work_cv.notify_all();
        self.inner.reaper_cv.notify_all();
        let drained = loop {
            if st.queued == 0 && st.running.is_empty() {
                break true;
            }
            let Some(left) = deadline.checked_duration_since(Instant::now()) else {
                break false;
            };
            let (guard, _) = self
                .inner
                .done_cv
                .wait_timeout(st, left)
                .unwrap_or_else(|e| e.into_inner());
            st = guard;
        };
        drop(st);
        self.sync_durability();
        drained
    }

    /// Stops admitting, drains the queue, and joins every worker.
    /// Queued jobs still run to completion; to abandon one instead,
    /// [`cancel`](JobService::cancel) it first.
    pub fn shutdown(mut self) {
        self.begin_shutdown();
        self.join_and_sync();
    }

    fn begin_shutdown(&self) {
        self.lock().shutting_down = true;
        self.inner.work_cv.notify_all();
        self.inner.reaper_cv.notify_all();
    }

    fn join_and_sync(&mut self) {
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
        self.sync_durability();
    }

    fn sync_durability(&self) {
        let _ = self.inner.store.sync_spill();
        if let Some(journal) = &self.inner.journal {
            let _ = journal.sync();
        }
    }

    fn lock(&self) -> MutexGuard<'_, State> {
        lock_state(&self.inner)
    }
}

impl Drop for JobService {
    fn drop(&mut self) {
        self.begin_shutdown();
        self.join_and_sync();
    }
}

/// Locks the service state, recovering from poison: a worker panic is a
/// supervised event here, not a reason to wedge the whole service. The
/// state is consistent at every await point inside the lock, so the
/// poisoned guard is safe to adopt.
fn lock_state(inner: &Inner) -> MutexGuard<'_, State> {
    inner.state.lock().unwrap_or_else(|e| e.into_inner())
}

/// Exponential backoff for attempt N (1-based): `base * 2^(N-1)`,
/// shift-capped so a pathological attempt count cannot overflow.
pub(crate) fn backoff_delay(base: Duration, attempts: u32) -> Duration {
    base.saturating_mul(1u32 << attempts.saturating_sub(1).min(10))
}

fn journal_settle(inner: &Inner, key: JobKey, outcome: &str) {
    if let Some(journal) = &inner.journal {
        journal.settle(key, outcome);
    }
}

/// Runtime journal compaction: once the file outgrows
/// [`ServeConfig::journal_compact_bytes`], rewrite it to just the live
/// admissions with the same tmp + fsync + rename discipline as startup.
/// Called with the state lock held, so the unfinished set cannot drift
/// between collection and the rewrite (the lock also orders this
/// against every admit/settle append).
fn maybe_compact_journal(inner: &Inner, st: &mut State) {
    let threshold = inner.config.journal_compact_bytes;
    if threshold == 0 {
        return;
    }
    let Some(journal) = &inner.journal else {
        return;
    };
    if journal.len_bytes() < threshold {
        return;
    }
    let mut live: Vec<(JobId, UnfinishedJob)> = st
        .inflight
        .values()
        .filter(|&&job| st.cells.get(&job).is_none_or(|cell| !cell.is_upgrade))
        .filter_map(|&job| {
            st.cells.get(&job).map(|cell| {
                (
                    job,
                    UnfinishedJob {
                        key: cell.key,
                        spec: cell.spec.canonical(),
                        priority: cell.priority,
                    },
                )
            })
        })
        .collect();
    // Admission order: job ids are allocated monotonically.
    live.sort_by_key(|&(job, _)| job);
    let unfinished: Vec<UnfinishedJob> = live.into_iter().map(|(_, job)| job).collect();
    // Outstanding upgrade debt survives compaction: the queued intents
    // plus any upgrade cell currently running (its `upgraded` record
    // hasn't landed yet).
    let mut upgrades: Vec<UpgradeIntent> = st.upgrades.iter().cloned().collect();
    for cell in st.cells.values() {
        if cell.is_upgrade && !matches!(cell.phase, Phase::Done(_)) {
            upgrades.push(UpgradeIntent {
                key: cell.key,
                spec: cell.spec.canonical(),
            });
        }
    }
    if journal.compact_live(&unfinished, &upgrades).is_ok() {
        st.stats.journal_compactions += 1;
    }
}

/// Allocates a cell + first ticket; returns the ticket.
#[allow(clippy::too_many_arguments)]
fn new_cell(
    st: &mut State,
    spec: JobSpec,
    key: JobKey,
    deadline: Option<Instant>,
    submitted: Instant,
    priority: Priority,
    phase: Phase,
    floor: Fidelity,
) -> Ticket {
    let job = st.next_id;
    let ticket = st.next_id + 1;
    st.next_id += 2;
    st.cells.insert(
        job,
        JobCell {
            spec,
            key,
            deadline,
            submitted,
            cancel: Arc::new(AtomicBool::new(false)),
            phase,
            interest: 1,
            priority,
            attempts: 0,
            strikes: 0,
            not_before: None,
            deadline_fired: false,
            planned: Fidelity::Reciprocal,
            floor,
            is_upgrade: false,
        },
    );
    st.tickets.insert(ticket, job);
    ticket
}

/// Removes a ticket; frees the cell once it is terminal and no ticket
/// references it (bounding service memory by *live* submissions).
fn collect_ticket(st: &mut State, ticket: Ticket) {
    let Some(job) = st.tickets.remove(&ticket) else {
        return;
    };
    if let Some(cell) = st.cells.get_mut(&job) {
        cell.interest = cell.interest.saturating_sub(1);
        if cell.interest == 0 && matches!(cell.phase, Phase::Done(_)) {
            st.cells.remove(&job);
        }
    }
}

/// The worker supervisor: runs [`worker_loop`] under `catch_unwind`,
/// and on a panic recovers the victim job and re-enters the loop as the
/// next incarnation of the same worker — the pool never shrinks. (This
/// relies on unwinding panics; the release profile must not set
/// `panic = "abort"`, which `Cargo.toml` documents.)
fn supervise(inner: &Inner, worker_id: usize) {
    let mut incarnation: u64 = 0;
    loop {
        match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            worker_loop(inner, worker_id)
        })) {
            Ok(()) => return, // clean shutdown
            Err(payload) => {
                incarnation += 1;
                let detail = panic_message(payload.as_ref());
                recover_from_panic(inner, worker_id, incarnation, detail);
            }
        }
    }
}

fn panic_message(payload: &(dyn Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic payload of unknown type".to_owned()
    }
}

/// Post-panic cleanup for one worker: charge a strike to the job it was
/// running, requeue it with backoff — or quarantine it as `Poisoned`
/// once it has crossed the strike limit — and account the respawn.
fn recover_from_panic(inner: &Inner, worker_id: usize, incarnation: u64, detail: String) {
    let now = Instant::now();
    let mut st = lock_state(inner);
    st.stats.respawns += 1;
    let victim = st.running.remove(&worker_id);
    let mut victim_key: u64 = 0;
    let mut quarantined: Option<(JobKey, u64, u64)> = None;
    if let Some(job) = victim {
        if let Some(cell) = st.cells.get_mut(&job) {
            victim_key = cell.key.0;
            cell.strikes += 1;
            if cell.strikes >= inner.config.strike_limit.max(1) {
                let key = cell.key;
                let strikes = u64::from(cell.strikes);
                let queue_ns = elapsed_ns(cell.submitted, now);
                cell.phase = Phase::Done(JobOutcome::Poisoned {
                    error: SimError::Fault {
                        component: format!("serve worker {worker_id}"),
                        detail: detail.clone(),
                    }
                    .to_string(),
                });
                let free = cell.interest == 0;
                if free {
                    st.cells.remove(&job);
                }
                st.inflight.remove(&key.0);
                st.stats.poisoned += 1;
                quarantined = Some((key, strikes, queue_ns));
            } else {
                cell.phase = Phase::Queued;
                cell.not_before = Some(now + backoff_delay(inner.config.retry_backoff, cell.attempts));
                let priority = cell.priority;
                let seq = st.next_seq;
                st.next_seq += 1;
                st.queue.push(QueueSlot { priority, seq, job });
                st.queued += 1;
            }
        }
    }
    // Settle *before* releasing the state lock: the journal append must
    // be ordered against any concurrent compaction snapshot (which runs
    // under this lock). Settling after `drop(st)` let a compaction
    // rewrite the file from a snapshot that no longer listed this job
    // and then have the straggling settle record appended for a key the
    // compacted journal never admitted — replay then refused the frame.
    if let Some((key, _, _)) = quarantined {
        journal_settle(inner, key, "poisoned");
        maybe_compact_journal(inner, &mut st);
    }
    drop(st);
    if let Some((key, strikes, queue_ns)) = quarantined {
        inner.obs.emit(|| Event::JobQuarantined {
            job: key.0,
            strikes,
        });
        finish(inner, key, "poisoned", queue_ns, 0, (0, 0));
    }
    inner.obs.emit(|| Event::WorkerRespawn {
        worker: worker_id as u64,
        incarnation,
        job: victim_key,
    });
    inner.work_cv.notify_all();
    inner.done_cv.notify_all();
}

fn worker_loop(inner: &Inner, worker_id: usize) {
    loop {
        // Phase 1: pop the next runnable job — skipping tombstones,
        // expiring the dead, and deferring backoff-gated retries.
        let mut st = lock_state(inner);
        let (job, key, spec, cancel, queue_ns, attempts, planned, is_upgrade) = 'pick: loop {
            let now = Instant::now();
            let mut deferred: Vec<QueueSlot> = Vec::new();
            let mut next_wake: Option<Instant> = None;
            let draining = st.shutting_down;
            let picked = loop {
                let Some(slot) = st.queue.pop() else {
                    break None;
                };
                let Some(cell) = st.cells.get_mut(&slot.job) else {
                    continue; // cancelled and fully collected
                };
                if !matches!(cell.phase, Phase::Queued) {
                    continue; // cancellation tombstone
                }
                if cell.deadline.is_some_and(|d| now > d) {
                    let key = cell.key;
                    let queue_ns = elapsed_ns(cell.submitted, now);
                    cell.phase = Phase::Done(JobOutcome::DeadlineExpired);
                    let free = cell.interest == 0;
                    if free {
                        st.cells.remove(&slot.job);
                    }
                    st.inflight.remove(&key.0);
                    st.queued -= 1;
                    st.stats.expired += 1;
                    journal_settle(inner, key, "deadline_expired");
                    maybe_compact_journal(inner, &mut st);
                    finish(inner, key, "deadline_expired", queue_ns, 0, (0, 0));
                    continue;
                }
                // A backoff-gated retry waits its turn — unless we are
                // draining, when waiting would just delay shutdown.
                if let Some(gate) = cell.not_before {
                    if now < gate && !draining {
                        next_wake = Some(next_wake.map_or(gate, |w| w.min(gate)));
                        deferred.push(slot);
                        continue;
                    }
                }
                cell.not_before = None;
                cell.attempts += 1;
                cell.phase = Phase::Running;
                break Some((
                    slot.job,
                    cell.key,
                    cell.spec.clone(),
                    cell.cancel.clone(),
                    elapsed_ns(cell.submitted, now),
                    cell.attempts,
                    cell.planned,
                    cell.is_upgrade,
                ));
            };
            for slot in deferred {
                st.queue.push(slot);
            }
            if let Some(out) = picked {
                st.queued -= 1;
                st.running.insert(worker_id, out.0);
                // Feed the measured queue delay to the brownout
                // controller — the saturation signal a depth snapshot
                // alone misses.
                st.admission.observe_queue_delay(Duration::from_nanos(out.4));
                break 'pick out;
            }
            if st.shutting_down && st.queue.is_empty() {
                return;
            }
            // The controller's observations normally arrive with
            // submissions; when a storm ends and traffic stops, the
            // ladder would wedge at its last level (and the upgrade
            // drain below, gated on Normal, would never run). Idle
            // workers with an empty queue feed zero-delay observations
            // so the pressure EWMA decays and the ladder steps down.
            if st.queued == 0 && st.admission.level() != BrownoutLevel::Normal {
                st.admission.observe_queue_delay(Duration::ZERO);
                if let Some(change) = st.admission.update(0, inner.config.queue_capacity) {
                    st.stats.brownout = u64::from(change.to.level());
                    inner.obs.emit(|| {
                        if change.to.level() > change.from.level() {
                            Event::BrownoutEnter {
                                level: u64::from(change.to.level()),
                                pressure: change.pressure,
                            }
                        } else {
                            Event::BrownoutExit {
                                level: u64::from(change.to.level()),
                                pressure: change.pressure,
                            }
                        }
                    });
                }
            }
            // Idle-priority upgrade drain: only with an empty queue, no
            // backoff-gated retry pending, and the brownout fully
            // cleared does a worker spend cycles re-earning fidelity.
            if inner.config.background_upgrades
                && st.queued == 0
                && next_wake.is_none()
                && st.admission.level() == BrownoutLevel::Normal
            {
                if let Some(intent) = st.upgrades.pop_front() {
                    st.upgrade_keys.remove(&intent.key.0);
                    if st.inflight.contains_key(&intent.key.0) {
                        // The in-flight run for this key either lands at
                        // full fidelity or re-journals the debt; retry
                        // the intent later (fall through to the wait).
                        st.upgrade_keys.insert(intent.key.0);
                        st.upgrades.push_back(intent);
                    } else if inner
                        .store
                        .fidelity_of(intent.key)
                        .is_none_or(|f| f >= Fidelity::Reciprocal)
                    {
                        // Already full fidelity, or evicted: moot.
                        if let Some(journal) = &inner.journal {
                            journal.upgraded(intent.key);
                        }
                        continue 'pick;
                    } else {
                        match intent.spec.parse::<JobSpec>() {
                            Err(_) => {
                                // A stale or foreign spec can never run;
                                // write the debt off rather than wedge.
                                if let Some(journal) = &inner.journal {
                                    journal.upgraded(intent.key);
                                }
                                continue 'pick;
                            }
                            Ok(spec) => {
                                let job = st.next_id;
                                st.next_id += 1;
                                let cancel = Arc::new(AtomicBool::new(false));
                                st.cells.insert(
                                    job,
                                    JobCell {
                                        spec: spec.clone(),
                                        key: intent.key,
                                        deadline: None,
                                        submitted: now,
                                        cancel: cancel.clone(),
                                        phase: Phase::Running,
                                        interest: 0,
                                        priority: Priority::Low,
                                        attempts: 1,
                                        strikes: 0,
                                        not_before: None,
                                        deadline_fired: false,
                                        planned: Fidelity::Reciprocal,
                                        floor: Fidelity::Hop,
                                        is_upgrade: true,
                                    },
                                );
                                st.inflight.insert(intent.key.0, job);
                                st.running.insert(worker_id, job);
                                break 'pick (
                                    job,
                                    intent.key,
                                    spec,
                                    cancel,
                                    0,
                                    1,
                                    Fidelity::Reciprocal,
                                    true,
                                );
                            }
                        }
                    }
                }
            }
            // While the post-storm ladder is still stepping down, poll
            // on a short tick so the decay observations above keep
            // flowing; once the ladder is clear (or load returns) the
            // workers park on the condvar as usual.
            let decay_tick = (st.queued == 0
                && st.admission.level() != BrownoutLevel::Normal)
                .then(|| Instant::now() + Duration::from_millis(25));
            let wake = match (next_wake, decay_tick) {
                (Some(a), Some(b)) => Some(a.min(b)),
                (a, b) => a.or(b),
            };
            st = match wake {
                Some(at) => {
                    let wait = at
                        .saturating_duration_since(Instant::now())
                        .max(Duration::from_millis(1));
                    inner
                        .work_cv
                        .wait_timeout(st, wait)
                        .unwrap_or_else(|e| e.into_inner())
                        .0
                }
                None => inner.work_cv.wait(st).unwrap_or_else(|e| e.into_inner()),
            };
        };
        drop(st);

        // Phase 2: simulate, with per-job spans flowing into the shared
        // sink and the cancel flag armed on the engine's watchdog poll.
        // Chaos injection happens here, outside every lock, so an
        // injected panic unwinds exactly like an engine panic would.
        let chaos = &inner.config.chaos;
        if chaos.panic_on_seeds.contains(&spec.seed) {
            panic!("chaos: injected worker panic (seed {})", spec.seed);
        }
        let started = Instant::now();
        let run = if chaos.fault_on_seeds.contains(&spec.seed) && attempts <= chaos.fault_attempts {
            Err(SimError::Fault {
                component: "chaos injector".to_owned(),
                detail: format!("injected transient fault (attempt {attempts})"),
            })
        } else {
            // The planned rung decides how much machinery runs: `hop`
            // swaps the mode for the analytic model, `calibrated`
            // serves from the calibrated replay path, `reciprocal` is
            // the full co-simulation. The cache key stays the
            // original spec's in every case — that shared slot is
            // what lets a later upgrade replace the answer in place.
            let exec_spec;
            let exec = match planned {
                Fidelity::Hop => {
                    let mut s = spec.clone();
                    s.mode = ModeSpec::Hop;
                    exec_spec = s;
                    exec_spec.to_run_spec()
                }
                Fidelity::Calibrated => spec.to_run_spec().calibrated_only(true),
                Fidelity::Reciprocal => spec.to_run_spec(),
            };
            exec.cancel_flag(cancel.clone())
                .recorder(inner.obs.clone())
                .run()
        };
        let run_ns = elapsed_ns(started, Instant::now());

        // Phase 3: publish the outcome — or schedule a retry. The store
        // insert happens under the state lock (lock order is state →
        // store) because the calibrated-tier error bound reads the
        // drift EWMA that full-fidelity runs feed.
        let mut st = lock_state(inner);
        st.running.remove(&worker_id);
        let now = Instant::now();
        enum Next {
            Publish(JobOutcome),
            Retry(Instant, Priority),
            Requeue(Fidelity),
        }
        let mut prev_fidelity: Option<Fidelity> = None;
        let next = match run {
            Ok(result) => {
                let result = Arc::new(result);
                let error_bound = match planned {
                    Fidelity::Reciprocal => {
                        // Relative drift: mean coupler correction over
                        // mean observed latency. Full runs calibrate
                        // the bound the cheaper rungs will report.
                        let rel = result.coupler.as_ref().map_or(0.0, |c| {
                            let lat = result.latency.mean();
                            if lat > 0.0 {
                                (c.drift.mean() / lat).abs().min(1.0)
                            } else {
                                0.0
                            }
                        });
                        if rel.is_finite() && rel > 0.0 {
                            st.drift.observe(rel);
                        }
                        rel
                    }
                    Fidelity::Calibrated => {
                        if st.drift.primed() {
                            (2.0 * st.drift.value()).max(CALIBRATED_ERROR_FLOOR)
                        } else {
                            CALIBRATED_ERROR_FLOOR
                        }
                    }
                    Fidelity::Hop => HOP_ERROR_BOUND,
                };
                if is_upgrade {
                    prev_fidelity = inner.store.fidelity_of(key);
                }
                inner.store.insert(
                    key,
                    &spec.canonical(),
                    StoredResult {
                        result: result.clone(),
                        fidelity: planned,
                        error_bound,
                    },
                );
                // A waiter that coalesced mid-run may demand more
                // fidelity than this run delivered; go around again at
                // the raised floor instead of settling short.
                let floor = st.cells.get(&job).map_or(Fidelity::Hop, |c| c.floor);
                if !is_upgrade && planned < floor {
                    Next::Requeue(floor)
                } else {
                    Next::Publish(JobOutcome::Completed {
                        result,
                        cached: false,
                        fidelity: planned,
                        error_bound,
                        queue_ns,
                        run_ns,
                    })
                }
            }
            Err(err) => match st.cells.get_mut(&job) {
                None => Next::Publish(JobOutcome::Failed {
                    error: err.to_string(),
                }),
                Some(cell) => {
                    let deadline_fired = cell.deadline_fired;
                    if matches!(err, SimError::Cancelled { .. })
                        || cancel.load(Ordering::Relaxed)
                    {
                        Next::Publish(if deadline_fired {
                            JobOutcome::DeadlineExceeded
                        } else {
                            JobOutcome::Cancelled
                        })
                    } else if err.is_transient() && cell.attempts <= inner.config.retry_budget {
                        let resume = now + backoff_delay(inner.config.retry_backoff, cell.attempts);
                        if cell.deadline.is_some_and(|d| resume >= d) {
                            Next::Publish(JobOutcome::Failed {
                                error: format!("{err}; no retry budget left before the deadline"),
                            })
                        } else {
                            Next::Retry(resume, cell.priority)
                        }
                    } else {
                        Next::Publish(JobOutcome::Failed {
                            error: err.to_string(),
                        })
                    }
                }
            },
        };
        match next {
            Next::Retry(resume, priority) => {
                if let Some(cell) = st.cells.get_mut(&job) {
                    cell.phase = Phase::Queued;
                    cell.not_before = Some(resume);
                }
                let seq = st.next_seq;
                st.next_seq += 1;
                st.queue.push(QueueSlot { priority, seq, job });
                st.queued += 1;
                st.stats.retries += 1;
                drop(st);
                // notify_all: the retry may be gated, and only a timed
                // waiter re-arms the backoff wake-up.
                inner.work_cv.notify_all();
            }
            Next::Requeue(floor) => {
                let priority = match st.cells.get_mut(&job) {
                    Some(cell) => {
                        cell.phase = Phase::Queued;
                        cell.planned = floor;
                        cell.not_before = None;
                        cell.priority
                    }
                    None => Priority::Normal,
                };
                let seq = st.next_seq;
                st.next_seq += 1;
                st.queue.push(QueueSlot { priority, seq, job });
                st.queued += 1;
                drop(st);
                inner.work_cv.notify_all();
            }
            Next::Publish(outcome) => {
                let mut spec_counters = (0u64, 0u64);
                let mut degraded = false;
                match &outcome {
                    JobOutcome::Completed { result, fidelity, .. } => {
                        st.stats.completed += 1;
                        degraded = *fidelity < Fidelity::Reciprocal;
                        if let Some(c) = &result.coupler {
                            spec_counters = (c.spec_commits, c.spec_rollbacks);
                            st.stats.spec_commits += c.spec_commits;
                            st.stats.spec_rollbacks += c.spec_rollbacks;
                        }
                    }
                    JobOutcome::Cancelled => st.stats.cancelled += 1,
                    JobOutcome::DeadlineExceeded => st.stats.deadline_exceeded += 1,
                    _ => st.stats.failed += 1,
                }
                // A degraded answer leaves an upgrade debt: journaled
                // (so a restart re-owes it) and queued in memory for
                // the idle drain. An upgrade run — success or not —
                // clears its debt; a failed upgrade is written off
                // rather than retried forever.
                if is_upgrade {
                    if let Some(journal) = &inner.journal {
                        journal.upgraded(key);
                    }
                    if !degraded && matches!(outcome, JobOutcome::Completed { .. }) {
                        st.stats.upgraded += 1;
                        let from = prev_fidelity.unwrap_or(Fidelity::Hop);
                        inner.obs.emit(|| Event::ResultUpgraded {
                            job: key.0,
                            from: from.name().to_owned(),
                            to: Fidelity::Reciprocal.name().to_owned(),
                        });
                    }
                } else if degraded {
                    st.stats.degraded += 1;
                    if st.upgrade_keys.insert(key.0) {
                        st.upgrades.push_back(UpgradeIntent {
                            key,
                            spec: spec.canonical(),
                        });
                        if let Some(journal) = &inner.journal {
                            journal.upgrade(key, &spec.canonical());
                        }
                    }
                }
                st.stats.upgrades_pending = st.upgrades.len() as u64;
                let label = outcome.label();
                let free = match st.cells.get_mut(&job) {
                    Some(cell) => {
                        cell.phase = Phase::Done(outcome);
                        cell.interest == 0
                    }
                    None => false,
                };
                if free {
                    st.cells.remove(&job);
                }
                st.inflight.remove(&key.0);
                if !is_upgrade {
                    journal_settle(inner, key, label);
                }
                maybe_compact_journal(inner, &mut st);
                let wake_upgraders = !st.upgrades.is_empty() && st.queued == 0;
                drop(st);
                finish(inner, key, label, queue_ns, run_ns, spec_counters);
                if wake_upgraders {
                    // Idle workers only drain upgrades from inside the
                    // pick loop; make sure one looks.
                    inner.work_cv.notify_all();
                }
            }
        }
    }
}

/// The deadline reaper: expires queued jobs whose deadline passed
/// without a run, and raises the cancel flag of *running* jobs past
/// theirs (exactly once — `deadline_fired`), so the engine's watchdog
/// poll stops them cooperatively and they publish as
/// [`JobOutcome::DeadlineExceeded`].
fn reaper_loop(inner: &Inner) {
    let mut st = lock_state(inner);
    loop {
        if st.shutting_down {
            return;
        }
        let now = Instant::now();
        let mut expired: Vec<JobId> = Vec::new();
        let mut fire: Vec<JobId> = Vec::new();
        let mut next_deadline: Option<Instant> = None;
        for (&job, cell) in &st.cells {
            let Some(deadline) = cell.deadline else {
                continue;
            };
            match cell.phase {
                Phase::Queued if now > deadline => expired.push(job),
                Phase::Running if now > deadline => {
                    if !cell.deadline_fired {
                        fire.push(job);
                    }
                }
                Phase::Queued | Phase::Running => {
                    next_deadline = Some(next_deadline.map_or(deadline, |d| d.min(deadline)));
                }
                Phase::Done(_) => {}
            }
        }
        for job in expired {
            let Some(cell) = st.cells.get_mut(&job) else {
                continue;
            };
            if !matches!(cell.phase, Phase::Queued) {
                continue;
            }
            let key = cell.key;
            let queue_ns = elapsed_ns(cell.submitted, now);
            cell.phase = Phase::Done(JobOutcome::DeadlineExpired);
            let free = cell.interest == 0;
            if free {
                st.cells.remove(&job);
            }
            st.inflight.remove(&key.0);
            st.queued -= 1;
            st.stats.expired += 1;
            journal_settle(inner, key, "deadline_expired");
            maybe_compact_journal(inner, &mut st);
            finish(inner, key, "deadline_expired", queue_ns, 0, (0, 0));
        }
        for job in fire {
            let Some(cell) = st.cells.get_mut(&job) else {
                continue;
            };
            if !matches!(cell.phase, Phase::Running) || cell.deadline_fired {
                continue;
            }
            cell.deadline_fired = true;
            cell.cancel.store(true, Ordering::Relaxed);
            let key = cell.key.0;
            let overrun_ms = cell
                .deadline
                .map_or(0, |d| now.saturating_duration_since(d).as_millis() as u64);
            inner.obs.emit(|| Event::DeadlineCancel {
                job: key,
                overrun_ms,
            });
        }
        st = match next_deadline {
            Some(at) => {
                let wait = at
                    .saturating_duration_since(Instant::now())
                    .max(Duration::from_millis(1));
                inner
                    .reaper_cv
                    .wait_timeout(st, wait)
                    .unwrap_or_else(|e| e.into_inner())
                    .0
            }
            None => inner.reaper_cv.wait(st).unwrap_or_else(|e| e.into_inner()),
        };
    }
}

/// Emits `job_done` and wakes waiters. The recorder lock is a leaf in
/// the lock order (nothing holding it ever takes the state lock), so
/// this is safe to call with or without the state lock held.
fn finish(inner: &Inner, key: JobKey, label: &str, queue_ns: u64, run_ns: u64, spec: (u64, u64)) {
    inner.obs.emit(|| Event::JobDone {
        job: key.0,
        outcome: label.to_owned(),
        queue_ns,
        run_ns,
        spec_commits: spec.0,
        spec_rollbacks: spec.1,
    });
    inner.done_cv.notify_all();
}

fn elapsed_ns(from: Instant, to: Instant) -> u64 {
    to.saturating_duration_since(from).as_nanos() as u64
}
