//! Job scheduling: bounded admission, priorities, deadlines, a fixed
//! worker pool, single-flight coalescing, and cooperative cancellation.
//!
//! # Admission and backpressure
//!
//! The queue is bounded ([`ServeConfig::queue_capacity`]). A submission
//! that would overflow it is *rejected at the door* with
//! [`Rejected::QueueFull`] — an explicit signal the client can see and
//! retry on — never silently dropped or unboundedly buffered. Every
//! rejection also emits [`Event::JobRejected`], so a trace with a
//! `job_rejected` line is the ground truth for "the service shed load".
//!
//! # Single-flight coalescing
//!
//! Identical jobs (same [`JobKey`]) are *coalesced*: the first
//! submission enqueues a run; later submissions while it is queued or
//! running attach to the same in-flight entry and share its outcome. N
//! concurrent submissions of one spec cost one simulation. Completed
//! results land in the [`ResultStore`], so later resubmissions are
//! cache hits without any scheduling at all.
//!
//! # Cancellation
//!
//! Cancellation reuses the run-loop watchdog plumbing: each job owns an
//! `Arc<AtomicBool>` handed to [`RunSpec::cancel_flag`], which the
//! full-system engine polls every 512 cycles and honours with
//! `SimError::Cancelled`. Because coalesced submissions share one run,
//! cancellation is *interest-counted*: cancelling one ticket detaches
//! that submission; only when the last interested ticket cancels is the
//! flag actually raised (or the queued entry tombstoned).
//!
//! [`RunSpec::cancel_flag`]: ra_cosim::RunSpec::cancel_flag
//! [`Event::JobRejected`]: ra_obs::Event::JobRejected

use std::collections::{BinaryHeap, HashMap};
use std::fmt;
use std::path::PathBuf;
use std::str::FromStr;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use ra_cosim::RunResult;
use ra_obs::{Event, ObsSink};
use ra_sim::SimError;

use crate::spec::{JobKey, JobSpec};
use crate::store::{ResultStore, StoreStats};

/// Scheduling priority. Higher priorities always dequeue first; within a
/// priority the queue is FIFO.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default)]
pub enum Priority {
    /// Background work (sweeps, prefetching).
    Low,
    /// The default.
    #[default]
    Normal,
    /// Interactive requests.
    High,
}

impl Priority {
    /// Numeric rank for observability events (0 = low, 2 = high).
    pub fn rank(self) -> u64 {
        match self {
            Priority::Low => 0,
            Priority::Normal => 1,
            Priority::High => 2,
        }
    }
}

impl fmt::Display for Priority {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Priority::Low => "low",
            Priority::Normal => "normal",
            Priority::High => "high",
        })
    }
}

impl FromStr for Priority {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "low" => Ok(Priority::Low),
            "normal" => Ok(Priority::Normal),
            "high" => Ok(Priority::High),
            other => Err(format!("unknown priority `{other}` (low/normal/high)")),
        }
    }
}

/// Why a submission was turned away at the door.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Rejected {
    /// The admission queue is at capacity — the backpressure signal.
    /// `depth` is the queue depth the client collided with.
    QueueFull {
        /// Queued jobs at rejection time.
        depth: usize,
    },
    /// The service is shutting down and admits nothing new.
    ShuttingDown,
}

impl fmt::Display for Rejected {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Rejected::QueueFull { depth } => {
                write!(f, "admission queue full ({depth} queued); retry later")
            }
            Rejected::ShuttingDown => f.write_str("service is shutting down"),
        }
    }
}

impl std::error::Error for Rejected {}

/// How a submission was admitted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Disposition {
    /// Result was already memoized; the ticket is immediately ready.
    CacheHit,
    /// Attached to an identical job already queued or running.
    Coalesced,
    /// Enqueued as a fresh run; `depth` is the queue depth after.
    Enqueued {
        /// Queued jobs after admission.
        depth: usize,
    },
}

impl Disposition {
    /// Wire label (`cached` / `coalesced` / `enqueued`).
    pub fn label(self) -> &'static str {
        match self {
            Disposition::CacheHit => "cached",
            Disposition::Coalesced => "coalesced",
            Disposition::Enqueued { .. } => "enqueued",
        }
    }
}

/// A submission handle: use it with [`JobService::status`],
/// [`JobService::wait`], and [`JobService::cancel`].
pub type Ticket = u64;

/// What [`JobService::submit`] returns on admission.
#[derive(Debug, Clone)]
pub struct SubmitReceipt {
    /// Handle for status/wait/cancel.
    pub ticket: Ticket,
    /// Content hash of the submitted spec.
    pub job: JobKey,
    /// How the submission was admitted.
    pub disposition: Disposition,
}

/// Terminal state of a job.
#[derive(Debug, Clone)]
pub enum JobOutcome {
    /// The simulation finished (or was already memoized).
    Completed {
        /// The run's results, shared with the cache.
        result: Arc<RunResult>,
        /// True when served from the memo store without simulating.
        cached: bool,
        /// Nanoseconds spent queued before the run started.
        queue_ns: u64,
        /// Nanoseconds spent simulating.
        run_ns: u64,
    },
    /// The simulation errored (budget exhausted, stall, ...).
    Failed {
        /// Rendered `SimError` chain.
        error: String,
    },
    /// Every interested submission cancelled before completion.
    Cancelled,
    /// The job was still queued past its deadline and never ran.
    DeadlineExpired,
}

impl JobOutcome {
    /// Stable label for wire responses and [`Event::JobDone`].
    ///
    /// [`Event::JobDone`]: ra_obs::Event::JobDone
    pub fn label(&self) -> &'static str {
        match self {
            JobOutcome::Completed { cached: true, .. } => "cached",
            JobOutcome::Completed { cached: false, .. } => "completed",
            JobOutcome::Failed { .. } => "failed",
            JobOutcome::Cancelled => "cancelled",
            JobOutcome::DeadlineExpired => "deadline_expired",
        }
    }
}

/// Non-terminal view of a job for the `status` verb.
#[derive(Debug, Clone)]
pub enum JobStatus {
    /// Waiting in the admission queue.
    Queued,
    /// A worker is simulating it.
    Running,
    /// Finished; the outcome is ready to collect.
    Done(JobOutcome),
}

impl JobStatus {
    /// Stable label for wire responses.
    pub fn label(&self) -> &'static str {
        match self {
            JobStatus::Queued => "queued",
            JobStatus::Running => "running",
            JobStatus::Done(outcome) => outcome.label(),
        }
    }
}

/// Why [`JobService::wait`] returned without an outcome.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WaitError {
    /// No such ticket (never issued, or already collected/cancelled).
    UnknownTicket,
    /// The timeout elapsed first; the ticket stays valid.
    TimedOut,
}

impl fmt::Display for WaitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WaitError::UnknownTicket => f.write_str("unknown ticket"),
            WaitError::TimedOut => f.write_str("timed out waiting for the job"),
        }
    }
}

impl std::error::Error for WaitError {}

/// What [`JobService::cancel`] did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CancelOutcome {
    /// This was the last interested ticket of a *queued* job: it will
    /// never run.
    Cancelled,
    /// This was the last interested ticket of a *running* job: the halt
    /// flag is raised and the engine will stop at the next poll.
    Signalled,
    /// Other submissions still want the job; only this ticket detached.
    Detached,
    /// The job had already finished; the ticket was simply collected.
    AlreadyDone,
}

/// Tuning knobs for [`JobService::start`].
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Simulation worker threads.
    pub workers: usize,
    /// Bounded admission-queue capacity (queued, not running, jobs).
    pub queue_capacity: usize,
    /// Result-cache capacity in entries.
    pub cache_capacity: usize,
    /// Result-cache lock shards.
    pub cache_shards: usize,
    /// Optional JSONL spill log for completed results.
    pub spill: Option<PathBuf>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workers: 2,
            queue_capacity: 64,
            cache_capacity: 256,
            cache_shards: 8,
            spill: None,
        }
    }
}

/// Counter snapshot for the `stats` verb and the smoke tests.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServiceStats {
    /// Submissions received (including rejected ones).
    pub submitted: u64,
    /// Fresh runs admitted to the queue.
    pub admitted: u64,
    /// Submissions rejected with [`Rejected::QueueFull`].
    pub rejected: u64,
    /// Submissions attached to an in-flight identical job.
    pub coalesced: u64,
    /// Submissions served straight from the result store.
    pub cache_hits: u64,
    /// Runs that completed successfully.
    pub completed: u64,
    /// Runs that errored.
    pub failed: u64,
    /// Jobs cancelled before or during their run.
    pub cancelled: u64,
    /// Jobs that expired in the queue.
    pub expired: u64,
    /// Jobs queued right now.
    pub queue_depth: usize,
    /// Result-store counters.
    pub store: StoreStats,
}

type JobId = u64;

#[derive(Debug)]
enum Phase {
    Queued,
    Running,
    Done(JobOutcome),
}

struct JobCell {
    spec: JobSpec,
    key: JobKey,
    deadline: Option<Instant>,
    submitted: Instant,
    cancel: Arc<AtomicBool>,
    phase: Phase,
    /// Live submissions (tickets not yet collected or cancelled).
    interest: usize,
}

/// Max-heap slot: higher priority first, then FIFO by sequence number.
#[derive(PartialEq, Eq)]
struct QueueSlot {
    priority: Priority,
    seq: u64,
    job: JobId,
}

impl Ord for QueueSlot {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.priority
            .cmp(&other.priority)
            .then(other.seq.cmp(&self.seq))
    }
}

impl PartialOrd for QueueSlot {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

#[derive(Default)]
struct State {
    queue: BinaryHeap<QueueSlot>,
    cells: HashMap<JobId, JobCell>,
    /// key -> queued-or-running job, for single-flight coalescing.
    inflight: HashMap<u64, JobId>,
    tickets: HashMap<Ticket, JobId>,
    next_id: u64,
    next_seq: u64,
    /// Live (non-tombstoned) queued jobs — what `queue_capacity` bounds.
    queued: usize,
    shutting_down: bool,
    stats: ServiceStats,
}

struct Inner {
    state: Mutex<State>,
    /// Wakes workers when work arrives or shutdown starts.
    work_cv: Condvar,
    /// Wakes `wait`ers whenever any job reaches a terminal phase.
    done_cv: Condvar,
    store: ResultStore,
    obs: ObsSink,
    config: ServeConfig,
}

/// A multi-worker simulation-job service: canonical [`JobSpec`]s in,
/// memoized [`RunResult`]s out.
///
/// ```
/// use ra_serve::{JobService, ServeConfig};
///
/// let service = JobService::start(ServeConfig::default(), ra_obs::ObsSink::disabled())?;
/// let spec = "target=2x2 app=water mode=fixed:10 instructions=20 budget=100000"
///     .parse::<ra_serve::JobSpec>()
///     .map_err(|e| std::io::Error::other(e.to_string()))?;
/// let receipt = service.submit(spec, Default::default(), None).expect("admitted");
/// let outcome = service.wait(receipt.ticket, None).expect("completes");
/// assert_eq!(outcome.label(), "completed");
/// service.shutdown();
/// # Ok::<(), std::io::Error>(())
/// ```
pub struct JobService {
    inner: Arc<Inner>,
    workers: Vec<JoinHandle<()>>,
}

impl JobService {
    /// Spawns the worker pool and opens the spill log (if configured).
    ///
    /// # Errors
    ///
    /// Propagates the spill-log open failure.
    pub fn start(config: ServeConfig, obs: ObsSink) -> std::io::Result<JobService> {
        let mut store = ResultStore::new(config.cache_capacity, config.cache_shards);
        if let Some(path) = &config.spill {
            store = store.with_spill(path)?;
        }
        let inner = Arc::new(Inner {
            state: Mutex::new(State::default()),
            work_cv: Condvar::new(),
            done_cv: Condvar::new(),
            store,
            obs,
            config: config.clone(),
        });
        let workers = (0..config.workers.max(1))
            .map(|i| {
                let inner = inner.clone();
                std::thread::Builder::new()
                    .name(format!("ra-serve-worker-{i}"))
                    .spawn(move || worker_loop(&inner))
                    .expect("spawn worker")
            })
            .collect();
        Ok(JobService { inner, workers })
    }

    /// Submits a job. `deadline` bounds *queue wait*: a job still queued
    /// when it elapses never runs and finishes as
    /// [`JobOutcome::DeadlineExpired`].
    ///
    /// # Errors
    ///
    /// [`Rejected::QueueFull`] when the admission queue is at capacity
    /// (the backpressure signal), [`Rejected::ShuttingDown`] after
    /// [`shutdown`](JobService::shutdown) began.
    pub fn submit(
        &self,
        spec: JobSpec,
        priority: Priority,
        deadline: Option<Duration>,
    ) -> Result<SubmitReceipt, Rejected> {
        let key = spec.job_hash();
        let now = Instant::now();
        let mut st = self.lock();
        if st.shutting_down {
            return Err(Rejected::ShuttingDown);
        }
        st.stats.submitted += 1;

        // Tier 1: the memo store. (Lock order is always state -> store.)
        if let Some(result) = self.inner.store.get(key) {
            st.stats.cache_hits += 1;
            let ticket = new_cell(
                &mut st,
                spec,
                key,
                None,
                now,
                Phase::Done(JobOutcome::Completed {
                    result,
                    cached: true,
                    queue_ns: 0,
                    run_ns: 0,
                }),
            );
            drop(st);
            self.inner.obs.emit(|| Event::CacheHit { job: key.0 });
            // The outcome is already terminal; let sleeping waiters of
            // other tickets coexist — only this ticket's waiter matters,
            // and it will observe Done immediately.
            return Ok(SubmitReceipt {
                ticket,
                job: key,
                disposition: Disposition::CacheHit,
            });
        }

        // Tier 2: single-flight — attach to an identical in-flight job.
        if let Some(&job) = st.inflight.get(&key.0) {
            let ticket = st.next_id;
            st.next_id += 1;
            st.tickets.insert(ticket, job);
            st.cells.get_mut(&job).expect("inflight cell").interest += 1;
            st.stats.coalesced += 1;
            drop(st);
            self.inner.obs.emit(|| Event::CacheHit { job: key.0 });
            return Ok(SubmitReceipt {
                ticket,
                job: key,
                disposition: Disposition::Coalesced,
            });
        }

        // Tier 3: a fresh run — subject to bounded admission.
        if st.queued >= self.inner.config.queue_capacity {
            let depth = st.queued;
            st.stats.rejected += 1;
            drop(st);
            self.inner.obs.emit(|| Event::JobRejected {
                job: key.0,
                queue_depth: depth as u64,
            });
            return Err(Rejected::QueueFull { depth });
        }
        let ticket = new_cell(
            &mut st,
            spec,
            key,
            deadline.map(|d| now + d),
            now,
            Phase::Queued,
        );
        let job = st.tickets[&ticket];
        st.inflight.insert(key.0, job);
        let seq = st.next_seq;
        st.next_seq += 1;
        st.queue.push(QueueSlot { priority, seq, job });
        st.queued += 1;
        st.stats.admitted += 1;
        let depth = st.queued;
        drop(st);
        self.inner.work_cv.notify_one();
        self.inner.obs.emit(|| Event::JobAdmitted {
            job: key.0,
            queue_depth: depth as u64,
            priority: priority.rank(),
        });
        Ok(SubmitReceipt {
            ticket,
            job: key,
            disposition: Disposition::Enqueued { depth },
        })
    }

    /// Non-consuming snapshot of a ticket's job, or `None` for an
    /// unknown (or already collected) ticket.
    pub fn status(&self, ticket: Ticket) -> Option<JobStatus> {
        let st = self.lock();
        let cell = st.cells.get(st.tickets.get(&ticket)?)?;
        Some(match &cell.phase {
            Phase::Queued => JobStatus::Queued,
            Phase::Running => JobStatus::Running,
            Phase::Done(outcome) => JobStatus::Done(outcome.clone()),
        })
    }

    /// Blocks until the ticket's job finishes, then *collects* the
    /// ticket (it stops resolving afterwards). `None` waits forever.
    ///
    /// # Errors
    ///
    /// [`WaitError::TimedOut`] leaves the ticket collectable later;
    /// [`WaitError::UnknownTicket`] means it never existed or was
    /// already collected.
    pub fn wait(&self, ticket: Ticket, timeout: Option<Duration>) -> Result<JobOutcome, WaitError> {
        let deadline = timeout.map(|t| Instant::now() + t);
        let mut st = self.lock();
        loop {
            let job = *st.tickets.get(&ticket).ok_or(WaitError::UnknownTicket)?;
            let cell = st.cells.get(&job).ok_or(WaitError::UnknownTicket)?;
            if let Phase::Done(outcome) = &cell.phase {
                let outcome = outcome.clone();
                collect_ticket(&mut st, ticket);
                return Ok(outcome);
            }
            st = match deadline {
                None => self.inner.done_cv.wait(st).expect("service state poisoned"),
                Some(deadline) => {
                    let left = deadline
                        .checked_duration_since(Instant::now())
                        .ok_or(WaitError::TimedOut)?;
                    let (guard, timeout) = self
                        .inner
                        .done_cv
                        .wait_timeout(st, left)
                        .expect("service state poisoned");
                    if timeout.timed_out() {
                        return Err(WaitError::TimedOut);
                    }
                    guard
                }
            };
        }
    }

    /// Withdraws this ticket's interest in its job and collects the
    /// ticket. The job itself is only cancelled when *no* submission
    /// remains interested (see the module docs). Returns `None` for an
    /// unknown ticket.
    pub fn cancel(&self, ticket: Ticket) -> Option<CancelOutcome> {
        let mut st = self.lock();
        let job = *st.tickets.get(&ticket)?;
        let (outcome, key) = {
            let cell = st.cells.get_mut(&job)?;
            let last = cell.interest <= 1;
            let outcome = match &cell.phase {
                Phase::Done(_) => CancelOutcome::AlreadyDone,
                _ if !last => CancelOutcome::Detached,
                Phase::Queued => {
                    // Tombstone: the heap slot stays; workers skip it.
                    cell.phase = Phase::Done(JobOutcome::Cancelled);
                    CancelOutcome::Cancelled
                }
                Phase::Running => {
                    cell.cancel.store(true, Ordering::Relaxed);
                    CancelOutcome::Signalled
                }
            };
            (outcome, cell.key)
        };
        if outcome == CancelOutcome::Cancelled {
            st.inflight.remove(&key.0);
            st.queued -= 1;
            st.stats.cancelled += 1;
        }
        collect_ticket(&mut st, ticket);
        drop(st);
        if outcome == CancelOutcome::Cancelled {
            self.inner.done_cv.notify_all();
        }
        Some(outcome)
    }

    /// Counter snapshot (service + store).
    pub fn stats(&self) -> ServiceStats {
        let mut stats = {
            let st = self.lock();
            let mut stats = st.stats;
            stats.queue_depth = st.queued;
            stats
        };
        stats.store = self.inner.store.stats();
        stats
    }

    /// The sink service events and per-job run spans are emitted into.
    pub fn obs(&self) -> &ObsSink {
        &self.inner.obs
    }

    /// Stops admitting, drains the queue, and joins every worker.
    /// Queued jobs still run to completion; to abandon one instead,
    /// [`cancel`](JobService::cancel) it first.
    pub fn shutdown(mut self) {
        self.begin_shutdown();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }

    fn begin_shutdown(&self) {
        self.lock().shutting_down = true;
        self.inner.work_cv.notify_all();
    }

    fn lock(&self) -> MutexGuard<'_, State> {
        self.inner.state.lock().expect("service state poisoned")
    }
}

impl Drop for JobService {
    fn drop(&mut self) {
        self.begin_shutdown();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

/// Allocates a cell + first ticket; returns the ticket.
fn new_cell(
    st: &mut State,
    spec: JobSpec,
    key: JobKey,
    deadline: Option<Instant>,
    submitted: Instant,
    phase: Phase,
) -> Ticket {
    let job = st.next_id;
    let ticket = st.next_id + 1;
    st.next_id += 2;
    st.cells.insert(
        job,
        JobCell {
            spec,
            key,
            deadline,
            submitted,
            cancel: Arc::new(AtomicBool::new(false)),
            phase,
            interest: 1,
        },
    );
    st.tickets.insert(ticket, job);
    ticket
}

/// Removes a ticket; frees the cell once it is terminal and no ticket
/// references it (bounding service memory by *live* submissions).
fn collect_ticket(st: &mut State, ticket: Ticket) {
    let Some(job) = st.tickets.remove(&ticket) else {
        return;
    };
    if let Some(cell) = st.cells.get_mut(&job) {
        cell.interest = cell.interest.saturating_sub(1);
        if cell.interest == 0 && matches!(cell.phase, Phase::Done(_)) {
            st.cells.remove(&job);
        }
    }
}

fn worker_loop(inner: &Inner) {
    loop {
        // Phase 1: pop the next live queued job (skipping tombstones).
        let mut st = inner.state.lock().expect("service state poisoned");
        let (job, key, spec, cancel, queue_ns) = loop {
            match st.queue.pop() {
                Some(slot) => {
                    let now = Instant::now();
                    let Some(cell) = st.cells.get_mut(&slot.job) else {
                        continue; // cancelled and fully collected
                    };
                    if !matches!(cell.phase, Phase::Queued) {
                        continue; // cancellation tombstone
                    }
                    if cell.deadline.is_some_and(|d| now > d) {
                        cell.phase = Phase::Done(JobOutcome::DeadlineExpired);
                        let key = cell.key;
                        let queue_ns = elapsed_ns(cell.submitted, now);
                        st.inflight.remove(&key.0);
                        st.queued -= 1;
                        st.stats.expired += 1;
                        finish(inner, key, "deadline_expired", queue_ns, 0);
                        continue;
                    }
                    cell.phase = Phase::Running;
                    let out = (
                        slot.job,
                        cell.key,
                        cell.spec.clone(),
                        cell.cancel.clone(),
                        elapsed_ns(cell.submitted, now),
                    );
                    st.queued -= 1;
                    break out;
                }
                None if st.shutting_down => return,
                None => {
                    st = inner
                        .work_cv
                        .wait(st)
                        .expect("service state poisoned");
                }
            }
        };
        drop(st);

        // Phase 2: simulate, with per-job spans flowing into the shared
        // sink and the cancel flag armed on the engine's watchdog poll.
        let started = Instant::now();
        let run = spec
            .to_run_spec()
            .cancel_flag(cancel)
            .recorder(inner.obs.clone())
            .run();
        let run_ns = elapsed_ns(started, Instant::now());

        // Phase 3: publish the outcome.
        let outcome = match run {
            Ok(result) => {
                let result = Arc::new(result);
                inner.store.insert(key, &spec.canonical(), result.clone());
                JobOutcome::Completed {
                    result,
                    cached: false,
                    queue_ns,
                    run_ns,
                }
            }
            Err(SimError::Cancelled { .. }) => JobOutcome::Cancelled,
            Err(err) => JobOutcome::Failed {
                error: err.to_string(),
            },
        };
        let label = outcome.label();
        let mut st = inner.state.lock().expect("service state poisoned");
        match &outcome {
            JobOutcome::Completed { .. } => st.stats.completed += 1,
            JobOutcome::Cancelled => st.stats.cancelled += 1,
            _ => st.stats.failed += 1,
        }
        let free = match st.cells.get_mut(&job) {
            Some(cell) => {
                cell.phase = Phase::Done(outcome);
                cell.interest == 0
            }
            None => false,
        };
        if free {
            st.cells.remove(&job);
        }
        st.inflight.remove(&key.0);
        drop(st);
        finish(inner, key, label, queue_ns, run_ns);
    }
}

/// Emits `job_done` and wakes waiters. The recorder lock is a leaf in
/// the lock order (nothing holding it ever takes the state lock), so
/// this is safe to call with or without the state lock held.
fn finish(inner: &Inner, key: JobKey, label: &str, queue_ns: u64, run_ns: u64) {
    inner.obs.emit(|| Event::JobDone {
        job: key.0,
        outcome: label.to_owned(),
        queue_ns,
        run_ns,
    });
    inner.done_cv.notify_all();
}

fn elapsed_ns(from: Instant, to: Instant) -> u64 {
    to.saturating_duration_since(from).as_nanos() as u64
}
