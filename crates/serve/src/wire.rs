//! Line-delimited JSON over TCP: the service's wire layer.
//!
//! # Protocol
//!
//! One JSON object per line in each direction; every request carries a
//! `"verb"`. The five verbs:
//!
//! | verb | request fields | success response |
//! |---|---|---|
//! | `submit` | `spec`, `priority`?, `deadline_ms`? | `ticket`, `job`, `disposition`, `depth` |
//! | `status` | `ticket` | `state` |
//! | `result` | `ticket`, `timeout_ms`? | `outcome`, `queue_ns`, `run_ns`, `result`? |
//! | `cancel` | `ticket` | `cancel` |
//! | `stats`  | — | counter snapshot |
//!
//! Success responses carry `"ok":true`. Failures carry `"ok":false`,
//! an `"error"` code, and `"retryable":true` when backing off and
//! retrying is sensible — notably `queue_full`, the backpressure
//! signal, which also reports the queue `depth` the client collided
//! with. Job keys travel as 16-hex-digit strings (`"job"`): JSON
//! numbers are f64 and cannot carry a u64 hash exactly.
//!
//! The server is deliberately boring: blocking `std::net` accept loop,
//! one thread per connection (jobs are coarse — each is a simulation —
//! so connection counts are small), [`JobService`] does all the real
//! work. [`WireClient`] is the matching blocking client used by
//! `ra-loadgen` and the integration tests.

use std::io::{self, BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use ra_bench::{json_object, JsonField};

use crate::json::Json;
use crate::scheduler::{JobOutcome, JobService, Priority, Rejected, WaitError};
use crate::spec::JobSpec;

/// Renders `err` and its `source()` chain as `a: b: c`.
fn error_chain(err: &dyn std::error::Error) -> String {
    let mut out = err.to_string();
    let mut cursor = err.source();
    while let Some(cause) = cursor {
        out.push_str(": ");
        out.push_str(&cause.to_string());
        cursor = cause.source();
    }
    out
}

fn ok_fields(mut fields: Vec<(&'static str, JsonField)>) -> String {
    fields.insert(0, ("ok", JsonField::Raw("true".into())));
    json_object(&fields)
}

fn err_fields(code: &str, mut fields: Vec<(&'static str, JsonField)>) -> String {
    let mut all = vec![
        ("ok", JsonField::Raw("false".into())),
        ("error", JsonField::Str(code.to_owned())),
    ];
    all.append(&mut fields);
    json_object(&all)
}

fn outcome_response(outcome: &JobOutcome) -> String {
    match outcome {
        JobOutcome::Completed {
            result,
            cached,
            queue_ns,
            run_ns,
        } => {
            let body = json_object(&[
                ("workload", JsonField::Str(result.workload.clone())),
                ("mode", JsonField::Str(result.mode.clone())),
                ("cycles", JsonField::Int(result.cycles)),
                ("messages", JsonField::Int(result.messages)),
                ("ipc", JsonField::Num(result.ipc)),
                ("latency_mean", JsonField::Num(result.latency.mean())),
                ("latency_count", JsonField::Int(result.latency.count())),
                ("calibrations", JsonField::Int(result.calibrations)),
            ]);
            ok_fields(vec![
                (
                    "outcome",
                    JsonField::Str(if *cached { "cached" } else { "completed" }.into()),
                ),
                ("queue_ns", JsonField::Int(*queue_ns)),
                ("run_ns", JsonField::Int(*run_ns)),
                ("result", JsonField::Raw(body)),
            ])
        }
        JobOutcome::Failed { error } => ok_fields(vec![
            ("outcome", JsonField::Str("failed".into())),
            ("detail", JsonField::Str(error.clone())),
        ]),
        JobOutcome::Cancelled => {
            ok_fields(vec![("outcome", JsonField::Str("cancelled".into()))])
        }
        JobOutcome::DeadlineExpired => ok_fields(vec![(
            "outcome",
            JsonField::Str("deadline_expired".into()),
        )]),
        JobOutcome::DeadlineExceeded => ok_fields(vec![(
            "outcome",
            JsonField::Str("deadline_exceeded".into()),
        )]),
        JobOutcome::Poisoned { error } => ok_fields(vec![
            ("outcome", JsonField::Str("poisoned".into())),
            ("detail", JsonField::Str(error.clone())),
        ]),
    }
}

fn require_ticket(request: &Json) -> Result<u64, String> {
    request
        .get("ticket")
        .and_then(Json::as_u64)
        .ok_or_else(|| err_fields("bad_request", vec![(
            "detail",
            JsonField::Str("`ticket` must be a non-negative integer".into()),
        )]))
}

/// Dispatches one request line to the service and renders the response
/// line (no trailing newline). Pure with respect to I/O, so unit tests
/// can drive the whole protocol without sockets.
pub fn handle_request(service: &JobService, line: &str) -> String {
    let request = match Json::parse(line) {
        Ok(request) => request,
        Err(err) => {
            return err_fields(
                "bad_request",
                vec![("detail", JsonField::Str(err.to_string()))],
            )
        }
    };
    let verb = request.get("verb").and_then(Json::as_str).unwrap_or("");
    match verb {
        "submit" => {
            let Some(spec_text) = request.get("spec").and_then(Json::as_str) else {
                return err_fields(
                    "bad_request",
                    vec![("detail", JsonField::Str("`spec` is required".into()))],
                );
            };
            let spec: JobSpec = match spec_text.parse() {
                Ok(spec) => spec,
                Err(err) => {
                    return err_fields(
                        "bad_spec",
                        vec![("detail", JsonField::Str(error_chain(&err)))],
                    )
                }
            };
            let priority = match request.get("priority").and_then(Json::as_str) {
                None => Priority::Normal,
                Some(text) => match text.parse() {
                    Ok(priority) => priority,
                    Err(err) => {
                        return err_fields(
                            "bad_request",
                            vec![("detail", JsonField::Str(err))],
                        )
                    }
                },
            };
            let deadline = request
                .get("deadline_ms")
                .and_then(Json::as_u64)
                .map(Duration::from_millis);
            match service.submit(spec, priority, deadline) {
                Ok(receipt) => {
                    let depth = match receipt.disposition {
                        crate::scheduler::Disposition::Enqueued { depth } => depth as u64,
                        _ => 0,
                    };
                    ok_fields(vec![
                        ("ticket", JsonField::Int(receipt.ticket)),
                        ("job", JsonField::Str(receipt.job.to_string())),
                        (
                            "disposition",
                            JsonField::Str(receipt.disposition.label().into()),
                        ),
                        ("depth", JsonField::Int(depth)),
                    ])
                }
                Err(Rejected::QueueFull { depth }) => err_fields(
                    "queue_full",
                    vec![
                        ("depth", JsonField::Int(depth as u64)),
                        ("retryable", JsonField::Raw("true".into())),
                    ],
                ),
                Err(Rejected::ShuttingDown) => err_fields("shutting_down", vec![]),
            }
        }
        "status" => {
            let ticket = match require_ticket(&request) {
                Ok(ticket) => ticket,
                Err(response) => return response,
            };
            match service.status(ticket) {
                Some(status) => {
                    ok_fields(vec![("state", JsonField::Str(status.label().into()))])
                }
                None => err_fields("unknown_ticket", vec![]),
            }
        }
        "result" => {
            let ticket = match require_ticket(&request) {
                Ok(ticket) => ticket,
                Err(response) => return response,
            };
            let timeout = request
                .get("timeout_ms")
                .and_then(Json::as_u64)
                .map(Duration::from_millis);
            match service.wait(ticket, timeout) {
                Ok(outcome) => outcome_response(&outcome),
                Err(WaitError::TimedOut) => err_fields(
                    "timeout",
                    vec![("retryable", JsonField::Raw("true".into()))],
                ),
                Err(WaitError::UnknownTicket) => err_fields("unknown_ticket", vec![]),
            }
        }
        "cancel" => {
            let ticket = match require_ticket(&request) {
                Ok(ticket) => ticket,
                Err(response) => return response,
            };
            match service.cancel(ticket) {
                Some(outcome) => ok_fields(vec![(
                    "cancel",
                    JsonField::Str(
                        match outcome {
                            crate::scheduler::CancelOutcome::Cancelled => "cancelled",
                            crate::scheduler::CancelOutcome::Signalled => "signalled",
                            crate::scheduler::CancelOutcome::Detached => "detached",
                            crate::scheduler::CancelOutcome::AlreadyDone => "already_done",
                        }
                        .into(),
                    ),
                )]),
                None => err_fields("unknown_ticket", vec![]),
            }
        }
        "stats" => {
            // A stats poll is a natural sync point: push any buffered
            // trace events to disk so `tail -f` and the CI smoke see a
            // complete stream without waiting for process exit.
            let _ = service.obs().flush();
            let stats = service.stats();
            let memoized = stats.cache_hits + stats.coalesced;
            let memo_ratio = if stats.submitted == 0 {
                0.0
            } else {
                memoized as f64 / stats.submitted as f64
            };
            ok_fields(vec![
                ("submitted", JsonField::Int(stats.submitted)),
                ("admitted", JsonField::Int(stats.admitted)),
                ("rejected", JsonField::Int(stats.rejected)),
                ("coalesced", JsonField::Int(stats.coalesced)),
                ("cache_hits", JsonField::Int(stats.cache_hits)),
                ("completed", JsonField::Int(stats.completed)),
                ("failed", JsonField::Int(stats.failed)),
                ("cancelled", JsonField::Int(stats.cancelled)),
                ("expired", JsonField::Int(stats.expired)),
                ("deadline_exceeded", JsonField::Int(stats.deadline_exceeded)),
                ("poisoned", JsonField::Int(stats.poisoned)),
                ("retries", JsonField::Int(stats.retries)),
                ("respawns", JsonField::Int(stats.respawns)),
                ("recovered_results", JsonField::Int(stats.recovered_results)),
                ("resumed_jobs", JsonField::Int(stats.resumed_jobs)),
                ("queue_depth", JsonField::Int(stats.queue_depth as u64)),
                ("store_hits", JsonField::Int(stats.store.hits)),
                ("store_misses", JsonField::Int(stats.store.misses)),
                ("insertions", JsonField::Int(stats.store.insertions)),
                ("evictions", JsonField::Int(stats.store.evictions)),
                ("hit_ratio", JsonField::Num(stats.store.hit_ratio())),
                ("memo_ratio", JsonField::Num(memo_ratio)),
            ])
        }
        "" => err_fields(
            "bad_request",
            vec![("detail", JsonField::Str("`verb` is required".into()))],
        ),
        other => err_fields(
            "unknown_verb",
            vec![("detail", JsonField::Str(format!("`{other}`")))],
        ),
    }
}

/// A bound, not-yet-running wire server.
pub struct WireServer {
    listener: TcpListener,
    service: Arc<JobService>,
}

impl WireServer {
    /// Binds `addr` (use port 0 for an ephemeral test port) around an
    /// already-started service.
    ///
    /// # Errors
    ///
    /// Propagates the bind failure.
    pub fn bind(addr: impl ToSocketAddrs, service: JobService) -> io::Result<WireServer> {
        Ok(WireServer {
            listener: TcpListener::bind(addr)?,
            service: Arc::new(service),
        })
    }

    /// The bound address (resolves port 0).
    ///
    /// # Errors
    ///
    /// Propagates the socket query failure.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Serves forever on the calling thread (the `ra-serve` bin's mode).
    ///
    /// # Errors
    ///
    /// Propagates a fatal accept failure.
    pub fn run(self) -> io::Result<()> {
        let stop = Arc::new(AtomicBool::new(false));
        self.accept_loop(&stop)
    }

    /// Serves on a background thread; the handle stops it cleanly.
    ///
    /// # Errors
    ///
    /// Propagates the socket query failure.
    pub fn spawn(self) -> io::Result<ServerHandle> {
        let addr = self.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let service = self.service.clone();
        let loop_stop = stop.clone();
        let thread = std::thread::Builder::new()
            .name("ra-serve-accept".into())
            .spawn(move || {
                let _ = self.accept_loop(&loop_stop);
            })
            .expect("spawn accept thread");
        Ok(ServerHandle {
            addr,
            stop,
            service,
            thread: Some(thread),
        })
    }

    fn accept_loop(self, stop: &AtomicBool) -> io::Result<()> {
        for conn in self.listener.incoming() {
            if stop.load(Ordering::Relaxed) {
                return Ok(());
            }
            let stream = match conn {
                Ok(stream) => stream,
                Err(err) if err.kind() == io::ErrorKind::ConnectionAborted => continue,
                Err(err) => return Err(err),
            };
            let service = self.service.clone();
            let _ = std::thread::Builder::new()
                .name("ra-serve-conn".into())
                .spawn(move || handle_connection(&service, stream));
        }
        Ok(())
    }
}

fn handle_connection(service: &JobService, stream: TcpStream) {
    let Ok(write_half) = stream.try_clone() else {
        return;
    };
    let mut writer = io::BufWriter::new(write_half);
    let reader = BufReader::new(stream);
    for line in reader.lines() {
        let Ok(line) = line else { break };
        if line.trim().is_empty() {
            continue;
        }
        let response = handle_request(service, &line);
        if writeln!(writer, "{response}").and_then(|()| writer.flush()).is_err() {
            break;
        }
    }
}

/// Stops a [`WireServer::spawn`]ed server on drop (or explicitly).
pub struct ServerHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    service: Arc<JobService>,
    thread: Option<JoinHandle<()>>,
}

impl ServerHandle {
    /// Where the server listens.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The underlying service — what the `ra-serve` bin drives for
    /// graceful drain on SIGTERM.
    pub fn service(&self) -> Arc<JobService> {
        self.service.clone()
    }

    /// Signals the accept loop and joins it. Open connections finish
    /// their in-flight request and close on their own.
    pub fn stop(mut self) {
        self.stop_inner();
    }

    fn stop_inner(&mut self) {
        let Some(thread) = self.thread.take() else {
            return;
        };
        self.stop.store(true, Ordering::Relaxed);
        // Unblock the accept() so the loop observes the flag.
        let _ = TcpStream::connect(self.addr);
        let _ = thread.join();
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.stop_inner();
    }
}

/// Blocking line-JSON client for [`WireServer`] (used by `ra-loadgen`
/// and the integration tests).
pub struct WireClient {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl WireClient {
    /// Connects to a server.
    ///
    /// # Errors
    ///
    /// Propagates connect/clone failures.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<WireClient> {
        let writer = TcpStream::connect(addr)?;
        let reader = BufReader::new(writer.try_clone()?);
        Ok(WireClient { reader, writer })
    }

    /// Sends one request line and parses the one response line.
    ///
    /// # Errors
    ///
    /// I/O failures, server disconnect, or an unparseable response.
    pub fn call(&mut self, request: &str) -> io::Result<Json> {
        writeln!(self.writer, "{request}")?;
        self.writer.flush()?;
        let mut line = String::new();
        if self.reader.read_line(&mut line)? == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ));
        }
        Json::parse(line.trim_end()).map_err(|err| {
            io::Error::new(io::ErrorKind::InvalidData, format!("bad response: {err}"))
        })
    }

    /// `submit` with optional priority/deadline.
    ///
    /// # Errors
    ///
    /// See [`call`](WireClient::call).
    pub fn submit(
        &mut self,
        spec: &str,
        priority: Option<&str>,
        deadline_ms: Option<u64>,
    ) -> io::Result<Json> {
        let mut fields = vec![
            ("verb", JsonField::Str("submit".into())),
            ("spec", JsonField::Str(spec.to_owned())),
        ];
        if let Some(priority) = priority {
            fields.push(("priority", JsonField::Str(priority.to_owned())));
        }
        if let Some(ms) = deadline_ms {
            fields.push(("deadline_ms", JsonField::Int(ms)));
        }
        self.call(&json_object(&fields))
    }

    /// `status` for a ticket.
    ///
    /// # Errors
    ///
    /// See [`call`](WireClient::call).
    pub fn status(&mut self, ticket: u64) -> io::Result<Json> {
        self.call(&json_object(&[
            ("verb", JsonField::Str("status".into())),
            ("ticket", JsonField::Int(ticket)),
        ]))
    }

    /// `result` for a ticket, blocking up to `timeout_ms` (forever when
    /// `None`).
    ///
    /// # Errors
    ///
    /// See [`call`](WireClient::call).
    pub fn result(&mut self, ticket: u64, timeout_ms: Option<u64>) -> io::Result<Json> {
        let mut fields = vec![
            ("verb", JsonField::Str("result".into())),
            ("ticket", JsonField::Int(ticket)),
        ];
        if let Some(ms) = timeout_ms {
            fields.push(("timeout_ms", JsonField::Int(ms)));
        }
        self.call(&json_object(&fields))
    }

    /// `cancel` for a ticket.
    ///
    /// # Errors
    ///
    /// See [`call`](WireClient::call).
    pub fn cancel(&mut self, ticket: u64) -> io::Result<Json> {
        self.call(&json_object(&[
            ("verb", JsonField::Str("cancel".into())),
            ("ticket", JsonField::Int(ticket)),
        ]))
    }

    /// `stats` snapshot.
    ///
    /// # Errors
    ///
    /// See [`call`](WireClient::call).
    pub fn stats(&mut self) -> io::Result<Json> {
        self.call(&json_object(&[("verb", JsonField::Str("stats".into()))]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheduler::ServeConfig;

    fn tiny_service() -> JobService {
        JobService::start(
            ServeConfig {
                workers: 1,
                ..ServeConfig::default()
            },
            ra_obs::ObsSink::disabled(),
        )
        .expect("service starts")
    }

    const SPEC: &str = "target=2x2 app=water mode=fixed:10 instructions=20 budget=100000";

    #[test]
    fn handle_request_speaks_the_protocol_without_sockets() {
        let service = tiny_service();
        let submit = format!(r#"{{"verb":"submit","spec":"{SPEC}"}}"#);
        let response = Json::parse(&handle_request(&service, &submit)).unwrap();
        assert_eq!(response.get("ok").and_then(Json::as_bool), Some(true));
        assert_eq!(
            response.get("disposition").and_then(Json::as_str),
            Some("enqueued")
        );
        let ticket = response.get("ticket").and_then(Json::as_u64).unwrap();
        let job = response.get("job").and_then(Json::as_str).unwrap();
        assert_eq!(job.len(), 16, "job keys are 16 hex digits, got `{job}`");

        let result = format!(r#"{{"verb":"result","ticket":{ticket}}}"#);
        let response = Json::parse(&handle_request(&service, &result)).unwrap();
        assert_eq!(
            response.get("outcome").and_then(Json::as_str),
            Some("completed")
        );
        let body = response.get("result").expect("result body");
        assert_eq!(body.get("workload").and_then(Json::as_str), Some("water"));
        assert!(body.get("cycles").and_then(Json::as_u64).unwrap() > 0);

        // Same spec again: a cache hit, ready immediately.
        let response = Json::parse(&handle_request(&service, &submit)).unwrap();
        assert_eq!(
            response.get("disposition").and_then(Json::as_str),
            Some("cached")
        );
        service.shutdown();
    }

    #[test]
    fn bad_requests_get_typed_errors() {
        let service = tiny_service();
        for (request, code) in [
            ("not json", "bad_request"),
            (r#"{"spec":"x"}"#, "bad_request"),
            (r#"{"verb":"frobnicate"}"#, "unknown_verb"),
            (r#"{"verb":"submit"}"#, "bad_request"),
            (r#"{"verb":"submit","spec":"target=4x4 app=water mode=warp"}"#, "bad_spec"),
            (r#"{"verb":"status","ticket":-1}"#, "bad_request"),
            (r#"{"verb":"result","ticket":999999}"#, "unknown_ticket"),
            (r#"{"verb":"cancel","ticket":999999}"#, "unknown_ticket"),
        ] {
            let response = Json::parse(&handle_request(&service, request)).unwrap();
            assert_eq!(
                response.get("ok").and_then(Json::as_bool),
                Some(false),
                "{request}"
            );
            assert_eq!(
                response.get("error").and_then(Json::as_str),
                Some(code),
                "{request}"
            );
        }
        // The mode failure surfaces the ParseModeError chain.
        let response = Json::parse(&handle_request(
            &service,
            r#"{"verb":"submit","spec":"target=4x4 app=water mode=warp"}"#,
        ))
        .unwrap();
        let detail = response.get("detail").and_then(Json::as_str).unwrap();
        assert!(detail.contains("unknown mode `warp`"), "detail: {detail}");
        service.shutdown();
    }

    #[test]
    fn tcp_round_trip_on_loopback() {
        let server = WireServer::bind("127.0.0.1:0", tiny_service()).unwrap();
        let handle = server.spawn().unwrap();
        let mut client = WireClient::connect(handle.addr()).unwrap();

        let response = client.submit(SPEC, Some("high"), None).unwrap();
        assert_eq!(response.get("ok").and_then(Json::as_bool), Some(true));
        let ticket = response.get("ticket").and_then(Json::as_u64).unwrap();

        let response = client.result(ticket, Some(30_000)).unwrap();
        assert_eq!(
            response.get("outcome").and_then(Json::as_str),
            Some("completed")
        );

        let stats = client.stats().unwrap();
        assert_eq!(stats.get("submitted").and_then(Json::as_u64), Some(1));
        assert_eq!(stats.get("completed").and_then(Json::as_u64), Some(1));

        // A second connection sees the same service (and its cache).
        let mut second = WireClient::connect(handle.addr()).unwrap();
        let response = second.submit(SPEC, None, None).unwrap();
        assert_eq!(
            response.get("disposition").and_then(Json::as_str),
            Some("cached")
        );
        handle.stop();
    }
}
