//! Line-delimited JSON over TCP: the service's wire layer.
//!
//! # Protocol
//!
//! One JSON object per line in each direction; every request carries a
//! `"verb"`. The five verbs:
//!
//! | verb | request fields | success response |
//! |---|---|---|
//! | `submit` | `spec`, `priority`?, `deadline_ms`? | `ticket`, `job`, `disposition`, `depth` |
//! | `status` | `ticket` | `state` |
//! | `result` | `ticket`, `timeout_ms`? | `outcome`, `queue_ns`, `run_ns`, `result`? |
//! | `cancel` | `ticket` | `cancel` |
//! | `stats`  | — | counter snapshot |
//! | `health` | — | `role`, `state`, `queue_depth` |
//! | `node_stats` | — | counter snapshot + node identity |
//!
//! `health` is the relay's probe verb: cheap, no trace flush, answered
//! from one lock acquisition. `node_stats` is `stats` plus identity
//! fields, so a relay can aggregate per-backend breakdowns.
//!
//! Success responses carry `"ok":true`. Failures carry `"ok":false`,
//! an `"error"` code, and `"retryable":true` when backing off and
//! retrying is sensible — notably `queue_full`, the backpressure
//! signal, which also reports the queue `depth` the client collided
//! with. Job keys travel as 16-hex-digit strings (`"job"`): JSON
//! numbers are f64 and cannot carry a u64 hash exactly.
//!
//! The server is deliberately boring: blocking `std::net` accept loop,
//! one thread per connection (jobs are coarse — each is a simulation —
//! so connection counts are small), [`JobService`] does all the real
//! work. [`WireClient`] is the matching blocking client used by
//! `ra-loadgen` and the integration tests.

use std::io::{self, BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use ra_bench::{json_object, JsonField};

use crate::json::Json;
use crate::scheduler::{JobOutcome, JobService, Priority, Rejected, WaitError};
use crate::spec::JobSpec;

/// Renders `err` and its `source()` chain as `a: b: c`.
fn error_chain(err: &dyn std::error::Error) -> String {
    let mut out = err.to_string();
    let mut cursor = err.source();
    while let Some(cause) = cursor {
        out.push_str(": ");
        out.push_str(&cause.to_string());
        cursor = cause.source();
    }
    out
}

pub(crate) fn ok_fields(mut fields: Vec<(&'static str, JsonField)>) -> String {
    fields.insert(0, ("ok", JsonField::Raw("true".into())));
    json_object(&fields)
}

pub(crate) fn err_fields(code: &str, mut fields: Vec<(&'static str, JsonField)>) -> String {
    let mut all = vec![
        ("ok", JsonField::Raw("false".into())),
        ("error", JsonField::Str(code.to_owned())),
    ];
    all.append(&mut fields);
    json_object(&all)
}

fn outcome_response(outcome: &JobOutcome) -> String {
    match outcome {
        JobOutcome::Completed {
            result,
            cached,
            queue_ns,
            run_ns,
        } => {
            let body = json_object(&[
                ("workload", JsonField::Str(result.workload.clone())),
                ("mode", JsonField::Str(result.mode.clone())),
                ("cycles", JsonField::Int(result.cycles)),
                ("messages", JsonField::Int(result.messages)),
                ("ipc", JsonField::Num(result.ipc)),
                ("latency_mean", JsonField::Num(result.latency.mean())),
                ("latency_count", JsonField::Int(result.latency.count())),
                ("calibrations", JsonField::Int(result.calibrations)),
            ]);
            ok_fields(vec![
                (
                    "outcome",
                    JsonField::Str(if *cached { "cached" } else { "completed" }.into()),
                ),
                ("queue_ns", JsonField::Int(*queue_ns)),
                ("run_ns", JsonField::Int(*run_ns)),
                ("result", JsonField::Raw(body)),
            ])
        }
        JobOutcome::Failed { error } => ok_fields(vec![
            ("outcome", JsonField::Str("failed".into())),
            ("detail", JsonField::Str(error.clone())),
        ]),
        JobOutcome::Cancelled => {
            ok_fields(vec![("outcome", JsonField::Str("cancelled".into()))])
        }
        JobOutcome::DeadlineExpired => ok_fields(vec![(
            "outcome",
            JsonField::Str("deadline_expired".into()),
        )]),
        JobOutcome::DeadlineExceeded => ok_fields(vec![(
            "outcome",
            JsonField::Str("deadline_exceeded".into()),
        )]),
        JobOutcome::Poisoned { error } => ok_fields(vec![
            ("outcome", JsonField::Str("poisoned".into())),
            ("detail", JsonField::Str(error.clone())),
        ]),
    }
}

fn require_ticket(request: &Json) -> Result<u64, String> {
    request
        .get("ticket")
        .and_then(Json::as_u64)
        .ok_or_else(|| err_fields("bad_request", vec![(
            "detail",
            JsonField::Str("`ticket` must be a non-negative integer".into()),
        )]))
}

/// Dispatches one request line to the service and renders the response
/// line (no trailing newline). Pure with respect to I/O, so unit tests
/// can drive the whole protocol without sockets.
pub fn handle_request(service: &JobService, line: &str) -> String {
    let request = match Json::parse(line) {
        Ok(request) => request,
        Err(err) => {
            return err_fields(
                "bad_request",
                vec![("detail", JsonField::Str(err.to_string()))],
            )
        }
    };
    let verb = request.get("verb").and_then(Json::as_str).unwrap_or("");
    match verb {
        "submit" => {
            let Some(spec_text) = request.get("spec").and_then(Json::as_str) else {
                return err_fields(
                    "bad_request",
                    vec![("detail", JsonField::Str("`spec` is required".into()))],
                );
            };
            let spec: JobSpec = match spec_text.parse() {
                Ok(spec) => spec,
                Err(err) => {
                    return err_fields(
                        "bad_spec",
                        vec![("detail", JsonField::Str(error_chain(&err)))],
                    )
                }
            };
            let priority = match request.get("priority").and_then(Json::as_str) {
                None => Priority::Normal,
                Some(text) => match text.parse() {
                    Ok(priority) => priority,
                    Err(err) => {
                        return err_fields(
                            "bad_request",
                            vec![("detail", JsonField::Str(err))],
                        )
                    }
                },
            };
            let deadline = request
                .get("deadline_ms")
                .and_then(Json::as_u64)
                .map(Duration::from_millis);
            match service.submit(spec, priority, deadline) {
                Ok(receipt) => {
                    let depth = match receipt.disposition {
                        crate::scheduler::Disposition::Enqueued { depth } => depth as u64,
                        _ => 0,
                    };
                    ok_fields(vec![
                        ("ticket", JsonField::Int(receipt.ticket)),
                        ("job", JsonField::Str(receipt.job.to_string())),
                        (
                            "disposition",
                            JsonField::Str(receipt.disposition.label().into()),
                        ),
                        ("depth", JsonField::Int(depth)),
                    ])
                }
                Err(Rejected::QueueFull { depth }) => err_fields(
                    "queue_full",
                    vec![
                        ("depth", JsonField::Int(depth as u64)),
                        ("retryable", JsonField::Raw("true".into())),
                    ],
                ),
                Err(Rejected::ShuttingDown) => err_fields("shutting_down", vec![]),
            }
        }
        "status" => {
            let ticket = match require_ticket(&request) {
                Ok(ticket) => ticket,
                Err(response) => return response,
            };
            match service.status(ticket) {
                Some(status) => {
                    ok_fields(vec![("state", JsonField::Str(status.label().into()))])
                }
                None => err_fields("unknown_ticket", vec![]),
            }
        }
        "result" => {
            let ticket = match require_ticket(&request) {
                Ok(ticket) => ticket,
                Err(response) => return response,
            };
            let timeout = request
                .get("timeout_ms")
                .and_then(Json::as_u64)
                .map(Duration::from_millis);
            match service.wait(ticket, timeout) {
                Ok(outcome) => outcome_response(&outcome),
                Err(WaitError::TimedOut) => err_fields(
                    "timeout",
                    vec![("retryable", JsonField::Raw("true".into()))],
                ),
                Err(WaitError::UnknownTicket) => err_fields("unknown_ticket", vec![]),
            }
        }
        "cancel" => {
            let ticket = match require_ticket(&request) {
                Ok(ticket) => ticket,
                Err(response) => return response,
            };
            match service.cancel(ticket) {
                Some(outcome) => ok_fields(vec![(
                    "cancel",
                    JsonField::Str(
                        match outcome {
                            crate::scheduler::CancelOutcome::Cancelled => "cancelled",
                            crate::scheduler::CancelOutcome::Signalled => "signalled",
                            crate::scheduler::CancelOutcome::Detached => "detached",
                            crate::scheduler::CancelOutcome::AlreadyDone => "already_done",
                        }
                        .into(),
                    ),
                )]),
                None => err_fields("unknown_ticket", vec![]),
            }
        }
        "stats" => {
            // A stats poll is a natural sync point: push any buffered
            // trace events to disk so `tail -f` and the CI smoke see a
            // complete stream without waiting for process exit.
            let _ = service.obs().flush();
            ok_fields(stats_fields(service))
        }
        "health" => {
            // The relay's probe verb: one lock, no flush — the probe
            // deadline is the health signal, so keep the path minimal.
            let stats = service.stats();
            ok_fields(vec![
                ("role", JsonField::Str("backend".into())),
                ("state", JsonField::Str("up".into())),
                ("queue_depth", JsonField::Int(stats.queue_depth as u64)),
            ])
        }
        "node_stats" => {
            let mut fields = vec![("role", JsonField::Str("backend".into()))];
            fields.append(&mut stats_fields(service));
            ok_fields(fields)
        }
        "" => err_fields(
            "bad_request",
            vec![("detail", JsonField::Str("`verb` is required".into()))],
        ),
        other => err_fields(
            "unknown_verb",
            vec![("detail", JsonField::Str(format!("`{other}`")))],
        ),
    }
}

/// The counter snapshot rendered by the `stats` and `node_stats` verbs.
fn stats_fields(service: &JobService) -> Vec<(&'static str, JsonField)> {
    let stats = service.stats();
    let memoized = stats.cache_hits + stats.coalesced;
    let memo_ratio = if stats.submitted == 0 {
        0.0
    } else {
        memoized as f64 / stats.submitted as f64
    };
    vec![
        ("submitted", JsonField::Int(stats.submitted)),
        ("admitted", JsonField::Int(stats.admitted)),
        ("rejected", JsonField::Int(stats.rejected)),
        ("coalesced", JsonField::Int(stats.coalesced)),
        ("cache_hits", JsonField::Int(stats.cache_hits)),
        ("completed", JsonField::Int(stats.completed)),
        ("failed", JsonField::Int(stats.failed)),
        ("cancelled", JsonField::Int(stats.cancelled)),
        ("expired", JsonField::Int(stats.expired)),
        ("deadline_exceeded", JsonField::Int(stats.deadline_exceeded)),
        ("poisoned", JsonField::Int(stats.poisoned)),
        ("retries", JsonField::Int(stats.retries)),
        ("respawns", JsonField::Int(stats.respawns)),
        ("journal_compactions", JsonField::Int(stats.journal_compactions)),
        ("recovered_results", JsonField::Int(stats.recovered_results)),
        ("resumed_jobs", JsonField::Int(stats.resumed_jobs)),
        ("spec_commits", JsonField::Int(stats.spec_commits)),
        ("spec_rollbacks", JsonField::Int(stats.spec_rollbacks)),
        ("queue_depth", JsonField::Int(stats.queue_depth as u64)),
        ("store_hits", JsonField::Int(stats.store.hits)),
        ("store_misses", JsonField::Int(stats.store.misses)),
        ("insertions", JsonField::Int(stats.store.insertions)),
        ("evictions", JsonField::Int(stats.store.evictions)),
        ("hit_ratio", JsonField::Num(stats.store.hit_ratio())),
        ("memo_ratio", JsonField::Num(memo_ratio)),
    ]
}

/// A bound, not-yet-running wire server.
pub struct WireServer {
    listener: TcpListener,
    service: Arc<JobService>,
    /// A connection that completes no request for this long is reaped.
    idle_timeout: Duration,
}

/// Default idle budget: generous for interactive clients, finite so a
/// stalled or half-open peer can never pin a connection thread forever.
pub const DEFAULT_IDLE_TIMEOUT: Duration = Duration::from_secs(120);

/// A request line larger than this is protocol abuse, not a request:
/// canonical specs are under 200 bytes.
const MAX_LINE_BYTES: usize = 64 * 1024;

impl WireServer {
    /// Binds `addr` (use port 0 for an ephemeral test port) around an
    /// already-started service.
    ///
    /// # Errors
    ///
    /// Propagates the bind failure.
    pub fn bind(addr: impl ToSocketAddrs, service: JobService) -> io::Result<WireServer> {
        Ok(WireServer {
            listener: TcpListener::bind(addr)?,
            service: Arc::new(service),
            idle_timeout: DEFAULT_IDLE_TIMEOUT,
        })
    }

    /// Overrides the idle-connection budget (tests use millisecond
    /// values to exercise the reaper quickly).
    #[must_use]
    pub fn with_idle_timeout(mut self, idle_timeout: Duration) -> WireServer {
        self.idle_timeout = idle_timeout;
        self
    }

    /// The bound address (resolves port 0).
    ///
    /// # Errors
    ///
    /// Propagates the socket query failure.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Serves forever on the calling thread (the `ra-serve` bin's mode).
    ///
    /// # Errors
    ///
    /// Propagates a fatal accept failure.
    pub fn run(self) -> io::Result<()> {
        let stop = Arc::new(AtomicBool::new(false));
        self.accept_loop(&stop)
    }

    /// Serves on a background thread; the handle stops it cleanly.
    ///
    /// # Errors
    ///
    /// Propagates the socket query failure.
    pub fn spawn(self) -> io::Result<ServerHandle> {
        let addr = self.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let service = self.service.clone();
        let loop_stop = stop.clone();
        let thread = std::thread::Builder::new()
            .name("ra-serve-accept".into())
            .spawn(move || {
                let _ = self.accept_loop(&loop_stop);
            })
            .expect("spawn accept thread");
        Ok(ServerHandle {
            addr,
            stop,
            service,
            thread: Some(thread),
        })
    }

    fn accept_loop(self, stop: &AtomicBool) -> io::Result<()> {
        for conn in self.listener.incoming() {
            if stop.load(Ordering::Relaxed) {
                return Ok(());
            }
            let stream = match conn {
                Ok(stream) => stream,
                Err(err) if err.kind() == io::ErrorKind::ConnectionAborted => continue,
                Err(err) => return Err(err),
            };
            let service = self.service.clone();
            let idle_timeout = self.idle_timeout;
            let _ = std::thread::Builder::new()
                .name("ra-serve-conn".into())
                .spawn(move || handle_connection(&service, stream, idle_timeout));
        }
        Ok(())
    }
}

fn handle_connection(service: &JobService, stream: TcpStream, idle_timeout: Duration) {
    serve_lines(stream, idle_timeout, |line| handle_request(service, line));
}

/// Serves one connection until EOF, an I/O error, or the idle reaper —
/// the shared loop behind both the backend server and the relay.
///
/// Each connection thread is its own reaper: the socket read timeout
/// ticks at a fraction of the idle budget, so the thread wakes even
/// when the peer sends nothing, measures how long it has been since a
/// complete request line arrived, and hangs up once the budget is
/// spent. A slowloris trickling bytes without ever finishing a line —
/// or a half-open socket sending nothing at all — gets its thread back
/// within `idle_timeout` plus one tick. Time spent *serving* a request
/// (a blocking `result` wait) does not count as idle: the clock resets
/// when the response goes out.
pub(crate) fn serve_lines(
    stream: TcpStream,
    idle_timeout: Duration,
    mut handler: impl FnMut(&str) -> String,
) {
    let tick = (idle_timeout / 4).max(Duration::from_millis(10));
    if stream.set_read_timeout(Some(tick)).is_err() {
        return;
    }
    let Ok(write_half) = stream.try_clone() else {
        return;
    };
    let mut writer = io::BufWriter::new(write_half);
    let mut reader = BufReader::new(stream);
    let mut pending: Vec<u8> = Vec::new();
    let mut idle_since = Instant::now();
    loop {
        let buf = match reader.fill_buf() {
            Ok([]) => break, // clean EOF
            Ok(buf) => buf,
            Err(err)
                if matches!(
                    err.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) =>
            {
                if idle_since.elapsed() >= idle_timeout {
                    break; // reaped: stalled or half-open peer
                }
                continue;
            }
            Err(err) if err.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => break,
        };
        let (take, complete) = match buf.iter().position(|&b| b == b'\n') {
            Some(newline) => (newline + 1, true),
            None => (buf.len(), false),
        };
        pending.extend_from_slice(&buf[..take]);
        reader.consume(take);
        if pending.len() > MAX_LINE_BYTES {
            break; // unbounded line: abuse, not a request
        }
        if !complete {
            continue; // partial line buffered; the idle clock keeps running
        }
        let line = match std::str::from_utf8(&pending) {
            Ok(line) => line.trim(),
            Err(_) => break,
        };
        if !line.is_empty() {
            let response = handler(line);
            if writeln!(writer, "{response}")
                .and_then(|()| writer.flush())
                .is_err()
            {
                break;
            }
        }
        pending.clear();
        idle_since = Instant::now();
    }
}

/// Stops a [`WireServer::spawn`]ed server on drop (or explicitly).
pub struct ServerHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    service: Arc<JobService>,
    thread: Option<JoinHandle<()>>,
}

impl ServerHandle {
    /// Where the server listens.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The underlying service — what the `ra-serve` bin drives for
    /// graceful drain on SIGTERM.
    pub fn service(&self) -> Arc<JobService> {
        self.service.clone()
    }

    /// Signals the accept loop and joins it. Open connections finish
    /// their in-flight request and close on their own.
    pub fn stop(mut self) {
        self.stop_inner();
    }

    fn stop_inner(&mut self) {
        let Some(thread) = self.thread.take() else {
            return;
        };
        self.stop.store(true, Ordering::Relaxed);
        // Unblock the accept() so the loop observes the flag.
        let _ = TcpStream::connect(self.addr);
        let _ = thread.join();
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.stop_inner();
    }
}

/// Blocking line-JSON client for [`WireServer`] (used by `ra-loadgen`
/// and the integration tests).
pub struct WireClient {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl WireClient {
    /// Connects to a server.
    ///
    /// # Errors
    ///
    /// Propagates connect/clone failures.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<WireClient> {
        let writer = TcpStream::connect(addr)?;
        let reader = BufReader::new(writer.try_clone()?);
        Ok(WireClient { reader, writer })
    }

    /// Connects with a bounded connect attempt — the relay's forward
    /// path must never hang on a dead backend's SYN queue.
    ///
    /// # Errors
    ///
    /// Propagates connect/clone failures, including the timeout.
    pub fn connect_timeout(addr: &SocketAddr, timeout: Duration) -> io::Result<WireClient> {
        let writer = TcpStream::connect_timeout(addr, timeout)?;
        let reader = BufReader::new(writer.try_clone()?);
        Ok(WireClient { reader, writer })
    }

    /// Bounds every subsequent response read (the per-forward deadline).
    /// `None` restores blocking reads.
    ///
    /// # Errors
    ///
    /// Propagates the socket option failure.
    pub fn set_read_timeout(&self, timeout: Option<Duration>) -> io::Result<()> {
        self.reader.get_ref().set_read_timeout(timeout)
    }

    /// Sends one request line and returns the raw response line (no
    /// trailing newline) — what the relay forwards verbatim so cluster
    /// responses stay bit-identical to single-node ones.
    ///
    /// # Errors
    ///
    /// I/O failures or server disconnect.
    pub fn call_raw(&mut self, request: &str) -> io::Result<String> {
        writeln!(self.writer, "{request}")?;
        self.writer.flush()?;
        let mut line = String::new();
        if self.reader.read_line(&mut line)? == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ));
        }
        while line.ends_with('\n') || line.ends_with('\r') {
            line.pop();
        }
        Ok(line)
    }

    /// Sends one request line and parses the one response line.
    ///
    /// # Errors
    ///
    /// I/O failures, server disconnect, or an unparseable response.
    pub fn call(&mut self, request: &str) -> io::Result<Json> {
        let line = self.call_raw(request)?;
        Json::parse(&line).map_err(|err| {
            io::Error::new(io::ErrorKind::InvalidData, format!("bad response: {err}"))
        })
    }

    /// `submit` with optional priority/deadline.
    ///
    /// # Errors
    ///
    /// See [`call`](WireClient::call).
    pub fn submit(
        &mut self,
        spec: &str,
        priority: Option<&str>,
        deadline_ms: Option<u64>,
    ) -> io::Result<Json> {
        let mut fields = vec![
            ("verb", JsonField::Str("submit".into())),
            ("spec", JsonField::Str(spec.to_owned())),
        ];
        if let Some(priority) = priority {
            fields.push(("priority", JsonField::Str(priority.to_owned())));
        }
        if let Some(ms) = deadline_ms {
            fields.push(("deadline_ms", JsonField::Int(ms)));
        }
        self.call(&json_object(&fields))
    }

    /// `status` for a ticket.
    ///
    /// # Errors
    ///
    /// See [`call`](WireClient::call).
    pub fn status(&mut self, ticket: u64) -> io::Result<Json> {
        self.call(&json_object(&[
            ("verb", JsonField::Str("status".into())),
            ("ticket", JsonField::Int(ticket)),
        ]))
    }

    /// `result` for a ticket, blocking up to `timeout_ms` (forever when
    /// `None`).
    ///
    /// # Errors
    ///
    /// See [`call`](WireClient::call).
    pub fn result(&mut self, ticket: u64, timeout_ms: Option<u64>) -> io::Result<Json> {
        let mut fields = vec![
            ("verb", JsonField::Str("result".into())),
            ("ticket", JsonField::Int(ticket)),
        ];
        if let Some(ms) = timeout_ms {
            fields.push(("timeout_ms", JsonField::Int(ms)));
        }
        self.call(&json_object(&fields))
    }

    /// `cancel` for a ticket.
    ///
    /// # Errors
    ///
    /// See [`call`](WireClient::call).
    pub fn cancel(&mut self, ticket: u64) -> io::Result<Json> {
        self.call(&json_object(&[
            ("verb", JsonField::Str("cancel".into())),
            ("ticket", JsonField::Int(ticket)),
        ]))
    }

    /// `stats` snapshot.
    ///
    /// # Errors
    ///
    /// See [`call`](WireClient::call).
    pub fn stats(&mut self) -> io::Result<Json> {
        self.call(&json_object(&[("verb", JsonField::Str("stats".into()))]))
    }

    /// `health` probe.
    ///
    /// # Errors
    ///
    /// See [`call`](WireClient::call).
    pub fn health(&mut self) -> io::Result<Json> {
        self.call(&json_object(&[("verb", JsonField::Str("health".into()))]))
    }

    /// `node_stats` snapshot (per-node breakdown when the peer is a
    /// relay; `stats` plus identity when it is a backend).
    ///
    /// # Errors
    ///
    /// See [`call`](WireClient::call).
    pub fn node_stats(&mut self) -> io::Result<Json> {
        self.call(&json_object(&[(
            "verb",
            JsonField::Str("node_stats".into()),
        )]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheduler::ServeConfig;

    fn tiny_service() -> JobService {
        JobService::start(
            ServeConfig {
                workers: 1,
                ..ServeConfig::default()
            },
            ra_obs::ObsSink::disabled(),
        )
        .expect("service starts")
    }

    const SPEC: &str = "target=2x2 app=water mode=fixed:10 instructions=20 budget=100000";

    #[test]
    fn handle_request_speaks_the_protocol_without_sockets() {
        let service = tiny_service();
        let submit = format!(r#"{{"verb":"submit","spec":"{SPEC}"}}"#);
        let response = Json::parse(&handle_request(&service, &submit)).unwrap();
        assert_eq!(response.get("ok").and_then(Json::as_bool), Some(true));
        assert_eq!(
            response.get("disposition").and_then(Json::as_str),
            Some("enqueued")
        );
        let ticket = response.get("ticket").and_then(Json::as_u64).unwrap();
        let job = response.get("job").and_then(Json::as_str).unwrap();
        assert_eq!(job.len(), 16, "job keys are 16 hex digits, got `{job}`");

        let result = format!(r#"{{"verb":"result","ticket":{ticket}}}"#);
        let response = Json::parse(&handle_request(&service, &result)).unwrap();
        assert_eq!(
            response.get("outcome").and_then(Json::as_str),
            Some("completed")
        );
        let body = response.get("result").expect("result body");
        assert_eq!(body.get("workload").and_then(Json::as_str), Some("water"));
        assert!(body.get("cycles").and_then(Json::as_u64).unwrap() > 0);

        // Same spec again: a cache hit, ready immediately.
        let response = Json::parse(&handle_request(&service, &submit)).unwrap();
        assert_eq!(
            response.get("disposition").and_then(Json::as_str),
            Some("cached")
        );
        service.shutdown();
    }

    #[test]
    fn bad_requests_get_typed_errors() {
        let service = tiny_service();
        for (request, code) in [
            ("not json", "bad_request"),
            (r#"{"spec":"x"}"#, "bad_request"),
            (r#"{"verb":"frobnicate"}"#, "unknown_verb"),
            (r#"{"verb":"submit"}"#, "bad_request"),
            (r#"{"verb":"submit","spec":"target=4x4 app=water mode=warp"}"#, "bad_spec"),
            (r#"{"verb":"status","ticket":-1}"#, "bad_request"),
            (r#"{"verb":"result","ticket":999999}"#, "unknown_ticket"),
            (r#"{"verb":"cancel","ticket":999999}"#, "unknown_ticket"),
        ] {
            let response = Json::parse(&handle_request(&service, request)).unwrap();
            assert_eq!(
                response.get("ok").and_then(Json::as_bool),
                Some(false),
                "{request}"
            );
            assert_eq!(
                response.get("error").and_then(Json::as_str),
                Some(code),
                "{request}"
            );
        }
        // The mode failure surfaces the ParseModeError chain.
        let response = Json::parse(&handle_request(
            &service,
            r#"{"verb":"submit","spec":"target=4x4 app=water mode=warp"}"#,
        ))
        .unwrap();
        let detail = response.get("detail").and_then(Json::as_str).unwrap();
        assert!(detail.contains("unknown mode `warp`"), "detail: {detail}");
        service.shutdown();
    }

    #[test]
    fn tcp_round_trip_on_loopback() {
        let server = WireServer::bind("127.0.0.1:0", tiny_service()).unwrap();
        let handle = server.spawn().unwrap();
        let mut client = WireClient::connect(handle.addr()).unwrap();

        let response = client.submit(SPEC, Some("high"), None).unwrap();
        assert_eq!(response.get("ok").and_then(Json::as_bool), Some(true));
        let ticket = response.get("ticket").and_then(Json::as_u64).unwrap();

        let response = client.result(ticket, Some(30_000)).unwrap();
        assert_eq!(
            response.get("outcome").and_then(Json::as_str),
            Some("completed")
        );

        let stats = client.stats().unwrap();
        assert_eq!(stats.get("submitted").and_then(Json::as_u64), Some(1));
        assert_eq!(stats.get("completed").and_then(Json::as_u64), Some(1));

        // A second connection sees the same service (and its cache).
        let mut second = WireClient::connect(handle.addr()).unwrap();
        let response = second.submit(SPEC, None, None).unwrap();
        assert_eq!(
            response.get("disposition").and_then(Json::as_str),
            Some("cached")
        );
        handle.stop();
    }

    #[test]
    fn health_and_node_stats_verbs_answer() {
        let service = tiny_service();
        let health =
            Json::parse(&handle_request(&service, r#"{"verb":"health"}"#)).unwrap();
        assert_eq!(health.get("ok").and_then(Json::as_bool), Some(true));
        assert_eq!(health.get("role").and_then(Json::as_str), Some("backend"));
        assert_eq!(health.get("state").and_then(Json::as_str), Some("up"));
        assert_eq!(health.get("queue_depth").and_then(Json::as_u64), Some(0));

        let node = Json::parse(&handle_request(&service, r#"{"verb":"node_stats"}"#))
            .unwrap();
        assert_eq!(node.get("role").and_then(Json::as_str), Some("backend"));
        assert_eq!(node.get("submitted").and_then(Json::as_u64), Some(0));
        service.shutdown();
    }

    #[test]
    fn a_half_open_connection_is_reaped_and_service_continues() {
        let server = WireServer::bind("127.0.0.1:0", tiny_service())
            .unwrap()
            .with_idle_timeout(Duration::from_millis(200));
        let handle = server.spawn().unwrap();

        // A slowloris: connects, dribbles half a request, never finishes
        // the line and never hangs up.
        let mut stalled = TcpStream::connect(handle.addr()).unwrap();
        stalled.write_all(b"{\"verb\":\"sub").unwrap();
        stalled.flush().unwrap();

        // The server must hang up on its own within the idle budget.
        stalled
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();
        let mut sink = Vec::new();
        let start = Instant::now();
        let read = io::Read::read_to_end(&mut stalled, &mut sink);
        assert!(
            matches!(read, Ok(0)),
            "expected server-side close (EOF), got {read:?}"
        );
        assert!(
            start.elapsed() < Duration::from_secs(5),
            "reaper did not fire within the idle budget"
        );

        // The reaped connection cost the server nothing: a fresh,
        // well-behaved client is served normally.
        let mut client = WireClient::connect(handle.addr()).unwrap();
        let response = client.submit(SPEC, None, None).unwrap();
        assert_eq!(response.get("ok").and_then(Json::as_bool), Some(true));
        handle.stop();
    }

    #[test]
    fn an_unbounded_request_line_is_cut_off() {
        let server = WireServer::bind("127.0.0.1:0", tiny_service())
            .unwrap()
            .with_idle_timeout(Duration::from_secs(30));
        let handle = server.spawn().unwrap();
        let mut abuser = TcpStream::connect(handle.addr()).unwrap();
        // Pump newline-free bytes well past MAX_LINE_BYTES; the server
        // must hang up rather than buffer without bound. The write side
        // may observe the reset as an error mid-stream — both shapes
        // (error or EOF on read) prove the hangup.
        let chunk = [b'x'; 4096];
        let mut closed = false;
        for _ in 0..((MAX_LINE_BYTES / chunk.len()) + 4) {
            if abuser.write_all(&chunk).and_then(|()| abuser.flush()).is_err() {
                closed = true;
                break;
            }
        }
        if !closed {
            abuser
                .set_read_timeout(Some(Duration::from_secs(5)))
                .unwrap();
            let mut sink = Vec::new();
            closed = matches!(io::Read::read_to_end(&mut abuser, &mut sink), Ok(0) | Err(_));
        }
        assert!(closed, "server kept a >64KiB line buffered");
        handle.stop();
    }
}
