//! The service's wire layer: one typed dispatch path behind two codecs.
//!
//! # Protocol (v2)
//!
//! Every request is a [`Request`], every reply a [`Response`]
//! (`crate::proto`); [`dispatch`] is the single verb switch. Two
//! encodings carry the enums (`crate::codec`):
//!
//! * **JSON** — one object per line, byte-compatible with the pre-v2
//!   wire. The debuggable compat surface; old clients keep working.
//! * **Binary** — a compact TLV inside the journal's checksummed
//!   length-prefixed frames. The hot path for `ra-loadgen --binary` and
//!   relay→backend forwarding.
//!
//! The server never negotiates: it sniffs the first byte of each
//! connection (`{` = JSON, a hex length digit = binary) and the mode is
//! sticky. See `crate::codec` for the frame/TLV layout and DESIGN.md
//! "Wire protocol v2" for the full verb table.
//!
//! The verbs: `submit`, `status`, `result`, `cancel`, `stats`, `health`,
//! `node_stats`, plus the batched `submit_batch` / `status_batch` /
//! `result_batch`, which carry up to [`crate::proto::MAX_BATCH_ITEMS`]
//! items per round-trip and answer with one [`Response::Batch`] entry
//! per item in request order. A `result_batch` timeout is a whole-batch
//! deadline, not per item.
//!
//! Failures carry a stable machine-readable `code`, the offending
//! `verb`, and `retryable` derived from the code — notably `queue_full`,
//! the backpressure signal, which also reports the queue `depth` the
//! client collided with. Job keys travel as 16-hex-digit strings
//! (`"job"`): JSON numbers are f64 and cannot carry a u64 hash exactly.
//!
//! The server is deliberately boring: blocking `std::net` accept loop,
//! one thread per connection (jobs are coarse — each is a simulation —
//! so connection counts are small), [`JobService`] does all the real
//! work. [`WireClient`] is the matching blocking client used by
//! `ra-loadgen` and the integration tests; it speaks either codec.

use std::io::{self, BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use ra_bench::{json_object, JsonField};
use ra_obs::Event;

use crate::codec::{BinaryCodec, Codec};
use crate::frame::{self, FrameStep};
use crate::json::Json;
use crate::proto::{
    ErrorCode, OutcomeOk, Request, Response, ResultBody, SubmitItem, SubmitOk, WireError,
};
use crate::scheduler::{JobOutcome, JobService, Priority, Rejected, SubmitParams, WaitError};
use crate::spec::{Fidelity, JobSpec};

/// Renders `err` and its `source()` chain as `a: b: c`.
fn error_chain(err: &dyn std::error::Error) -> String {
    let mut out = err.to_string();
    let mut cursor = err.source();
    while let Some(cause) = cursor {
        out.push_str(": ");
        out.push_str(&cause.to_string());
        cursor = cause.source();
    }
    out
}

pub(crate) fn ok_fields(mut fields: Vec<(&'static str, JsonField)>) -> String {
    fields.insert(0, ("ok", JsonField::Raw("true".into())));
    json_object(&fields)
}

fn outcome_ok(outcome: &JobOutcome) -> OutcomeOk {
    match outcome {
        JobOutcome::Completed {
            result,
            cached,
            fidelity,
            error_bound,
            queue_ns,
            run_ns,
        } => OutcomeOk {
            outcome: if *cached { "cached" } else { "completed" }.into(),
            detail: None,
            queue_ns: Some(*queue_ns),
            run_ns: Some(*run_ns),
            body: Some(ResultBody {
                workload: result.workload.clone(),
                mode: result.mode.clone(),
                cycles: result.cycles,
                messages: result.messages,
                ipc: result.ipc,
                latency_mean: result.latency.mean(),
                latency_count: result.latency.count(),
                calibrations: result.calibrations,
                fidelity: Some(fidelity.name().to_owned()),
                error_bound: Some(*error_bound),
            }),
        },
        JobOutcome::Failed { error } => OutcomeOk {
            outcome: "failed".into(),
            detail: Some(error.clone()),
            queue_ns: None,
            run_ns: None,
            body: None,
        },
        JobOutcome::Cancelled => plain_outcome("cancelled"),
        JobOutcome::DeadlineExpired => plain_outcome("deadline_expired"),
        JobOutcome::DeadlineExceeded => plain_outcome("deadline_exceeded"),
        JobOutcome::Poisoned { error } => OutcomeOk {
            outcome: "poisoned".into(),
            detail: Some(error.clone()),
            queue_ns: None,
            run_ns: None,
            body: None,
        },
    }
}

fn plain_outcome(outcome: &str) -> OutcomeOk {
    OutcomeOk {
        outcome: outcome.into(),
        detail: None,
        queue_ns: None,
        run_ns: None,
        body: None,
    }
}

/// Dispatches one typed request against the service — the single verb
/// switch behind both codecs and both server roles' backend halves.
/// Pure with respect to I/O, so unit tests drive the whole protocol
/// without sockets.
pub fn dispatch(service: &JobService, request: &Request) -> Response {
    match request {
        Request::Submit(item) => submit_one(service, item, "submit"),
        Request::SubmitBatch(items) => {
            service.obs().emit(|| Event::WireBatch {
                verb: "submit_batch".into(),
                items: items.len() as u64,
            });
            Response::Batch(
                items
                    .iter()
                    .map(|item| submit_one(service, item, "submit_batch"))
                    .collect(),
            )
        }
        Request::Status { ticket } => status_one(service, *ticket, "status"),
        Request::StatusBatch { tickets } => {
            service.obs().emit(|| Event::WireBatch {
                verb: "status_batch".into(),
                items: tickets.len() as u64,
            });
            Response::Batch(
                tickets
                    .iter()
                    .map(|&ticket| status_one(service, ticket, "status_batch"))
                    .collect(),
            )
        }
        Request::Result { ticket, timeout_ms } => result_one(
            service,
            *ticket,
            timeout_ms.map(Duration::from_millis),
            "result",
        ),
        Request::ResultBatch {
            tickets,
            timeout_ms,
        } => {
            service.obs().emit(|| Event::WireBatch {
                verb: "result_batch".into(),
                items: tickets.len() as u64,
            });
            // One deadline for the whole batch: each successive wait gets
            // whatever budget remains, so N tickets cannot stack N
            // timeouts.
            let deadline = timeout_ms.map(|ms| Instant::now() + Duration::from_millis(ms));
            Response::Batch(
                tickets
                    .iter()
                    .map(|&ticket| {
                        let left =
                            deadline.map(|d| d.saturating_duration_since(Instant::now()));
                        result_one(service, ticket, left, "result_batch")
                    })
                    .collect(),
            )
        }
        Request::Cancel { ticket } => match service.cancel(*ticket) {
            Some(outcome) => Response::Cancel {
                cancel: match outcome {
                    crate::scheduler::CancelOutcome::Cancelled => "cancelled",
                    crate::scheduler::CancelOutcome::Signalled => "signalled",
                    crate::scheduler::CancelOutcome::Detached => "detached",
                    crate::scheduler::CancelOutcome::AlreadyDone => "already_done",
                }
                .into(),
            },
            None => Response::Error(WireError::new(ErrorCode::UnknownTicket, "cancel")),
        },
        Request::Stats => {
            // A stats poll is a natural sync point: push any buffered
            // trace events to disk so `tail -f` and the CI smoke see a
            // complete stream without waiting for process exit.
            let _ = service.obs().flush();
            Response::Report {
                json: ok_fields(stats_fields(service)),
            }
        }
        Request::Health => {
            // The relay's probe verb: one lock, no flush — the probe
            // deadline is the health signal, so keep the path minimal.
            let stats = service.stats();
            Response::Report {
                json: ok_fields(vec![
                    ("role", JsonField::Str("backend".into())),
                    ("state", JsonField::Str("up".into())),
                    ("queue_depth", JsonField::Int(stats.queue_depth as u64)),
                ]),
            }
        }
        Request::NodeStats => {
            let mut fields = vec![("role", JsonField::Str("backend".into()))];
            fields.append(&mut stats_fields(service));
            Response::Report {
                json: ok_fields(fields),
            }
        }
    }
}

fn submit_one(service: &JobService, item: &SubmitItem, verb: &str) -> Response {
    // Parse, then preflight: a `trace:` workload's file must exist and
    // index cleanly, and rejecting it here (with the TraceError chained
    // into the detail) beats queueing a job doomed to fail.
    let parsed = item
        .spec
        .parse::<JobSpec>()
        .and_then(|spec| spec.preflight().map(|()| spec));
    let spec = match parsed {
        Ok(spec) => spec,
        Err(err) => {
            return Response::Error(
                WireError::new(ErrorCode::BadSpec, verb).with_detail(error_chain(&err)),
            )
        }
    };
    let priority = match &item.priority {
        None => Priority::Normal,
        Some(text) => match text.parse() {
            Ok(priority) => priority,
            Err(err) => {
                return Response::Error(
                    WireError::new(ErrorCode::BadRequest, verb).with_detail(err),
                )
            }
        },
    };
    let min_fidelity = match &item.min_fidelity {
        None => None,
        Some(text) => match text.parse::<Fidelity>() {
            Ok(fidelity) => Some(fidelity),
            Err(err) => {
                return Response::Error(
                    WireError::new(ErrorCode::BadRequest, verb).with_detail(err.to_string()),
                )
            }
        },
    };
    let params = SubmitParams {
        priority,
        deadline: item.deadline_ms.map(Duration::from_millis),
        client: item.client.clone(),
        allow_degraded: item.allow_degraded,
        min_fidelity,
    };
    match service.submit_with(spec, params) {
        Ok(receipt) => {
            let depth = match receipt.disposition {
                crate::scheduler::Disposition::Enqueued { depth } => depth as u64,
                _ => 0,
            };
            Response::Submit(SubmitOk {
                ticket: receipt.ticket,
                job: receipt.job.to_string(),
                disposition: receipt.disposition.label().into(),
                depth,
                node: None,
                edge: false,
            })
        }
        Err(Rejected::QueueFull { depth }) => Response::Error(
            WireError::new(ErrorCode::QueueFull, verb).with_depth(depth as u64),
        ),
        Err(Rejected::ShuttingDown) => {
            Response::Error(WireError::new(ErrorCode::ShuttingDown, verb))
        }
    }
}

fn status_one(service: &JobService, ticket: u64, verb: &str) -> Response {
    match service.status(ticket) {
        Some(status) => Response::Status {
            state: status.label().into(),
        },
        None => Response::Error(WireError::new(ErrorCode::UnknownTicket, verb)),
    }
}

fn result_one(
    service: &JobService,
    ticket: u64,
    timeout: Option<Duration>,
    verb: &str,
) -> Response {
    match service.wait(ticket, timeout) {
        Ok(outcome) => Response::Outcome(outcome_ok(&outcome)),
        Err(WaitError::TimedOut) => Response::Error(WireError::new(ErrorCode::Timeout, verb)),
        Err(WaitError::UnknownTicket) => {
            Response::Error(WireError::new(ErrorCode::UnknownTicket, verb))
        }
    }
}

/// Runs one JSON request line through `dispatch_one` and renders the
/// response line (no trailing newline) — the shared line pipeline of the
/// backend server and the relay.
pub(crate) fn respond_line(
    line: &str,
    dispatch_one: impl FnOnce(&Request) -> Response,
) -> String {
    let response = match Json::parse(line) {
        Err(err) => Response::Error(
            WireError::new(ErrorCode::BadRequest, "").with_detail(err.to_string()),
        ),
        Ok(json) => match Request::decode_json(&json) {
            Err(err) => Response::Error(err),
            Ok(request) => dispatch_one(&request),
        },
    };
    response.encode_json()
}

/// Dispatches one request line to the service and renders the response
/// line (no trailing newline). The JSON compat surface, kept as the
/// sockets-free protocol entry point for tests and tooling.
pub fn handle_request(service: &JobService, line: &str) -> String {
    respond_line(line, |request| dispatch(service, request))
}

/// The counter snapshot rendered by the `stats` and `node_stats` verbs.
fn stats_fields(service: &JobService) -> Vec<(&'static str, JsonField)> {
    let stats = service.stats();
    let memoized = stats.cache_hits + stats.coalesced;
    let memo_ratio = if stats.submitted == 0 {
        0.0
    } else {
        memoized as f64 / stats.submitted as f64
    };
    vec![
        ("submitted", JsonField::Int(stats.submitted)),
        ("admitted", JsonField::Int(stats.admitted)),
        ("rejected", JsonField::Int(stats.rejected)),
        ("coalesced", JsonField::Int(stats.coalesced)),
        ("cache_hits", JsonField::Int(stats.cache_hits)),
        ("completed", JsonField::Int(stats.completed)),
        ("failed", JsonField::Int(stats.failed)),
        ("cancelled", JsonField::Int(stats.cancelled)),
        ("expired", JsonField::Int(stats.expired)),
        ("deadline_exceeded", JsonField::Int(stats.deadline_exceeded)),
        ("poisoned", JsonField::Int(stats.poisoned)),
        ("retries", JsonField::Int(stats.retries)),
        ("respawns", JsonField::Int(stats.respawns)),
        ("journal_compactions", JsonField::Int(stats.journal_compactions)),
        ("recovered_results", JsonField::Int(stats.recovered_results)),
        ("resumed_jobs", JsonField::Int(stats.resumed_jobs)),
        ("spec_commits", JsonField::Int(stats.spec_commits)),
        ("spec_rollbacks", JsonField::Int(stats.spec_rollbacks)),
        ("queue_depth", JsonField::Int(stats.queue_depth as u64)),
        ("shed", JsonField::Int(stats.shed)),
        ("degraded", JsonField::Int(stats.degraded)),
        ("upgraded", JsonField::Int(stats.upgraded)),
        ("upgrades_pending", JsonField::Int(stats.upgrades_pending)),
        ("brownout", JsonField::Int(stats.brownout)),
        ("store_hits", JsonField::Int(stats.store.hits)),
        ("store_misses", JsonField::Int(stats.store.misses)),
        ("insertions", JsonField::Int(stats.store.insertions)),
        ("evictions", JsonField::Int(stats.store.evictions)),
        ("hit_ratio", JsonField::Num(stats.store.hit_ratio())),
        ("memo_ratio", JsonField::Num(memo_ratio)),
    ]
}

/// A bound, not-yet-running wire server.
pub struct WireServer {
    listener: TcpListener,
    service: Arc<JobService>,
    /// A connection that completes no request for this long is reaped.
    idle_timeout: Duration,
}

/// Default idle budget: generous for interactive clients, finite so a
/// stalled or half-open peer can never pin a connection thread forever.
pub const DEFAULT_IDLE_TIMEOUT: Duration = Duration::from_secs(120);

/// A request line larger than this is protocol abuse, not a request:
/// canonical specs are under 200 bytes.
const MAX_LINE_BYTES: usize = 64 * 1024;

/// A binary frame larger than this is protocol abuse: even a maximal
/// submit batch of canonical specs fits with an order of magnitude to
/// spare.
const MAX_FRAME_BYTES: usize = 1024 * 1024;

impl WireServer {
    /// Binds `addr` (use port 0 for an ephemeral test port) around an
    /// already-started service.
    ///
    /// # Errors
    ///
    /// Propagates the bind failure.
    pub fn bind(addr: impl ToSocketAddrs, service: JobService) -> io::Result<WireServer> {
        Ok(WireServer {
            listener: TcpListener::bind(addr)?,
            service: Arc::new(service),
            idle_timeout: DEFAULT_IDLE_TIMEOUT,
        })
    }

    /// Overrides the idle-connection budget (tests use millisecond
    /// values to exercise the reaper quickly).
    #[must_use]
    pub fn with_idle_timeout(mut self, idle_timeout: Duration) -> WireServer {
        self.idle_timeout = idle_timeout;
        self
    }

    /// The bound address (resolves port 0).
    ///
    /// # Errors
    ///
    /// Propagates the socket query failure.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Serves forever on the calling thread (the `ra-serve` bin's mode).
    ///
    /// # Errors
    ///
    /// Propagates a fatal accept failure.
    pub fn run(self) -> io::Result<()> {
        let stop = Arc::new(AtomicBool::new(false));
        self.accept_loop(&stop)
    }

    /// Serves on a background thread; the handle stops it cleanly.
    ///
    /// # Errors
    ///
    /// Propagates the socket query failure.
    pub fn spawn(self) -> io::Result<ServerHandle> {
        let addr = self.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let service = self.service.clone();
        let loop_stop = stop.clone();
        let thread = std::thread::Builder::new()
            .name("ra-serve-accept".into())
            .spawn(move || {
                let _ = self.accept_loop(&loop_stop);
            })
            .expect("spawn accept thread");
        Ok(ServerHandle {
            addr,
            stop,
            service,
            thread: Some(thread),
        })
    }

    fn accept_loop(self, stop: &AtomicBool) -> io::Result<()> {
        for conn in self.listener.incoming() {
            if stop.load(Ordering::Relaxed) {
                return Ok(());
            }
            let stream = match conn {
                Ok(stream) => stream,
                Err(err) if err.kind() == io::ErrorKind::ConnectionAborted => continue,
                Err(err) => return Err(err),
            };
            let service = self.service.clone();
            let idle_timeout = self.idle_timeout;
            let _ = std::thread::Builder::new()
                .name("ra-serve-conn".into())
                .spawn(move || {
                    serve_stream(stream, idle_timeout, |request| {
                        dispatch(&service, request)
                    });
                });
        }
        Ok(())
    }
}

/// Which codec a connection sniffed to.
#[derive(Clone, Copy)]
enum Mode {
    Json,
    Binary,
}

/// Serves one connection until EOF, an I/O error, a damaged frame, or
/// the idle reaper — the shared loop behind both the backend server and
/// the relay.
///
/// The first byte of the connection picks the codec: `{` is a JSON
/// object, anything else is taken as the hex length digit of a binary
/// frame. The choice is sticky; a peer cannot switch codecs mid-stream.
/// In binary mode a malformed or checksum-failed frame hangs up the
/// connection immediately — past the first damaged frame there is no
/// way to resynchronize, exactly like the journal's recovery rule.
///
/// Each connection thread is its own reaper: the socket read timeout
/// ticks at a fraction of the idle budget, so the thread wakes even
/// when the peer sends nothing, measures how long it has been since a
/// complete request arrived, and hangs up once the budget is spent. A
/// slowloris trickling bytes without ever finishing a message — or a
/// half-open socket sending nothing at all — gets its thread back
/// within `idle_timeout` plus one tick. Time spent *serving* a request
/// (a blocking `result` wait) does not count as idle: the clock resets
/// when the response goes out.
pub(crate) fn serve_stream(
    stream: TcpStream,
    idle_timeout: Duration,
    mut dispatch_one: impl FnMut(&Request) -> Response,
) {
    let tick = (idle_timeout / 4).max(Duration::from_millis(10));
    if stream.set_read_timeout(Some(tick)).is_err() {
        return;
    }
    let Ok(write_half) = stream.try_clone() else {
        return;
    };
    let mut writer = io::BufWriter::new(write_half);
    let mut reader = BufReader::new(stream);
    let mut pending: Vec<u8> = Vec::new();
    let mut mode: Option<Mode> = None;
    let mut idle_since = Instant::now();
    'conn: loop {
        let buf = match reader.fill_buf() {
            Ok([]) => break, // clean EOF
            Ok(buf) => buf,
            Err(err)
                if matches!(
                    err.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) =>
            {
                if idle_since.elapsed() >= idle_timeout {
                    break; // reaped: stalled or half-open peer
                }
                continue;
            }
            Err(err) if err.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => break,
        };
        let take = buf.len();
        pending.extend_from_slice(buf);
        reader.consume(take);
        let mode = *mode.get_or_insert(if pending[0] == b'{' {
            Mode::Json
        } else {
            Mode::Binary
        });
        match mode {
            Mode::Json => {
                while let Some(newline) = pending.iter().position(|&b| b == b'\n') {
                    let line_bytes: Vec<u8> = pending.drain(..=newline).collect();
                    let Ok(text) = std::str::from_utf8(&line_bytes[..newline]) else {
                        break 'conn;
                    };
                    let line = text.trim();
                    if !line.is_empty() {
                        let response = respond_line(line, &mut dispatch_one);
                        if writer
                            .write_all(response.as_bytes())
                            .and_then(|()| writer.write_all(b"\n"))
                            .and_then(|()| writer.flush())
                            .is_err()
                        {
                            break 'conn;
                        }
                    }
                    idle_since = Instant::now();
                }
                if pending.len() > MAX_LINE_BYTES {
                    break; // unbounded line: abuse, not a request
                }
            }
            Mode::Binary => loop {
                match frame::step(&pending) {
                    FrameStep::Ok { payload, advance } => {
                        pending.drain(..advance);
                        let response = match BinaryCodec.decode_request(&payload) {
                            Ok(request) => dispatch_one(&request),
                            Err(err) => Response::Error(err),
                        };
                        let wire = BinaryCodec.encode_response(&response);
                        if writer
                            .write_all(&wire)
                            .and_then(|()| writer.flush())
                            .is_err()
                        {
                            break 'conn;
                        }
                        idle_since = Instant::now();
                    }
                    FrameStep::Incomplete => {
                        if pending.len() > MAX_FRAME_BYTES {
                            break 'conn; // unbounded frame: abuse
                        }
                        break; // buffered; the idle clock keeps running
                    }
                    // No resync past a damaged frame: hang up, exactly
                    // like journal recovery stops at the first bad frame.
                    FrameStep::Malformed | FrameStep::BadChecksum => break 'conn,
                }
            },
        }
    }
}

/// Stops a [`WireServer::spawn`]ed server on drop (or explicitly).
pub struct ServerHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    service: Arc<JobService>,
    thread: Option<JoinHandle<()>>,
}

impl ServerHandle {
    /// Where the server listens.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The underlying service — what the `ra-serve` bin drives for
    /// graceful drain on SIGTERM.
    pub fn service(&self) -> Arc<JobService> {
        self.service.clone()
    }

    /// Signals the accept loop and joins it. Open connections finish
    /// their in-flight request and close on their own.
    pub fn stop(mut self) {
        self.stop_inner();
    }

    fn stop_inner(&mut self) {
        let Some(thread) = self.thread.take() else {
            return;
        };
        self.stop.store(true, Ordering::Relaxed);
        // Unblock the accept() so the loop observes the flag.
        let _ = TcpStream::connect(self.addr);
        let _ = thread.join();
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.stop_inner();
    }
}

/// Blocking client for [`WireServer`] (used by `ra-loadgen`, the relay's
/// forward path, and the integration tests). Speaks JSON lines by
/// default; [`with_binary`](WireClient::with_binary) switches to the
/// framed binary codec — no handshake, the server sniffs per connection.
pub struct WireClient {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    binary: bool,
    /// Unconsumed wire bytes past the last complete binary frame.
    pending: Vec<u8>,
    bytes_sent: u64,
    bytes_received: u64,
}

impl WireClient {
    /// Connects to a server.
    ///
    /// # Errors
    ///
    /// Propagates connect/clone failures.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<WireClient> {
        let writer = TcpStream::connect(addr)?;
        WireClient::from_stream(writer)
    }

    /// Connects with a bounded connect attempt — the relay's forward
    /// path must never hang on a dead backend's SYN queue.
    ///
    /// # Errors
    ///
    /// Propagates connect/clone failures, including the timeout.
    pub fn connect_timeout(addr: &SocketAddr, timeout: Duration) -> io::Result<WireClient> {
        let writer = TcpStream::connect_timeout(addr, timeout)?;
        WireClient::from_stream(writer)
    }

    fn from_stream(writer: TcpStream) -> io::Result<WireClient> {
        let reader = BufReader::new(writer.try_clone()?);
        Ok(WireClient {
            reader,
            writer,
            binary: false,
            pending: Vec::new(),
            bytes_sent: 0,
            bytes_received: 0,
        })
    }

    /// Selects the codec for all subsequent calls. Must not be flipped
    /// mid-connection: the server's sniffed mode is sticky.
    #[must_use]
    pub fn with_binary(mut self, binary: bool) -> WireClient {
        self.binary = binary;
        self
    }

    /// Whether this client speaks the binary codec.
    pub fn is_binary(&self) -> bool {
        self.binary
    }

    /// Total request bytes put on the wire, framing included.
    pub fn bytes_sent(&self) -> u64 {
        self.bytes_sent
    }

    /// Total response bytes taken off the wire, framing included.
    pub fn bytes_received(&self) -> u64 {
        self.bytes_received
    }

    /// Bounds every subsequent response read (the per-forward deadline).
    /// `None` restores blocking reads.
    ///
    /// # Errors
    ///
    /// Propagates the socket option failure.
    pub fn set_read_timeout(&self, timeout: Option<Duration>) -> io::Result<()> {
        self.reader.get_ref().set_read_timeout(timeout)
    }

    /// Sends one typed request and reads its typed response — the
    /// codec-agnostic call every helper below goes through.
    ///
    /// # Errors
    ///
    /// I/O failures, server disconnect, or an undecodable response.
    pub fn call_request(&mut self, request: &Request) -> io::Result<Response> {
        if self.binary {
            let wire = BinaryCodec.encode_request(request);
            self.writer.write_all(&wire)?;
            self.writer.flush()?;
            self.bytes_sent += wire.len() as u64;
            let payload = self.read_frame()?;
            BinaryCodec.decode_response(&payload)
        } else {
            let line = self.call_raw(&request.encode_json())?;
            let json = Json::parse(&line).map_err(|err| {
                io::Error::new(io::ErrorKind::InvalidData, format!("bad response: {err}"))
            })?;
            Ok(Response::decode_json(&json, &line))
        }
    }

    /// Reads one checksummed frame's payload off the binary wire.
    fn read_frame(&mut self) -> io::Result<Vec<u8>> {
        loop {
            match frame::step(&self.pending) {
                FrameStep::Ok { payload, advance } => {
                    self.pending.drain(..advance);
                    self.bytes_received += advance as u64;
                    return Ok(payload);
                }
                FrameStep::Incomplete => {
                    let buf = self.reader.fill_buf()?;
                    if buf.is_empty() {
                        return Err(io::Error::new(
                            io::ErrorKind::UnexpectedEof,
                            "server closed the connection",
                        ));
                    }
                    let take = buf.len();
                    self.pending.extend_from_slice(buf);
                    self.reader.consume(take);
                }
                FrameStep::Malformed | FrameStep::BadChecksum => {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        "damaged response frame",
                    ))
                }
            }
        }
    }

    /// Sends one request line and returns the raw response line (no
    /// trailing newline). JSON mode only.
    ///
    /// # Errors
    ///
    /// I/O failures or server disconnect; `InvalidInput` in binary mode.
    pub fn call_raw(&mut self, request: &str) -> io::Result<String> {
        if self.binary {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "call_raw speaks JSON lines; this client is binary",
            ));
        }
        writeln!(self.writer, "{request}")?;
        self.writer.flush()?;
        self.bytes_sent += request.len() as u64 + 1;
        let mut line = String::new();
        if self.reader.read_line(&mut line)? == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ));
        }
        self.bytes_received += line.len() as u64;
        while line.ends_with('\n') || line.ends_with('\r') {
            line.pop();
        }
        Ok(line)
    }

    /// Sends one request line and parses the one response line. JSON
    /// mode only.
    ///
    /// # Errors
    ///
    /// I/O failures, server disconnect, or an unparseable response.
    pub fn call(&mut self, request: &str) -> io::Result<Json> {
        let line = self.call_raw(request)?;
        Json::parse(&line).map_err(|err| {
            io::Error::new(io::ErrorKind::InvalidData, format!("bad response: {err}"))
        })
    }

    /// Runs a typed request and hands back the response as parsed JSON —
    /// identical view under either codec, so every legacy call site
    /// works unchanged in binary mode.
    fn call_verb(&mut self, request: &Request) -> io::Result<Json> {
        if self.binary {
            let response = self.call_request(request)?;
            let line = response.encode_json();
            Json::parse(&line).map_err(|err| {
                io::Error::new(io::ErrorKind::InvalidData, format!("bad response: {err}"))
            })
        } else {
            self.call(&request.encode_json())
        }
    }

    /// Runs a typed batch request and unwraps the per-item responses.
    fn call_batch(&mut self, request: &Request) -> io::Result<Vec<Response>> {
        match self.call_request(request)? {
            Response::Batch(items) => Ok(items),
            Response::Error(err) => Err(io::Error::other(format!(
                "{} failed: {}{}",
                request.verb(),
                err.code.as_str(),
                err.detail.map(|d| format!(" ({d})")).unwrap_or_default()
            ))),
            other => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("expected a batch response, got {other:?}"),
            )),
        }
    }

    /// `submit` with optional priority/deadline.
    ///
    /// # Errors
    ///
    /// See [`call`](WireClient::call).
    pub fn submit(
        &mut self,
        spec: &str,
        priority: Option<&str>,
        deadline_ms: Option<u64>,
    ) -> io::Result<Json> {
        let mut item = SubmitItem::new(spec);
        item.priority = priority.map(str::to_owned);
        item.deadline_ms = deadline_ms;
        self.submit_item(item)
    }

    /// `submit` with the full item vocabulary — the way to set the
    /// overload-control knobs (`client`, `allow_degraded`,
    /// `min_fidelity`) on a single submission.
    ///
    /// # Errors
    ///
    /// See [`call`](WireClient::call).
    pub fn submit_item(&mut self, item: SubmitItem) -> io::Result<Json> {
        self.call_verb(&Request::Submit(item))
    }

    /// `submit_batch`: up to [`crate::proto::MAX_BATCH_ITEMS`] specs in
    /// one round-trip; one response per item, in order.
    ///
    /// # Errors
    ///
    /// See [`call_request`](WireClient::call_request); also errors when
    /// the whole batch (not an item) was refused.
    pub fn submit_batch(&mut self, items: Vec<SubmitItem>) -> io::Result<Vec<Response>> {
        self.call_batch(&Request::SubmitBatch(items))
    }

    /// `status` for a ticket.
    ///
    /// # Errors
    ///
    /// See [`call`](WireClient::call).
    pub fn status(&mut self, ticket: u64) -> io::Result<Json> {
        self.call_verb(&Request::Status { ticket })
    }

    /// `status_batch` for many tickets in one round-trip.
    ///
    /// # Errors
    ///
    /// See [`submit_batch`](WireClient::submit_batch).
    pub fn status_batch(&mut self, tickets: Vec<u64>) -> io::Result<Vec<Response>> {
        self.call_batch(&Request::StatusBatch { tickets })
    }

    /// `result` for a ticket, blocking up to `timeout_ms` (forever when
    /// `None`).
    ///
    /// # Errors
    ///
    /// See [`call`](WireClient::call).
    pub fn result(&mut self, ticket: u64, timeout_ms: Option<u64>) -> io::Result<Json> {
        self.call_verb(&Request::Result { ticket, timeout_ms })
    }

    /// `result_batch`: collects many tickets in one round-trip under one
    /// whole-batch deadline.
    ///
    /// # Errors
    ///
    /// See [`submit_batch`](WireClient::submit_batch).
    pub fn result_batch(
        &mut self,
        tickets: Vec<u64>,
        timeout_ms: Option<u64>,
    ) -> io::Result<Vec<Response>> {
        self.call_batch(&Request::ResultBatch {
            tickets,
            timeout_ms,
        })
    }

    /// `cancel` for a ticket.
    ///
    /// # Errors
    ///
    /// See [`call`](WireClient::call).
    pub fn cancel(&mut self, ticket: u64) -> io::Result<Json> {
        self.call_verb(&Request::Cancel { ticket })
    }

    /// `stats` snapshot.
    ///
    /// # Errors
    ///
    /// See [`call`](WireClient::call).
    pub fn stats(&mut self) -> io::Result<Json> {
        self.call_verb(&Request::Stats)
    }

    /// `health` probe.
    ///
    /// # Errors
    ///
    /// See [`call`](WireClient::call).
    pub fn health(&mut self) -> io::Result<Json> {
        self.call_verb(&Request::Health)
    }

    /// `node_stats` snapshot (per-node breakdown when the peer is a
    /// relay; `stats` plus identity when it is a backend).
    ///
    /// # Errors
    ///
    /// See [`call`](WireClient::call).
    pub fn node_stats(&mut self) -> io::Result<Json> {
        self.call_verb(&Request::NodeStats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheduler::ServeConfig;

    fn tiny_service() -> JobService {
        JobService::start(
            ServeConfig {
                workers: 1,
                ..ServeConfig::default()
            },
            ra_obs::ObsSink::disabled(),
        )
        .expect("service starts")
    }

    const SPEC: &str = "target=2x2 app=water mode=fixed:10 instructions=20 budget=100000";

    #[test]
    fn handle_request_speaks_the_protocol_without_sockets() {
        let service = tiny_service();
        let submit = format!(r#"{{"verb":"submit","spec":"{SPEC}"}}"#);
        let response = Json::parse(&handle_request(&service, &submit)).unwrap();
        assert_eq!(response.get("ok").and_then(Json::as_bool), Some(true));
        assert_eq!(
            response.get("disposition").and_then(Json::as_str),
            Some("enqueued")
        );
        let ticket = response.get("ticket").and_then(Json::as_u64).unwrap();
        let job = response.get("job").and_then(Json::as_str).unwrap();
        assert_eq!(job.len(), 16, "job keys are 16 hex digits, got `{job}`");

        let result = format!(r#"{{"verb":"result","ticket":{ticket}}}"#);
        let response = Json::parse(&handle_request(&service, &result)).unwrap();
        assert_eq!(
            response.get("outcome").and_then(Json::as_str),
            Some("completed")
        );
        let body = response.get("result").expect("result body");
        assert_eq!(body.get("workload").and_then(Json::as_str), Some("water"));
        assert!(body.get("cycles").and_then(Json::as_u64).unwrap() > 0);

        // Same spec again: a cache hit, ready immediately.
        let response = Json::parse(&handle_request(&service, &submit)).unwrap();
        assert_eq!(
            response.get("disposition").and_then(Json::as_str),
            Some("cached")
        );
        service.shutdown();
    }

    #[test]
    fn bad_requests_get_typed_errors() {
        let service = tiny_service();
        for (request, code) in [
            ("not json", "bad_request"),
            (r#"{"spec":"x"}"#, "bad_request"),
            (r#"{"verb":"frobnicate"}"#, "unknown_verb"),
            (r#"{"verb":"submit"}"#, "bad_request"),
            (r#"{"verb":"submit","spec":"target=4x4 app=water mode=warp"}"#, "bad_spec"),
            (r#"{"verb":"status","ticket":-1}"#, "bad_request"),
            (r#"{"verb":"result","ticket":999999}"#, "unknown_ticket"),
            (r#"{"verb":"cancel","ticket":999999}"#, "unknown_ticket"),
        ] {
            let response = Json::parse(&handle_request(&service, request)).unwrap();
            assert_eq!(
                response.get("ok").and_then(Json::as_bool),
                Some(false),
                "{request}"
            );
            assert_eq!(
                response.get("error").and_then(Json::as_str),
                Some(code),
                "{request}"
            );
            // Satellite of the v2 redesign: every error names a stable
            // machine-readable code (mirroring `error`) and the verb.
            assert_eq!(
                response.get("code").and_then(Json::as_str),
                Some(code),
                "{request}"
            );
            assert!(response.get("verb").is_some(), "{request}");
        }
        // The mode failure surfaces the ParseModeError chain and the
        // offending verb.
        let response = Json::parse(&handle_request(
            &service,
            r#"{"verb":"submit","spec":"target=4x4 app=water mode=warp"}"#,
        ))
        .unwrap();
        let detail = response.get("detail").and_then(Json::as_str).unwrap();
        assert!(detail.contains("unknown mode `warp`"), "detail: {detail}");
        assert_eq!(response.get("verb").and_then(Json::as_str), Some("submit"));
        service.shutdown();
    }

    #[test]
    fn tcp_round_trip_on_loopback() {
        let server = WireServer::bind("127.0.0.1:0", tiny_service()).unwrap();
        let handle = server.spawn().unwrap();
        let mut client = WireClient::connect(handle.addr()).unwrap();

        let response = client.submit(SPEC, Some("high"), None).unwrap();
        assert_eq!(response.get("ok").and_then(Json::as_bool), Some(true));
        let ticket = response.get("ticket").and_then(Json::as_u64).unwrap();

        let response = client.result(ticket, Some(30_000)).unwrap();
        assert_eq!(
            response.get("outcome").and_then(Json::as_str),
            Some("completed")
        );

        let stats = client.stats().unwrap();
        assert_eq!(stats.get("submitted").and_then(Json::as_u64), Some(1));
        assert_eq!(stats.get("completed").and_then(Json::as_u64), Some(1));

        // A second connection sees the same service (and its cache).
        let mut second = WireClient::connect(handle.addr()).unwrap();
        let response = second.submit(SPEC, None, None).unwrap();
        assert_eq!(
            response.get("disposition").and_then(Json::as_str),
            Some("cached")
        );
        handle.stop();
    }

    #[test]
    fn binary_clients_sniff_onto_the_same_server_as_json_ones() {
        let server = WireServer::bind("127.0.0.1:0", tiny_service()).unwrap();
        let handle = server.spawn().unwrap();

        // Binary connection first: submit and collect.
        let mut binary = WireClient::connect(handle.addr()).unwrap().with_binary(true);
        let response = binary.submit(SPEC, Some("high"), None).unwrap();
        assert_eq!(response.get("ok").and_then(Json::as_bool), Some(true));
        let ticket = response.get("ticket").and_then(Json::as_u64).unwrap();
        let outcome = binary.result(ticket, Some(30_000)).unwrap();
        assert_eq!(
            outcome.get("outcome").and_then(Json::as_str),
            Some("completed")
        );
        assert!(binary.bytes_sent() > 0 && binary.bytes_received() > 0);

        // A JSON connection to the same server sees the same cache.
        let mut json = WireClient::connect(handle.addr()).unwrap();
        let response = json.submit(SPEC, None, None).unwrap();
        assert_eq!(
            response.get("disposition").and_then(Json::as_str),
            Some("cached")
        );
        handle.stop();
    }

    #[test]
    fn batch_verbs_answer_item_per_item_in_order() {
        for binary in [false, true] {
            let server = WireServer::bind("127.0.0.1:0", tiny_service()).unwrap();
            let handle = server.spawn().unwrap();
            let mut client = WireClient::connect(handle.addr())
                .unwrap()
                .with_binary(binary);

            let items = vec![
                SubmitItem::new(SPEC),
                SubmitItem::new(format!("{SPEC} seed=1")),
                SubmitItem::new("not a spec"),
            ];
            let responses = client.submit_batch(items).unwrap();
            assert_eq!(responses.len(), 3, "binary={binary}");
            let mut tickets = Vec::new();
            for response in &responses[..2] {
                let Response::Submit(ok) = response else {
                    panic!("binary={binary}: {response:?}");
                };
                tickets.push(ok.ticket);
            }
            let Response::Error(err) = &responses[2] else {
                panic!("binary={binary}: bad spec must fail per-item");
            };
            assert_eq!(err.code, ErrorCode::BadSpec);
            assert_eq!(err.verb, "submit_batch");

            let outcomes = client
                .result_batch(tickets.clone(), Some(30_000))
                .unwrap();
            assert_eq!(outcomes.len(), 2);
            for outcome in &outcomes {
                let Response::Outcome(ok) = outcome else {
                    panic!("binary={binary}: {outcome:?}");
                };
                assert_eq!(ok.outcome, "completed");
            }

            // Collected tickets are spent; a never-issued one is too.
            let states = client.status_batch(vec![tickets[0], 999_999]).unwrap();
            for state in &states {
                assert!(
                    matches!(state, Response::Error(err) if err.code == ErrorCode::UnknownTicket),
                    "binary={binary}: {state:?}"
                );
            }
            handle.stop();
        }
    }

    #[test]
    fn a_damaged_binary_frame_hangs_up_the_connection() {
        let server = WireServer::bind("127.0.0.1:0", tiny_service()).unwrap();
        let handle = server.spawn().unwrap();
        let mut stream = TcpStream::connect(handle.addr()).unwrap();
        let mut wire = BinaryCodec.encode_request(&Request::Health);
        let flip = wire.len() - 2; // corrupt the payload, keep the header
        wire[flip] ^= 0x01;
        stream.write_all(&wire).unwrap();
        stream.flush().unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();
        let mut sink = Vec::new();
        let read = io::Read::read_to_end(&mut stream, &mut sink);
        assert!(matches!(read, Ok(0)), "expected hangup, got {read:?}");
        assert!(sink.is_empty(), "no response may precede the hangup");

        // The service survives for well-formed clients.
        let mut client = WireClient::connect(handle.addr()).unwrap().with_binary(true);
        let health = client.health().unwrap();
        assert_eq!(health.get("state").and_then(Json::as_str), Some("up"));
        handle.stop();
    }

    #[test]
    fn health_and_node_stats_verbs_answer() {
        let service = tiny_service();
        let health =
            Json::parse(&handle_request(&service, r#"{"verb":"health"}"#)).unwrap();
        assert_eq!(health.get("ok").and_then(Json::as_bool), Some(true));
        assert_eq!(health.get("role").and_then(Json::as_str), Some("backend"));
        assert_eq!(health.get("state").and_then(Json::as_str), Some("up"));
        assert_eq!(health.get("queue_depth").and_then(Json::as_u64), Some(0));

        let node = Json::parse(&handle_request(&service, r#"{"verb":"node_stats"}"#))
            .unwrap();
        assert_eq!(node.get("role").and_then(Json::as_str), Some("backend"));
        assert_eq!(node.get("submitted").and_then(Json::as_u64), Some(0));
        service.shutdown();
    }

    #[test]
    fn a_half_open_connection_is_reaped_and_service_continues() {
        let server = WireServer::bind("127.0.0.1:0", tiny_service())
            .unwrap()
            .with_idle_timeout(Duration::from_millis(200));
        let handle = server.spawn().unwrap();

        // A slowloris: connects, dribbles half a request, never finishes
        // the line and never hangs up.
        let mut stalled = TcpStream::connect(handle.addr()).unwrap();
        stalled.write_all(b"{\"verb\":\"sub").unwrap();
        stalled.flush().unwrap();

        // The server must hang up on its own within the idle budget.
        stalled
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();
        let mut sink = Vec::new();
        let start = Instant::now();
        let read = io::Read::read_to_end(&mut stalled, &mut sink);
        assert!(
            matches!(read, Ok(0)),
            "expected server-side close (EOF), got {read:?}"
        );
        assert!(
            start.elapsed() < Duration::from_secs(5),
            "reaper did not fire within the idle budget"
        );

        // The reaped connection cost the server nothing: a fresh,
        // well-behaved client is served normally.
        let mut client = WireClient::connect(handle.addr()).unwrap();
        let response = client.submit(SPEC, None, None).unwrap();
        assert_eq!(response.get("ok").and_then(Json::as_bool), Some(true));
        handle.stop();
    }

    #[test]
    fn an_unbounded_request_line_is_cut_off() {
        let server = WireServer::bind("127.0.0.1:0", tiny_service())
            .unwrap()
            .with_idle_timeout(Duration::from_secs(30));
        let handle = server.spawn().unwrap();
        let mut abuser = TcpStream::connect(handle.addr()).unwrap();
        // Pump newline-free bytes well past MAX_LINE_BYTES; the server
        // must hang up rather than buffer without bound. The write side
        // may observe the reset as an error mid-stream — both shapes
        // (error or EOF on read) prove the hangup. Lead with `{` so the
        // connection sniffs as JSON.
        let mut chunk = [b'x'; 4096];
        chunk[0] = b'{';
        let mut closed = false;
        for _ in 0..((MAX_LINE_BYTES / chunk.len()) + 4) {
            if abuser.write_all(&chunk).and_then(|()| abuser.flush()).is_err() {
                closed = true;
                break;
            }
        }
        if !closed {
            abuser
                .set_read_timeout(Some(Duration::from_secs(5)))
                .unwrap();
            let mut sink = Vec::new();
            closed = matches!(io::Read::read_to_end(&mut abuser, &mut sink), Ok(0) | Err(_));
        }
        assert!(closed, "server kept a >64KiB line buffered");
        handle.stop();
    }
}
