//! Canonical, owned job specifications.
//!
//! A [`JobSpec`] is everything that determines a simulation's result —
//! target machine, workload profile, network abstraction, run length,
//! cycle budget, RNG seed — in an *owned* form the service can queue,
//! hash, and ship over the wire (today's [`RunSpec`] borrows its target
//! and app, so it cannot outlive a request handler).
//!
//! # Canonicalization and the cache key
//!
//! The spec's [`Display`] form is the *canonical text*: fixed key order,
//! one space between keys, the mode in its canonical
//! [`ModeSpec`](ra_cosim::ModeSpec) `Display` form. Parsing accepts
//! shorthand (omitted keys take the [`RunSpec`] defaults, `reciprocal`
//! without parameters, etc.) but printing always normalizes, so
//! `text -> JobSpec -> text` is a fixed point and two requests that mean
//! the same run produce byte-identical canonical text. The cache key
//! ([`JobSpec::job_hash`], wrapped in [`JobKey`]) is the FNV-1a 64-bit
//! hash of that canonical text — stable across processes and runs, unlike
//! `std::hash`'s randomized `SipHash`.
//!
//! To keep "same text ⇒ same simulation" honest, [`JobSpec::new`] only
//! admits targets and workloads *from the canonical vocabulary*: grids
//! built by [`Target::cmp`], chiplet systems built by [`Target::chiplet`]
//! (`target=chiplet:<islands>x<cols>x<rows>,interposer=<class>`), and the
//! workloads [`WorkSpec`] can name — the [`AppProfile`] suite, DNN
//! pipelines (`app=dnn:layers=..,tensor=..`), and named on-disk traces
//! (`app=trace:<name>`). An off-vocabulary target (hand-tuned cache
//! sizes, scripted faults) would canonicalize to the same text as the
//! stock one and poison the cache, so it is rejected with
//! [`SpecError::OffVocabulary`] instead.

use std::fmt;
use std::str::FromStr;

use ra_cosim::{InterposerClass, ModeSpec, ParseModeError, RunSpec, Target};
use ra_workloads::{AppProfile, TraceError, TraceStream, WorkSpec};

/// Defaults shared with [`RunSpec`]: instructions per core, cycle budget,
/// workload seed.
const DEFAULT_INSTRUCTIONS: u64 = 1_000;
const DEFAULT_BUDGET: u64 = 10_000_000;
const DEFAULT_SEED: u64 = 42;

/// Stable content hash of a canonical [`JobSpec`] — the result-store key
/// and the `"job"` field of service observability events and wire
/// responses. Displays as 16 lower-case hex digits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct JobKey(pub u64);

impl fmt::Display for JobKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

impl FromStr for JobKey {
    type Err = SpecError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        u64::from_str_radix(s.trim(), 16)
            .map(JobKey)
            .map_err(|_| SpecError::BadValue {
                key: "job",
                detail: format!("`{s}` is not a 64-bit hex key"),
            })
    }
}

/// The answer-quality ladder of the overload-control layer, ordered from
/// cheapest to most faithful.
///
/// Fidelity is *relative to the spec's requested mode*:
///
/// * [`Fidelity::Reciprocal`] — the spec's own mode, uncut. For a
///   `mode=reciprocal` spec that is the full co-simulation; for an
///   abstract-mode spec (`hop`, `fixed`, …) it is simply that mode, which
///   is already cheap and never degraded further.
/// * [`Fidelity::Calibrated`] — the reciprocal coupler serving from its
///   calibrated model alone (the PR-1 fallback stance entered
///   deliberately; see `RunSpec::calibrated_only`). Costs about an
///   abstract run.
/// * [`Fidelity::Hop`] — the pure contention-free hop model, milliseconds
///   even for specs that asked for full co-simulation.
///
/// Degradation prefs (`allow_degraded`, `min_fidelity`) ride on the wire
/// item and the submit call, **never** inside [`JobSpec`]: a degraded and
/// a full answer to the same spec share one canonical text, one
/// [`JobKey`], and one result-store slot — which is what lets the
/// background upgrader replace the entry in place.
///
/// The derived `Ord` follows declaration order, so
/// `Fidelity::Hop < Fidelity::Calibrated < Fidelity::Reciprocal`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Fidelity {
    /// Pure hop/analytical model — the cheapest rung.
    Hop,
    /// Calibrated-model-only replay of a reciprocal-mode spec.
    Calibrated,
    /// The spec's own mode, uncut (full fidelity for that spec).
    Reciprocal,
}

impl Fidelity {
    /// Every rung, cheapest first.
    pub const ALL: [Fidelity; 3] = [Fidelity::Hop, Fidelity::Calibrated, Fidelity::Reciprocal];

    /// Lower-snake wire tag (`hop` / `calibrated` / `reciprocal`).
    pub fn name(self) -> &'static str {
        match self {
            Fidelity::Hop => "hop",
            Fidelity::Calibrated => "calibrated",
            Fidelity::Reciprocal => "reciprocal",
        }
    }

    /// Whether `mode` has cheaper rungs below it at all. Only reciprocal
    /// modes degrade; an abstract-mode spec already *is* its cheapest
    /// faithful answer.
    pub fn degradable(mode: &ModeSpec) -> bool {
        matches!(mode, ModeSpec::Reciprocal { .. })
    }
}

impl fmt::Display for Fidelity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl FromStr for Fidelity {
    type Err = SpecError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.trim() {
            "hop" => Ok(Fidelity::Hop),
            "calibrated" => Ok(Fidelity::Calibrated),
            "reciprocal" => Ok(Fidelity::Reciprocal),
            other => Err(SpecError::BadValue {
                key: "min_fidelity",
                detail: format!("`{other}` is not hop, calibrated, or reciprocal"),
            }),
        }
    }
}

/// FNV-1a 64-bit over `bytes`: tiny, dependency-free, and — unlike the
/// standard library's randomized SipHash — identical in every process, so
/// spill files written by one server instance name the same jobs as the
/// next. Shared with the durability layer, which uses the same hash as
/// the per-record checksum of journal and spill frames.
pub(crate) fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Why a job specification could not be built or parsed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SpecError {
    /// A required key (`target`, `app`) was absent.
    MissingKey(&'static str),
    /// A key outside the canonical vocabulary.
    UnknownKey(String),
    /// A key's value did not parse.
    BadValue {
        /// Which key.
        key: &'static str,
        /// What was wrong.
        detail: String,
    },
    /// `app` named no profile in the canonical suite.
    UnknownApp(String),
    /// The `mode` value failed [`ModeSpec`] parsing.
    Mode(ParseModeError),
    /// An `app=trace:<name>` spec whose trace file is missing or
    /// malformed (detected by [`JobSpec::preflight`]).
    Trace(TraceError),
    /// A target or profile that the canonical text cannot faithfully
    /// represent (it would collide with the stock one in the cache).
    OffVocabulary(String),
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpecError::MissingKey(key) => write!(f, "job spec is missing `{key}`"),
            SpecError::UnknownKey(key) => write!(
                f,
                "unknown job-spec key `{key}` (expected target, app, mode, \
                 instructions, budget, or seed)"
            ),
            SpecError::BadValue { key, detail } => {
                write!(f, "bad job-spec value for `{key}`: {detail}")
            }
            SpecError::UnknownApp(name) => {
                write!(f, "unknown app profile `{name}` (see AppProfile::suite)")
            }
            SpecError::Mode(_) => f.write_str("bad job-spec value for `mode`"),
            SpecError::Trace(_) => f.write_str("job spec names an unusable trace"),
            SpecError::OffVocabulary(detail) => {
                write!(f, "spec outside the canonical vocabulary: {detail}")
            }
        }
    }
}

impl std::error::Error for SpecError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            // The mode parser's and trace reader's messages carry the
            // detail; service-layer error chains render it via `source()`.
            SpecError::Mode(err) => Some(err),
            SpecError::Trace(err) => Some(err),
            _ => None,
        }
    }
}

impl From<ParseModeError> for SpecError {
    fn from(err: ParseModeError) -> Self {
        SpecError::Mode(err)
    }
}

impl From<TraceError> for SpecError {
    fn from(err: TraceError) -> Self {
        SpecError::Trace(err)
    }
}

/// An owned, canonical simulation-job specification.
///
/// Convertible into today's borrowed [`RunSpec`] via
/// [`to_run_spec`](JobSpec::to_run_spec); round-trippable through text via
/// [`Display`]/[`FromStr`]; content-addressed via
/// [`job_hash`](JobSpec::job_hash).
///
/// ```
/// use ra_serve::JobSpec;
///
/// let spec: JobSpec = "target=4x4 app=water mode=hop seed=7".parse()?;
/// // Printing normalizes: omitted keys surface with their defaults.
/// assert_eq!(
///     spec.to_string(),
///     "target=4x4 app=water mode=hop instructions=1000 budget=10000000 seed=7"
/// );
/// assert_eq!(spec.to_string().parse::<JobSpec>()?, spec);
/// # Ok::<(), ra_serve::SpecError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct JobSpec {
    target: Target,
    work: WorkSpec,
    /// Network abstraction for the run.
    pub mode: ModeSpec,
    /// Instructions every core must retire.
    pub instructions: u64,
    /// Cycle budget before the run times out.
    pub budget: u64,
    /// Workload RNG seed.
    pub seed: u64,
}

impl JobSpec {
    /// Builds a spec over an owned target and profile, with the
    /// [`RunSpec`] defaults for everything else.
    ///
    /// # Errors
    ///
    /// As [`JobSpec::for_work`], which this wraps.
    pub fn new(target: Target, app: AppProfile) -> Result<JobSpec, SpecError> {
        Self::for_work(target, WorkSpec::Profile(app))
    }

    /// Builds a spec over an owned target and any workload the vocabulary
    /// can name, with the [`RunSpec`] defaults for everything else.
    ///
    /// # Errors
    ///
    /// [`SpecError::OffVocabulary`] if `target` is not exactly the
    /// [`Target::cmp`] grid or [`Target::chiplet`] system its shape
    /// names, or [`SpecError::UnknownApp`] if a profile workload is not
    /// stock — such configurations would alias a canonical spec in the
    /// cache (see the module docs).
    pub fn for_work(target: Target, work: WorkSpec) -> Result<JobSpec, SpecError> {
        if let Some(chip) = &target.noc.chiplet {
            let (cols, rows) = (target.noc.shape.cols(), target.noc.shape.rows());
            let stock = Target::chiplet(chip.islands, cols, rows, chip.interposer);
            if target != stock {
                return Err(SpecError::OffVocabulary(format!(
                    "target `{}` differs from the {}-island {cols}x{rows} \
                     chiplet preset",
                    target.name, chip.islands
                )));
            }
        } else {
            let (cols, rows) = (target.fullsys.shape.cols(), target.fullsys.shape.rows());
            if target != Target::cmp(cols, rows) {
                return Err(SpecError::OffVocabulary(format!(
                    "target `{}` differs from the {cols}x{rows} preset",
                    target.name
                )));
            }
        }
        if let WorkSpec::Profile(app) = &work {
            match AppProfile::by_name(&app.name) {
                Some(stock) if stock == *app => {}
                _ => return Err(SpecError::UnknownApp(app.name.clone())),
            }
        }
        Ok(JobSpec {
            target,
            work,
            mode: ModeSpec::default(),
            instructions: DEFAULT_INSTRUCTIONS,
            budget: DEFAULT_BUDGET,
            seed: DEFAULT_SEED,
        })
    }

    /// Selects the network abstraction.
    #[must_use]
    pub fn mode(mut self, mode: ModeSpec) -> Self {
        self.mode = mode;
        self
    }

    /// Instructions every core must retire.
    #[must_use]
    pub fn instructions(mut self, instructions: u64) -> Self {
        self.instructions = instructions;
        self
    }

    /// Cycle budget before the run times out.
    #[must_use]
    pub fn budget(mut self, budget: u64) -> Self {
        self.budget = budget;
        self
    }

    /// Workload RNG seed.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// The owned target machine.
    pub fn target(&self) -> &Target {
        &self.target
    }

    /// The owned workload specification.
    pub fn work(&self) -> &WorkSpec {
        &self.work
    }

    /// Validates what parsing alone cannot: a `trace:` workload's file
    /// must exist and index cleanly. The wire layer calls this at submit
    /// so a bad trace rejects the request with a typed
    /// [`SpecError::Trace`] chain instead of failing the queued job.
    ///
    /// # Errors
    ///
    /// [`SpecError::Trace`] carrying the byte offset and kind of the
    /// first problem in the trace file.
    pub fn preflight(&self) -> Result<(), SpecError> {
        if let WorkSpec::Trace(name) = &self.work {
            TraceStream::open(WorkSpec::trace_path(name))?;
        }
        Ok(())
    }

    /// The canonical text (the [`Display`] form, allocated).
    pub fn canonical(&self) -> String {
        self.to_string()
    }

    /// The stable content hash of the canonical text — the cache key.
    pub fn job_hash(&self) -> JobKey {
        JobKey(fnv1a(self.canonical().as_bytes()))
    }

    /// Borrows this owned spec into the driver's [`RunSpec`] builder.
    /// Attach a recorder or cancellation flag on the returned builder
    /// before `.run()`.
    pub fn to_run_spec(&self) -> RunSpec<'_> {
        RunSpec::for_work(&self.target, self.work.clone())
            .mode(self.mode)
            .instructions(self.instructions)
            .budget(self.budget)
            .seed(self.seed)
    }
}

/// Canonical text: every key, fixed order, normalized mode. Single-die
/// targets print exactly as they always have (`target=4x4`), so existing
/// canonical texts — and everything hashed from them — are unchanged;
/// chiplet targets print as
/// `target=chiplet:<islands>x<cols>x<rows>,interposer=<class>`.
impl fmt::Display for JobSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("target=")?;
        match &self.target.noc.chiplet {
            Some(chip) => write!(
                f,
                "chiplet:{}x{}x{},interposer={}",
                chip.islands,
                self.target.noc.shape.cols(),
                self.target.noc.shape.rows(),
                chip.interposer
            )?,
            None => write!(
                f,
                "{}x{}",
                self.target.fullsys.shape.cols(),
                self.target.fullsys.shape.rows()
            )?,
        }
        write!(
            f,
            " app={} mode={} instructions={} budget={} seed={}",
            self.work, self.mode, self.instructions, self.budget, self.seed
        )
    }
}

/// Parses `key=value` tokens separated by whitespace. `target` and `app`
/// are required; `mode`, `instructions`, `budget`, and `seed` default as
/// in [`RunSpec`].
impl FromStr for JobSpec {
    type Err = SpecError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let mut target = None;
        let mut work = None;
        let mut mode = ModeSpec::default();
        let mut instructions = DEFAULT_INSTRUCTIONS;
        let mut budget = DEFAULT_BUDGET;
        let mut seed = DEFAULT_SEED;
        for token in s.split_whitespace() {
            let (key, value) = token.split_once('=').ok_or_else(|| SpecError::BadValue {
                key: "spec",
                detail: format!("expected key=value, got `{token}`"),
            })?;
            match key {
                "target" => {
                    target = Some(match value.strip_prefix("chiplet:") {
                        Some(rest) => parse_chiplet_target(rest)?,
                        None => {
                            let (cols, rows) =
                                value.split_once('x').ok_or_else(|| SpecError::BadValue {
                                    key: "target",
                                    detail: format!("expected <cols>x<rows>, got `{value}`"),
                                })?;
                            Target::cmp(parse_dim(cols)?, parse_dim(rows)?)
                        }
                    });
                }
                "app" => {
                    work = Some(value.parse::<WorkSpec>().map_err(|err| {
                        // Plain profile names keep their dedicated error so
                        // clients see the familiar "unknown app" shape.
                        if !value.contains(':') {
                            SpecError::UnknownApp(value.to_owned())
                        } else {
                            SpecError::BadValue {
                                key: "app",
                                detail: err.to_string(),
                            }
                        }
                    })?);
                }
                "mode" => mode = value.parse()?,
                "instructions" => {
                    instructions = value.parse().map_err(|_| SpecError::BadValue {
                        key: "instructions",
                        detail: format!("`{value}` is not an integer"),
                    })?;
                }
                "budget" => {
                    budget = value.parse().map_err(|_| SpecError::BadValue {
                        key: "budget",
                        detail: format!("`{value}` is not an integer"),
                    })?;
                }
                "seed" => {
                    seed = value.parse().map_err(|_| SpecError::BadValue {
                        key: "seed",
                        detail: format!("`{value}` is not an integer"),
                    })?;
                }
                other => return Err(SpecError::UnknownKey(other.to_owned())),
            }
        }
        let target = target.ok_or(SpecError::MissingKey("target"))?;
        let work = work.ok_or(SpecError::MissingKey("app"))?;
        Ok(JobSpec::for_work(target, work)?
            .mode(mode)
            .instructions(instructions)
            .budget(budget)
            .seed(seed))
    }
}

/// Parses one `<dim>` of a target grid.
fn parse_dim(dim: &str) -> Result<u32, SpecError> {
    dim.parse::<u32>()
        .ok()
        .filter(|d| *d > 0)
        .ok_or_else(|| SpecError::BadValue {
            key: "target",
            detail: format!("`{dim}` is not a positive grid dimension"),
        })
}

/// Parses the remainder of `target=chiplet:...`:
/// `<islands>x<cols>x<rows>[,interposer=<class>]` (interposer defaults to
/// silicon; printing always normalizes it back in).
fn parse_chiplet_target(rest: &str) -> Result<Target, SpecError> {
    let mut parts = rest.split(',');
    let grid = parts.next().unwrap_or_default();
    let dims: Vec<&str> = grid.split('x').collect();
    let [islands, cols, rows] = dims[..] else {
        return Err(SpecError::BadValue {
            key: "target",
            detail: format!("expected chiplet:<islands>x<cols>x<rows>, got `chiplet:{grid}`"),
        });
    };
    let islands = parse_dim(islands)?;
    if islands < 2 {
        return Err(SpecError::BadValue {
            key: "target",
            detail: format!("a chiplet system needs at least 2 islands, got {islands}"),
        });
    }
    let (cols, rows) = (parse_dim(cols)?, parse_dim(rows)?);
    let mut interposer = InterposerClass::Silicon;
    for kv in parts {
        let (key, value) = kv.split_once('=').ok_or_else(|| SpecError::BadValue {
            key: "target",
            detail: format!("expected key=value after the chiplet grid, got `{kv}`"),
        })?;
        match key {
            "interposer" => {
                interposer = value.parse().map_err(|_| SpecError::BadValue {
                    key: "target",
                    detail: format!(
                        "unknown interposer class `{value}` (expected silicon, \
                         organic, or active)"
                    ),
                })?;
            }
            other => {
                return Err(SpecError::BadValue {
                    key: "target",
                    detail: format!("unknown chiplet key `{other}` (expected interposer)"),
                })
            }
        }
    }
    Ok(Target::chiplet(islands, cols, rows, interposer))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::error::Error as _;

    fn water_4x4() -> JobSpec {
        JobSpec::new(Target::cmp(4, 4), AppProfile::water()).unwrap()
    }

    #[test]
    fn display_is_a_parse_fixed_point() {
        let spec = water_4x4()
            .mode(ModeSpec::Reciprocal { quantum: 500, workers: 4, pipeline: false })
            .instructions(300)
            .budget(500_000)
            .seed(9);
        let text = spec.to_string();
        let reparsed: JobSpec = text.parse().unwrap();
        assert_eq!(reparsed, spec);
        assert_eq!(reparsed.to_string(), text);
        assert_eq!(reparsed.job_hash(), spec.job_hash());
    }

    #[test]
    fn shorthand_normalizes_to_one_canonical_text() {
        let long: JobSpec =
            "target=4x4 app=water mode=reciprocal:quantum=2000,workers=0 \
             instructions=1000 budget=10000000 seed=42"
                .parse()
                .unwrap();
        let short: JobSpec = "app=water target=4x4 mode=reciprocal".parse().unwrap();
        assert_eq!(long, short);
        assert_eq!(long.canonical(), short.canonical());
        assert_eq!(long.job_hash(), short.job_hash());
    }

    #[test]
    fn job_hash_is_pinned() {
        // The spill format and cross-process memoization depend on this
        // value never moving silently. If canonicalization legitimately
        // changes, update the pin *and* call it out in DESIGN.md.
        let spec: JobSpec = "target=4x4 app=water".parse().unwrap();
        assert_eq!(
            spec.canonical(),
            "target=4x4 app=water mode=reciprocal:quantum=2000,workers=0 \
             instructions=1000 budget=10000000 seed=42"
        );
        assert_eq!(spec.job_hash().to_string(), "fce6d5450b0eded6");
        assert_eq!(
            "fce6d5450b0eded6".parse::<JobKey>().unwrap(),
            spec.job_hash()
        );
    }

    #[test]
    fn distinct_specs_hash_apart() {
        let base = water_4x4();
        let variants = [
            base.clone().seed(7),
            base.clone().instructions(2_000),
            base.clone().budget(1),
            base.clone().mode(ModeSpec::Hop),
            JobSpec::new(Target::cmp(8, 8), AppProfile::water()).unwrap(),
            JobSpec::new(Target::cmp(4, 4), AppProfile::ocean()).unwrap(),
        ];
        let mut keys: Vec<JobKey> = variants.iter().map(JobSpec::job_hash).collect();
        keys.push(base.job_hash());
        keys.sort();
        keys.dedup();
        assert_eq!(keys.len(), variants.len() + 1, "hash collision in variants");
    }

    #[test]
    fn off_vocabulary_targets_and_apps_are_rejected() {
        let mut custom = Target::cmp(4, 4);
        custom.fullsys.mem_controllers = 2;
        assert!(matches!(
            JobSpec::new(custom, AppProfile::water()),
            Err(SpecError::OffVocabulary(_))
        ));
        let mut app = AppProfile::water();
        app.busy_gap = 99;
        assert!(matches!(
            JobSpec::new(Target::cmp(4, 4), app),
            Err(SpecError::UnknownApp(_))
        ));
    }

    #[test]
    fn parse_errors_name_the_problem() {
        for (text, needle) in [
            ("", "missing `target`"),
            ("target=4x4", "missing `app`"),
            ("target=4x4 app=nonesuch", "nonesuch"),
            ("target=4x4 app=water pace=3", "unknown job-spec key"),
            ("target=4 app=water", "<cols>x<rows>"),
            ("target=0x4 app=water", "positive"),
            ("target=4x4 app=water instructions=lots", "integer"),
            ("bareword", "key=value"),
        ] {
            let err = text.parse::<JobSpec>().unwrap_err();
            assert!(
                err.to_string().contains(needle),
                "`{text}` -> `{err}` (wanted `{needle}`)"
            );
        }
    }

    #[test]
    fn chiplet_and_workload_vocabulary_round_trips() {
        for text in [
            "target=chiplet:2x4x4,interposer=silicon app=water mode=hop \
             instructions=1000 budget=10000000 seed=42",
            "target=chiplet:4x4x2,interposer=organic app=dnn:layers=4,tensor=16384 \
             mode=reciprocal:quantum=2000,workers=0 instructions=1000 \
             budget=10000000 seed=42",
            "target=4x4 app=trace:smoke mode=lockstep instructions=1000 \
             budget=10000000 seed=42",
        ] {
            let spec: JobSpec = text.parse().unwrap_or_else(|e| panic!("{text}: {e}"));
            assert_eq!(spec.to_string(), text, "canonical text must round-trip");
            assert_eq!(text.parse::<JobSpec>().unwrap().job_hash(), spec.job_hash());
        }
        // Shorthand normalizes: interposer defaults to silicon, bare `dnn`
        // expands to its parameters.
        let short: JobSpec = "target=chiplet:2x4x4 app=dnn".parse().unwrap();
        let long: JobSpec = "target=chiplet:2x4x4,interposer=silicon \
                             app=dnn:layers=4,tensor=16384"
            .parse()
            .unwrap();
        assert_eq!(short, long);
        assert_eq!(short.job_hash(), long.job_hash());
        assert_eq!(short.target().fullsys.islands, 2);
    }

    #[test]
    fn bad_chiplet_and_workload_specs_name_the_problem() {
        for (text, needle) in [
            ("target=chiplet:2x4 app=water", "<islands>x<cols>x<rows>"),
            ("target=chiplet:1x4x4 app=water", "at least 2 islands"),
            ("target=chiplet:2x4x4,interposer=wood app=water", "interposer class"),
            ("target=chiplet:2x4x4,lanes=9 app=water", "unknown chiplet key"),
            ("target=4x4 app=trace:", "trace name"),
            ("target=4x4 app=dnn:layers=x", "layers"),
        ] {
            let err = text.parse::<JobSpec>().unwrap_err();
            assert!(
                err.to_string().contains(needle),
                "`{text}` -> `{err}` (wanted `{needle}`)"
            );
        }
    }

    #[test]
    fn trace_preflight_chains_the_trace_error() {
        let spec: JobSpec = "target=4x4 app=trace:no-such-trace".parse().unwrap();
        let err = spec.preflight().unwrap_err();
        assert!(matches!(err, SpecError::Trace(_)));
        let source = err.source().expect("trace errors carry a source");
        assert!(
            source.to_string().contains("trace invalid at byte"),
            "source must be the TraceError: {source}"
        );
        // A profile spec has nothing to preflight.
        water_4x4().preflight().unwrap();
    }

    #[test]
    fn mode_errors_chain_to_parse_mode_error() {
        // The satellite contract: ParseModeError implements Display +
        // Error, so a service-layer chain renders the real cause.
        let err = "target=4x4 app=water mode=warp".parse::<JobSpec>().unwrap_err();
        assert!(matches!(err, SpecError::Mode(_)));
        let source = err.source().expect("mode errors carry a source");
        assert!(
            source.to_string().contains("unknown mode `warp`"),
            "source must be the ParseModeError: {source}"
        );
    }

    #[test]
    fn fidelity_ladder_orders_and_round_trips() {
        assert!(Fidelity::Hop < Fidelity::Calibrated);
        assert!(Fidelity::Calibrated < Fidelity::Reciprocal);
        for tier in Fidelity::ALL {
            assert_eq!(tier.name().parse::<Fidelity>().unwrap(), tier);
        }
        assert!("ultra".parse::<Fidelity>().is_err());
        assert!(Fidelity::degradable(&ModeSpec::default()));
        assert!(!Fidelity::degradable(&ModeSpec::Hop));
        assert!(!Fidelity::degradable(&ModeSpec::Lockstep));
    }

    #[test]
    fn to_run_spec_runs_equivalently() {
        let spec = water_4x4()
            .mode(ModeSpec::Hop)
            .instructions(200)
            .budget(500_000)
            .seed(1);
        let via_job = spec.to_run_spec().run().unwrap();
        let target = Target::cmp(4, 4);
        let app = AppProfile::water();
        let direct = ra_cosim::RunSpec::new(&target, &app)
            .mode(ModeSpec::Hop)
            .instructions(200)
            .budget(500_000)
            .seed(1)
            .run()
            .unwrap();
        assert_eq!(via_job.cycles, direct.cycles);
        assert_eq!(via_job.messages, direct.messages);
        assert_eq!(via_job.latency, direct.latency);
    }
}
