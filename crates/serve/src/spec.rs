//! Canonical, owned job specifications.
//!
//! A [`JobSpec`] is everything that determines a simulation's result —
//! target machine, workload profile, network abstraction, run length,
//! cycle budget, RNG seed — in an *owned* form the service can queue,
//! hash, and ship over the wire (today's [`RunSpec`] borrows its target
//! and app, so it cannot outlive a request handler).
//!
//! # Canonicalization and the cache key
//!
//! The spec's [`Display`] form is the *canonical text*: fixed key order,
//! one space between keys, the mode in its canonical
//! [`ModeSpec`](ra_cosim::ModeSpec) `Display` form. Parsing accepts
//! shorthand (omitted keys take the [`RunSpec`] defaults, `reciprocal`
//! without parameters, etc.) but printing always normalizes, so
//! `text -> JobSpec -> text` is a fixed point and two requests that mean
//! the same run produce byte-identical canonical text. The cache key
//! ([`JobSpec::job_hash`], wrapped in [`JobKey`]) is the FNV-1a 64-bit
//! hash of that canonical text — stable across processes and runs, unlike
//! `std::hash`'s randomized `SipHash`.
//!
//! To keep "same text ⇒ same simulation" honest, [`JobSpec::new`] only
//! admits targets and profiles *from the canonical vocabulary*: grids
//! built by [`Target::cmp`] and the named [`AppProfile`] suite. An
//! off-vocabulary target (hand-tuned cache sizes, scripted faults) would
//! canonicalize to the same text as the stock one and poison the cache,
//! so it is rejected with [`SpecError::OffVocabulary`] instead.

use std::fmt;
use std::str::FromStr;

use ra_cosim::{ModeSpec, ParseModeError, RunSpec, Target};
use ra_workloads::AppProfile;

/// Defaults shared with [`RunSpec`]: instructions per core, cycle budget,
/// workload seed.
const DEFAULT_INSTRUCTIONS: u64 = 1_000;
const DEFAULT_BUDGET: u64 = 10_000_000;
const DEFAULT_SEED: u64 = 42;

/// Stable content hash of a canonical [`JobSpec`] — the result-store key
/// and the `"job"` field of service observability events and wire
/// responses. Displays as 16 lower-case hex digits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct JobKey(pub u64);

impl fmt::Display for JobKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

impl FromStr for JobKey {
    type Err = SpecError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        u64::from_str_radix(s.trim(), 16)
            .map(JobKey)
            .map_err(|_| SpecError::BadValue {
                key: "job",
                detail: format!("`{s}` is not a 64-bit hex key"),
            })
    }
}

/// FNV-1a 64-bit over `bytes`: tiny, dependency-free, and — unlike the
/// standard library's randomized SipHash — identical in every process, so
/// spill files written by one server instance name the same jobs as the
/// next. Shared with the durability layer, which uses the same hash as
/// the per-record checksum of journal and spill frames.
pub(crate) fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Why a job specification could not be built or parsed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SpecError {
    /// A required key (`target`, `app`) was absent.
    MissingKey(&'static str),
    /// A key outside the canonical vocabulary.
    UnknownKey(String),
    /// A key's value did not parse.
    BadValue {
        /// Which key.
        key: &'static str,
        /// What was wrong.
        detail: String,
    },
    /// `app` named no profile in the canonical suite.
    UnknownApp(String),
    /// The `mode` value failed [`ModeSpec`] parsing.
    Mode(ParseModeError),
    /// A target or profile that the canonical text cannot faithfully
    /// represent (it would collide with the stock one in the cache).
    OffVocabulary(String),
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpecError::MissingKey(key) => write!(f, "job spec is missing `{key}`"),
            SpecError::UnknownKey(key) => write!(
                f,
                "unknown job-spec key `{key}` (expected target, app, mode, \
                 instructions, budget, or seed)"
            ),
            SpecError::BadValue { key, detail } => {
                write!(f, "bad job-spec value for `{key}`: {detail}")
            }
            SpecError::UnknownApp(name) => {
                write!(f, "unknown app profile `{name}` (see AppProfile::suite)")
            }
            SpecError::Mode(_) => f.write_str("bad job-spec value for `mode`"),
            SpecError::OffVocabulary(detail) => {
                write!(f, "spec outside the canonical vocabulary: {detail}")
            }
        }
    }
}

impl std::error::Error for SpecError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            // The mode parser's message carries the detail; service-layer
            // error chains render it via `source()`.
            SpecError::Mode(err) => Some(err),
            _ => None,
        }
    }
}

impl From<ParseModeError> for SpecError {
    fn from(err: ParseModeError) -> Self {
        SpecError::Mode(err)
    }
}

/// An owned, canonical simulation-job specification.
///
/// Convertible into today's borrowed [`RunSpec`] via
/// [`to_run_spec`](JobSpec::to_run_spec); round-trippable through text via
/// [`Display`]/[`FromStr`]; content-addressed via
/// [`job_hash`](JobSpec::job_hash).
///
/// ```
/// use ra_serve::JobSpec;
///
/// let spec: JobSpec = "target=4x4 app=water mode=hop seed=7".parse()?;
/// // Printing normalizes: omitted keys surface with their defaults.
/// assert_eq!(
///     spec.to_string(),
///     "target=4x4 app=water mode=hop instructions=1000 budget=10000000 seed=7"
/// );
/// assert_eq!(spec.to_string().parse::<JobSpec>()?, spec);
/// # Ok::<(), ra_serve::SpecError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct JobSpec {
    target: Target,
    app: AppProfile,
    /// Network abstraction for the run.
    pub mode: ModeSpec,
    /// Instructions every core must retire.
    pub instructions: u64,
    /// Cycle budget before the run times out.
    pub budget: u64,
    /// Workload RNG seed.
    pub seed: u64,
}

impl JobSpec {
    /// Builds a spec over an owned target and profile, with the
    /// [`RunSpec`] defaults for everything else.
    ///
    /// # Errors
    ///
    /// [`SpecError::OffVocabulary`] if `target` is not exactly the
    /// [`Target::cmp`] preset for its grid, or `app` is not a profile of
    /// the named suite — such configurations would alias a stock spec in
    /// the cache (see the module docs).
    pub fn new(target: Target, app: AppProfile) -> Result<JobSpec, SpecError> {
        let (cols, rows) = (target.fullsys.shape.cols(), target.fullsys.shape.rows());
        if target != Target::cmp(cols, rows) {
            return Err(SpecError::OffVocabulary(format!(
                "target `{}` differs from the {cols}x{rows} preset",
                target.name
            )));
        }
        match AppProfile::by_name(&app.name) {
            Some(stock) if stock == app => {}
            _ => return Err(SpecError::UnknownApp(app.name.clone())),
        }
        Ok(JobSpec {
            target,
            app,
            mode: ModeSpec::default(),
            instructions: DEFAULT_INSTRUCTIONS,
            budget: DEFAULT_BUDGET,
            seed: DEFAULT_SEED,
        })
    }

    /// Selects the network abstraction.
    #[must_use]
    pub fn mode(mut self, mode: ModeSpec) -> Self {
        self.mode = mode;
        self
    }

    /// Instructions every core must retire.
    #[must_use]
    pub fn instructions(mut self, instructions: u64) -> Self {
        self.instructions = instructions;
        self
    }

    /// Cycle budget before the run times out.
    #[must_use]
    pub fn budget(mut self, budget: u64) -> Self {
        self.budget = budget;
        self
    }

    /// Workload RNG seed.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// The owned target machine.
    pub fn target(&self) -> &Target {
        &self.target
    }

    /// The owned workload profile.
    pub fn app(&self) -> &AppProfile {
        &self.app
    }

    /// The canonical text (the [`Display`] form, allocated).
    pub fn canonical(&self) -> String {
        self.to_string()
    }

    /// The stable content hash of the canonical text — the cache key.
    pub fn job_hash(&self) -> JobKey {
        JobKey(fnv1a(self.canonical().as_bytes()))
    }

    /// Borrows this owned spec into the driver's [`RunSpec`] builder.
    /// Attach a recorder or cancellation flag on the returned builder
    /// before `.run()`.
    pub fn to_run_spec(&self) -> RunSpec<'_> {
        RunSpec::new(&self.target, &self.app)
            .mode(self.mode)
            .instructions(self.instructions)
            .budget(self.budget)
            .seed(self.seed)
    }
}

/// Canonical text: every key, fixed order, normalized mode.
impl fmt::Display for JobSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "target={}x{} app={} mode={} instructions={} budget={} seed={}",
            self.target.fullsys.shape.cols(),
            self.target.fullsys.shape.rows(),
            self.app.name,
            self.mode,
            self.instructions,
            self.budget,
            self.seed
        )
    }
}

/// Parses `key=value` tokens separated by whitespace. `target` and `app`
/// are required; `mode`, `instructions`, `budget`, and `seed` default as
/// in [`RunSpec`].
impl FromStr for JobSpec {
    type Err = SpecError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let mut target = None;
        let mut app = None;
        let mut mode = ModeSpec::default();
        let mut instructions = DEFAULT_INSTRUCTIONS;
        let mut budget = DEFAULT_BUDGET;
        let mut seed = DEFAULT_SEED;
        for token in s.split_whitespace() {
            let (key, value) = token.split_once('=').ok_or_else(|| SpecError::BadValue {
                key: "spec",
                detail: format!("expected key=value, got `{token}`"),
            })?;
            match key {
                "target" => {
                    let (cols, rows) =
                        value.split_once('x').ok_or_else(|| SpecError::BadValue {
                            key: "target",
                            detail: format!("expected <cols>x<rows>, got `{value}`"),
                        })?;
                    let parse = |dim: &str| {
                        dim.parse::<u32>().ok().filter(|d| *d > 0).ok_or_else(|| {
                            SpecError::BadValue {
                                key: "target",
                                detail: format!("`{dim}` is not a positive grid dimension"),
                            }
                        })
                    };
                    target = Some(Target::cmp(parse(cols)?, parse(rows)?));
                }
                "app" => {
                    app = Some(
                        AppProfile::by_name(value)
                            .ok_or_else(|| SpecError::UnknownApp(value.to_owned()))?,
                    );
                }
                "mode" => mode = value.parse()?,
                "instructions" => {
                    instructions = value.parse().map_err(|_| SpecError::BadValue {
                        key: "instructions",
                        detail: format!("`{value}` is not an integer"),
                    })?;
                }
                "budget" => {
                    budget = value.parse().map_err(|_| SpecError::BadValue {
                        key: "budget",
                        detail: format!("`{value}` is not an integer"),
                    })?;
                }
                "seed" => {
                    seed = value.parse().map_err(|_| SpecError::BadValue {
                        key: "seed",
                        detail: format!("`{value}` is not an integer"),
                    })?;
                }
                other => return Err(SpecError::UnknownKey(other.to_owned())),
            }
        }
        let target = target.ok_or(SpecError::MissingKey("target"))?;
        let app = app.ok_or(SpecError::MissingKey("app"))?;
        Ok(JobSpec::new(target, app)?
            .mode(mode)
            .instructions(instructions)
            .budget(budget)
            .seed(seed))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::error::Error as _;

    fn water_4x4() -> JobSpec {
        JobSpec::new(Target::cmp(4, 4), AppProfile::water()).unwrap()
    }

    #[test]
    fn display_is_a_parse_fixed_point() {
        let spec = water_4x4()
            .mode(ModeSpec::Reciprocal { quantum: 500, workers: 4, pipeline: false })
            .instructions(300)
            .budget(500_000)
            .seed(9);
        let text = spec.to_string();
        let reparsed: JobSpec = text.parse().unwrap();
        assert_eq!(reparsed, spec);
        assert_eq!(reparsed.to_string(), text);
        assert_eq!(reparsed.job_hash(), spec.job_hash());
    }

    #[test]
    fn shorthand_normalizes_to_one_canonical_text() {
        let long: JobSpec =
            "target=4x4 app=water mode=reciprocal:quantum=2000,workers=0 \
             instructions=1000 budget=10000000 seed=42"
                .parse()
                .unwrap();
        let short: JobSpec = "app=water target=4x4 mode=reciprocal".parse().unwrap();
        assert_eq!(long, short);
        assert_eq!(long.canonical(), short.canonical());
        assert_eq!(long.job_hash(), short.job_hash());
    }

    #[test]
    fn job_hash_is_pinned() {
        // The spill format and cross-process memoization depend on this
        // value never moving silently. If canonicalization legitimately
        // changes, update the pin *and* call it out in DESIGN.md.
        let spec: JobSpec = "target=4x4 app=water".parse().unwrap();
        assert_eq!(
            spec.canonical(),
            "target=4x4 app=water mode=reciprocal:quantum=2000,workers=0 \
             instructions=1000 budget=10000000 seed=42"
        );
        assert_eq!(spec.job_hash().to_string(), "fce6d5450b0eded6");
        assert_eq!(
            "fce6d5450b0eded6".parse::<JobKey>().unwrap(),
            spec.job_hash()
        );
    }

    #[test]
    fn distinct_specs_hash_apart() {
        let base = water_4x4();
        let variants = [
            base.clone().seed(7),
            base.clone().instructions(2_000),
            base.clone().budget(1),
            base.clone().mode(ModeSpec::Hop),
            JobSpec::new(Target::cmp(8, 8), AppProfile::water()).unwrap(),
            JobSpec::new(Target::cmp(4, 4), AppProfile::ocean()).unwrap(),
        ];
        let mut keys: Vec<JobKey> = variants.iter().map(JobSpec::job_hash).collect();
        keys.push(base.job_hash());
        keys.sort();
        keys.dedup();
        assert_eq!(keys.len(), variants.len() + 1, "hash collision in variants");
    }

    #[test]
    fn off_vocabulary_targets_and_apps_are_rejected() {
        let mut custom = Target::cmp(4, 4);
        custom.fullsys.mem_controllers = 2;
        assert!(matches!(
            JobSpec::new(custom, AppProfile::water()),
            Err(SpecError::OffVocabulary(_))
        ));
        let mut app = AppProfile::water();
        app.busy_gap = 99;
        assert!(matches!(
            JobSpec::new(Target::cmp(4, 4), app),
            Err(SpecError::UnknownApp(_))
        ));
    }

    #[test]
    fn parse_errors_name_the_problem() {
        for (text, needle) in [
            ("", "missing `target`"),
            ("target=4x4", "missing `app`"),
            ("target=4x4 app=nonesuch", "nonesuch"),
            ("target=4x4 app=water pace=3", "unknown job-spec key"),
            ("target=4 app=water", "<cols>x<rows>"),
            ("target=0x4 app=water", "positive"),
            ("target=4x4 app=water instructions=lots", "integer"),
            ("bareword", "key=value"),
        ] {
            let err = text.parse::<JobSpec>().unwrap_err();
            assert!(
                err.to_string().contains(needle),
                "`{text}` -> `{err}` (wanted `{needle}`)"
            );
        }
    }

    #[test]
    fn mode_errors_chain_to_parse_mode_error() {
        // The satellite contract: ParseModeError implements Display +
        // Error, so a service-layer chain renders the real cause.
        let err = "target=4x4 app=water mode=warp".parse::<JobSpec>().unwrap_err();
        assert!(matches!(err, SpecError::Mode(_)));
        let source = err.source().expect("mode errors carry a source");
        assert!(
            source.to_string().contains("unknown mode `warp`"),
            "source must be the ParseModeError: {source}"
        );
    }

    #[test]
    fn to_run_spec_runs_equivalently() {
        let spec = water_4x4()
            .mode(ModeSpec::Hop)
            .instructions(200)
            .budget(500_000)
            .seed(1);
        let via_job = spec.to_run_spec().run().unwrap();
        let target = Target::cmp(4, 4);
        let app = AppProfile::water();
        let direct = ra_cosim::RunSpec::new(&target, &app)
            .mode(ModeSpec::Hop)
            .instructions(200)
            .budget(500_000)
            .seed(1)
            .run()
            .unwrap();
        assert_eq!(via_job.cycles, direct.cycles);
        assert_eq!(via_job.messages, direct.messages);
        assert_eq!(via_job.latency, direct.latency);
    }
}
