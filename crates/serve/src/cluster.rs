//! The `ra-relay` coordinator: shards jobs across N backend nodes with
//! health-checked failover and exactly-once handoff.
//!
//! # Shape
//!
//! The relay speaks the same line-JSON wire protocol as a single
//! backend, so every existing client (`ra-loadgen`, the integration
//! tests, curl-with-netcat) points at the relay unchanged. Internally:
//!
//! * a [`HashRing`](crate::ring::HashRing) consistent-hashes each
//!   [`JobKey`] to an owning backend, so identical specs always land on
//!   the same node and its memo store keeps deduplicating across the
//!   whole cluster;
//! * a probe loop drives one [`HealthMachine`] per backend
//!   (Up/Suspect/Down, consecutive-failure thresholds, probe RTT),
//!   emitting `node_up` / `node_down` obs events on transitions;
//! * every forward carries a deadline (connect + read timeouts) and a
//!   bounded, seeded-jitter retry budget — the same exponential policy
//!   the scheduler uses for transient job faults;
//! * a small LRU at the relay edge replicates hot memo entries, so
//!   duplicate-heavy traffic is answered without a backend hop even
//!   while a shard is failing over.
//!
//! # Exactly-once failover
//!
//! When a node dies mid-job the relay re-submits the dead shard's
//! in-flight specs to the ring's next live owner. Re-submission is safe
//! for the same reason journal replay is: a job is content-addressed by
//! its canonical spec hash, results are deterministic, and the
//! survivor's memo store + single-flight coalescing collapse any
//! duplicate arrival (prober re-route racing a client retry) into one
//! run. The client observes exactly one terminal result per submitted
//! job, bit-identical to what the dead node would have produced.

use std::collections::HashMap;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use ra_bench::{json_object, JsonField};
use ra_obs::{Event, ObsSink};

use crate::health::{HealthMachine, HealthPolicy, NodeState, Transition};
use crate::json::Json;
use crate::ring::{HashRing, DEFAULT_VNODES};
use crate::scheduler::backoff_delay;
use crate::spec::{JobKey, JobSpec};
use crate::wire::{err_fields, ok_fields, serve_lines, WireClient};

/// Tuning knobs for [`Relay::start`].
#[derive(Debug, Clone)]
pub struct RelayConfig {
    /// Backend addresses, one per shard slot; slot order is identity.
    pub backends: Vec<String>,
    /// Virtual nodes per backend on the hash ring.
    pub vnodes: usize,
    /// Probe loop tuning (interval, timeout, thresholds).
    pub health: HealthPolicy,
    /// Per-forward connect + response deadline.
    pub forward_deadline: Duration,
    /// Forward attempts per request beyond the first.
    pub retry_budget: u32,
    /// Base backoff between forward attempts; doubles per attempt, plus
    /// seeded jitter so synchronized clients do not stampede.
    pub retry_backoff: Duration,
    /// Relay-edge hot-memo LRU capacity in entries (0 disables it).
    pub edge_cache: usize,
    /// Seed for retry jitter (deterministic tests pin it).
    pub seed: u64,
    /// Idle-connection budget for the relay's own listener.
    pub idle_timeout: Duration,
}

impl Default for RelayConfig {
    fn default() -> Self {
        RelayConfig {
            backends: Vec::new(),
            vnodes: DEFAULT_VNODES,
            health: HealthPolicy::default(),
            forward_deadline: Duration::from_secs(2),
            retry_budget: 3,
            retry_backoff: Duration::from_millis(10),
            edge_cache: 64,
            seed: 42,
            idle_timeout: crate::wire::DEFAULT_IDLE_TIMEOUT,
        }
    }
}

/// Relay-level counters (the backend counters live on the backends and
/// are aggregated by the `stats` verb).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RelayStats {
    /// Submits received by the relay.
    pub submitted: u64,
    /// Requests forwarded to a backend (all verbs).
    pub forwards: u64,
    /// Forward attempts retried after a transport failure.
    pub retries: u64,
    /// Jobs re-routed from a failed backend to a survivor.
    pub reroutes: u64,
    /// Node-down transitions (each fires one failover pass).
    pub failovers: u64,
    /// Submits and results answered from the relay-edge memo LRU.
    pub edge_hits: u64,
}

/// xorshift64* — the same tiny deterministic generator `ra-loadgen`
/// uses for client backoff jitter.
struct Jitter(u64);

impl Jitter {
    fn new(seed: u64) -> Jitter {
        Jitter(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1)
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn below(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            0
        } else {
            self.next() % bound
        }
    }
}

/// Hot-memo LRU at the relay edge: raw `result` response lines keyed by
/// job hash, served without a backend hop.
struct EdgeCache {
    capacity: usize,
    tick: u64,
    map: HashMap<u64, (u64, String)>,
}

impl EdgeCache {
    fn new(capacity: usize) -> EdgeCache {
        EdgeCache {
            capacity,
            tick: 0,
            map: HashMap::new(),
        }
    }

    fn get(&mut self, key: JobKey) -> Option<String> {
        self.tick += 1;
        let tick = self.tick;
        self.map.get_mut(&key.0).map(|(when, line)| {
            *when = tick;
            line.clone()
        })
    }

    fn contains(&self, key: JobKey) -> bool {
        self.map.contains_key(&key.0)
    }

    fn insert(&mut self, key: JobKey, line: String) {
        if self.capacity == 0 {
            return;
        }
        self.tick += 1;
        self.map.insert(key.0, (self.tick, line));
        if self.map.len() > self.capacity {
            // Evict the least-recently-used entry. Linear scan: the
            // edge cache is deliberately small (tens of entries).
            if let Some(&oldest) = self
                .map
                .iter()
                .min_by_key(|(_, (when, _))| *when)
                .map(|(k, _)| k)
            {
                self.map.remove(&oldest);
            }
        }
    }
}

/// One in-flight relay ticket: enough to re-drive the job anywhere.
#[derive(Debug, Clone)]
struct TicketEntry {
    key: JobKey,
    /// Canonical spec text (re-submittable verbatim).
    spec: String,
    priority: Option<String>,
    deadline_ms: Option<u64>,
    /// Backend slot currently owning the job; `None` for a ticket
    /// answered purely from the edge cache.
    backend: Option<usize>,
    /// The owning backend's ticket for this job.
    remote_ticket: u64,
    /// Bumped on every re-route so a forwarder blocked on the old
    /// backend can tell the prober already moved the job.
    generation: u64,
}

struct Node {
    addr: SocketAddr,
    health: Mutex<HealthMachine>,
}

/// Shared relay state: ring, node table, ticket map, edge cache,
/// counters. Connection threads and the probe loop all hold an `Arc`.
pub struct Relay {
    config: RelayConfig,
    ring: HashRing,
    nodes: Vec<Node>,
    tickets: Mutex<HashMap<u64, TicketEntry>>,
    next_ticket: AtomicU64,
    edge: Mutex<EdgeCache>,
    stats: Mutex<RelayStats>,
    obs: ObsSink,
    stop: AtomicBool,
}

impl Relay {
    /// Resolves the backend addresses and builds the shared state (no
    /// I/O beyond DNS resolution; probing starts with [`Relay::spawn`]).
    ///
    /// # Errors
    ///
    /// When `backends` is empty or an address does not resolve.
    pub fn new(config: RelayConfig, obs: ObsSink) -> io::Result<Relay> {
        if config.backends.is_empty() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "a relay needs at least one --backend",
            ));
        }
        let mut nodes = Vec::with_capacity(config.backends.len());
        for text in &config.backends {
            let addr = text.to_socket_addrs()?.next().ok_or_else(|| {
                io::Error::new(
                    io::ErrorKind::InvalidInput,
                    format!("backend `{text}` does not resolve"),
                )
            })?;
            nodes.push(Node {
                addr,
                health: Mutex::new(HealthMachine::new(&config.health)),
            });
        }
        let ring = HashRing::new(nodes.len(), config.vnodes.max(1));
        let edge = EdgeCache::new(config.edge_cache);
        Ok(Relay {
            config,
            ring,
            nodes,
            tickets: Mutex::new(HashMap::new()),
            next_ticket: AtomicU64::new(1),
            edge: Mutex::new(edge),
            stats: Mutex::new(RelayStats::default()),
            obs,
            stop: AtomicBool::new(false),
        })
    }

    /// Relay-level counter snapshot.
    pub fn stats(&self) -> RelayStats {
        *self.stats.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Health state of one backend slot.
    pub fn node_state(&self, node: usize) -> NodeState {
        self.nodes[node]
            .health
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .state()
    }

    fn bump<F: FnOnce(&mut RelayStats)>(&self, f: F) {
        f(&mut self.stats.lock().unwrap_or_else(|e| e.into_inner()));
    }

    /// Per-node liveness mask for the ring.
    fn alive_mask(&self) -> Vec<bool> {
        self.nodes
            .iter()
            .map(|n| {
                n.health
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .state()
                    .routes()
            })
            .collect()
    }

    /// Feeds one probe (or forward) outcome into a node's machine and
    /// reacts to transitions: obs events, and failover on `WentDown`.
    fn record_probe(&self, node: usize, outcome: Result<Duration, ()>) {
        let transition = {
            let mut machine = self.nodes[node]
                .health
                .lock()
                .unwrap_or_else(|e| e.into_inner());
            match outcome {
                Ok(rtt) => machine.on_success(rtt),
                Err(()) => machine.on_failure(),
            }
        };
        match transition {
            Some(Transition::CameUp) => {
                let rtt_ns = self.nodes[node]
                    .health
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .last_rtt_ns();
                self.obs.emit(|| Event::NodeUp {
                    node: node as u64,
                    rtt_ns,
                });
                // Membership changes must be visible to a live tail
                // (CI greps the trace mid-run), not sit buffered.
                let _ = self.obs.flush();
            }
            Some(Transition::WentDown) => {
                let failures = u64::from(
                    self.nodes[node]
                        .health
                        .lock()
                        .unwrap_or_else(|e| e.into_inner())
                        .failures(),
                );
                self.obs.emit(|| Event::NodeDown {
                    node: node as u64,
                    failures,
                });
                self.bump(|s| s.failovers += 1);
                self.fail_over(node);
            }
            None => {}
        }
    }

    /// Re-routes every in-flight job owned by `dead` to the ring's next
    /// live owner, re-submitting each spec exactly once from the
    /// relay's side (the survivor's memo store and coalescing dedup any
    /// racing client-path retry).
    fn fail_over(&self, dead: usize) {
        let alive = self.alive_mask();
        let moved: Vec<(u64, TicketEntry)> = {
            let tickets = self.tickets.lock().unwrap_or_else(|e| e.into_inner());
            tickets
                .iter()
                .filter(|(_, e)| e.backend == Some(dead))
                .map(|(&t, e)| (t, e.clone()))
                .collect()
        };
        let mut handed_off = 0u64;
        for (ticket, entry) in &moved {
            let Some(target) = self.ring.route_live(entry.key, &alive) else {
                break; // nothing alive: the client path will surface it
            };
            match self.resubmit(target, entry) {
                Ok(remote_ticket) => {
                    let mut tickets =
                        self.tickets.lock().unwrap_or_else(|e| e.into_inner());
                    if let Some(live) = tickets.get_mut(ticket) {
                        // Only move it if a client thread has not
                        // already re-driven it elsewhere.
                        if live.backend == Some(dead) {
                            live.backend = Some(target);
                            live.remote_ticket = remote_ticket;
                            live.generation += 1;
                            handed_off += 1;
                            let job = entry.key.0;
                            self.obs.emit(|| Event::Reroute {
                                job,
                                from: dead as u64,
                                to: target as u64,
                            });
                        }
                    }
                }
                Err(_) => {
                    // Survivor unreachable too; its own probe loop will
                    // demote it. The client path keeps retrying.
                }
            }
        }
        self.bump(|s| s.reroutes += handed_off);
        self.obs.emit(|| Event::Failover {
            node: dead as u64,
            inflight: handed_off,
        });
        let _ = self.obs.flush();
    }

    /// Submits an entry's spec to `target` over a fresh short-lived
    /// connection, returning the backend's ticket.
    fn resubmit(&self, target: usize, entry: &TicketEntry) -> io::Result<u64> {
        let mut client = WireClient::connect_timeout(
            &self.nodes[target].addr,
            self.config.forward_deadline,
        )?;
        client.set_read_timeout(Some(self.config.forward_deadline))?;
        let response = client.submit(
            &entry.spec,
            entry.priority.as_deref(),
            entry.deadline_ms,
        )?;
        self.bump(|s| s.forwards += 1);
        response
            .get("ticket")
            .and_then(Json::as_u64)
            .ok_or_else(|| {
                io::Error::new(
                    io::ErrorKind::InvalidData,
                    "resubmit response carried no ticket",
                )
            })
    }

    /// One probe round over every backend.
    fn probe_all(&self) {
        for node in 0..self.nodes.len() {
            let started = Instant::now();
            let outcome = WireClient::connect_timeout(
                &self.nodes[node].addr,
                self.config.health.probe_timeout,
            )
            .and_then(|mut client| {
                client.set_read_timeout(Some(self.config.health.probe_timeout))?;
                client.health()
            });
            match outcome {
                Ok(response) if response.get("ok").and_then(Json::as_bool) == Some(true) => {
                    self.record_probe(node, Ok(started.elapsed()));
                }
                _ => self.record_probe(node, Err(())),
            }
        }
    }

    fn probe_loop(&self) {
        // First round immediately: traffic may arrive before the first
        // interval elapses and the mask should reflect reality.
        while !self.stop.load(Ordering::Relaxed) {
            self.probe_all();
            let mut waited = Duration::ZERO;
            let step = Duration::from_millis(25);
            while waited < self.config.health.probe_interval {
                if self.stop.load(Ordering::Relaxed) {
                    return;
                }
                std::thread::sleep(step);
                waited += step;
            }
        }
    }
}

/// A per-connection pool of backend clients: lazily connected, dropped
/// on any transport error so the next use reconnects fresh. One pool
/// per relay connection thread — forwards never contend on a shared
/// backend socket.
pub struct BackendPool {
    clients: Vec<Option<WireClient>>,
}

impl BackendPool {
    /// An empty pool sized for `relay`'s node table.
    pub fn new(relay: &Relay) -> BackendPool {
        BackendPool {
            clients: (0..relay.nodes.len()).map(|_| None).collect(),
        }
    }

    /// A connected client for `node`, reusing the pooled connection.
    fn client(
        &mut self,
        relay: &Relay,
        node: usize,
    ) -> io::Result<&mut WireClient> {
        if self.clients[node].is_none() {
            let client = WireClient::connect_timeout(
                &relay.nodes[node].addr,
                relay.config.forward_deadline,
            )?;
            client.set_read_timeout(Some(relay.config.forward_deadline))?;
            self.clients[node] = Some(client);
        }
        Ok(self.clients[node].as_mut().expect("just inserted"))
    }

    fn invalidate(&mut self, node: usize) {
        self.clients[node] = None;
    }
}

/// Forwards one raw request line to `node`, with the read deadline
/// stretched to `read_deadline` (long-poll `result` calls must outlive
/// the job they wait for). Invalidates the pooled connection on error.
fn forward(
    relay: &Relay,
    pool: &mut BackendPool,
    node: usize,
    request: &str,
    read_deadline: Duration,
) -> io::Result<String> {
    let outcome = (|| {
        let client = pool.client(relay, node)?;
        client.set_read_timeout(Some(read_deadline))?;
        let response = client.call_raw(request);
        // Restore the default forward deadline for the next reuse.
        let _ = client.set_read_timeout(Some(relay.config.forward_deadline));
        response
    })();
    match outcome {
        Ok(line) => {
            relay.bump(|s| s.forwards += 1);
            Ok(line)
        }
        Err(err) => {
            // A desynchronized connection (timed-out long poll) cannot
            // be reused: a stale response would answer the wrong call.
            pool.invalidate(node);
            Err(err)
        }
    }
}

/// How long a `result` forward may block: the client's requested wait
/// plus one forward deadline of slack for transport. An unbounded
/// client wait is capped — the relay never parks a thread forever on
/// one backend read.
fn result_read_deadline(relay: &Relay, timeout_ms: Option<u64>) -> (u64, Duration) {
    let wait_ms = timeout_ms.unwrap_or(600_000);
    let deadline = Duration::from_millis(wait_ms) + relay.config.forward_deadline;
    (wait_ms, deadline)
}

fn bad_request(detail: &str) -> String {
    err_fields(
        "bad_request",
        vec![("detail", JsonField::Str(detail.to_owned()))],
    )
}

fn no_backend() -> String {
    err_fields(
        "no_backend",
        vec![
            (
                "detail",
                JsonField::Str("no live backend for this key".into()),
            ),
            ("retryable", JsonField::Raw("true".into())),
        ],
    )
}

/// Whether a backend error response means "this backend no longer knows
/// the job" (restart lost the ticket) rather than a client error.
fn is_lost_ticket(raw: &str) -> bool {
    Json::parse(raw)
        .ok()
        .and_then(|j| j.get("error").and_then(Json::as_str).map(String::from))
        .is_some_and(|code| code == "unknown_ticket")
}

/// Dispatches one relay request line. Pure with respect to listener
/// I/O (the pool does backend I/O), so tests drive it without sockets
/// on the front side.
pub fn handle_relay_request(relay: &Relay, pool: &mut BackendPool, line: &str) -> String {
    let request = match Json::parse(line) {
        Ok(request) => request,
        Err(err) => return bad_request(&err.to_string()),
    };
    let verb = request.get("verb").and_then(Json::as_str).unwrap_or("");
    match verb {
        "submit" => relay_submit(relay, pool, &request),
        "status" | "result" | "cancel" => relay_forward_ticket(relay, pool, &request, verb),
        "stats" => {
            // Mirror the backend: a stats poll is a sync point for the
            // relay's own trace stream.
            let _ = relay.obs.flush();
            relay_stats(relay, pool)
        }
        "node_stats" => relay_node_stats(relay, pool),
        "health" => {
            let alive = relay.alive_mask();
            let up = alive.iter().filter(|a| **a).count() as u64;
            ok_fields(vec![
                ("role", JsonField::Str("relay".into())),
                ("state", JsonField::Str("up".into())),
                ("nodes", JsonField::Int(alive.len() as u64)),
                ("nodes_routable", JsonField::Int(up)),
            ])
        }
        "" => bad_request("`verb` is required"),
        other => err_fields(
            "unknown_verb",
            vec![("detail", JsonField::Str(format!("`{other}`")))],
        ),
    }
}

fn relay_submit(relay: &Relay, pool: &mut BackendPool, request: &Json) -> String {
    let Some(spec_text) = request.get("spec").and_then(Json::as_str) else {
        return bad_request("`spec` is required");
    };
    // Canonicalize at the edge: routing must hash the canonical form,
    // and malformed specs should never cost a backend hop.
    let spec: JobSpec = match spec_text.parse() {
        Ok(spec) => spec,
        Err(err) => {
            return err_fields(
                "bad_spec",
                vec![("detail", JsonField::Str(err.to_string()))],
            )
        }
    };
    let key = spec.job_hash();
    let canonical = spec.canonical();
    let priority = request
        .get("priority")
        .and_then(Json::as_str)
        .map(String::from);
    let deadline_ms = request.get("deadline_ms").and_then(Json::as_u64);
    relay.bump(|s| s.submitted += 1);

    // Edge hit: answer without a backend hop, even mid-failover.
    let edge_hit = {
        let edge = relay.edge.lock().unwrap_or_else(|e| e.into_inner());
        edge.contains(key)
    };
    if edge_hit {
        relay.bump(|s| s.edge_hits += 1);
        let ticket = relay.next_ticket.fetch_add(1, Ordering::Relaxed);
        let mut tickets = relay.tickets.lock().unwrap_or_else(|e| e.into_inner());
        tickets.insert(
            ticket,
            TicketEntry {
                key,
                spec: canonical,
                priority,
                deadline_ms,
                backend: None,
                remote_ticket: 0,
                generation: 0,
            },
        );
        return ok_fields(vec![
            ("ticket", JsonField::Int(ticket)),
            ("job", JsonField::Str(key.to_string())),
            ("disposition", JsonField::Str("cached".into())),
            ("depth", JsonField::Int(0)),
            ("edge", JsonField::Raw("true".into())),
        ]);
    }

    // Forward to the ring owner, with bounded jittered retries walking
    // past nodes that fail mid-forward.
    let forward_line = {
        let mut fields = vec![
            ("verb", JsonField::Str("submit".into())),
            ("spec", JsonField::Str(canonical.clone())),
        ];
        if let Some(priority) = &priority {
            fields.push(("priority", JsonField::Str(priority.clone())));
        }
        if let Some(ms) = deadline_ms {
            fields.push(("deadline_ms", JsonField::Int(ms)));
        }
        json_object(&fields)
    };
    let mut jitter = Jitter::new(relay.config.seed ^ key.0);
    let attempts = relay.config.retry_budget.max(1);
    for attempt in 1..=attempts {
        let alive = relay.alive_mask();
        let Some(node) = relay.ring.route_live(key, &alive) else {
            return no_backend();
        };
        match forward(
            relay,
            pool,
            node,
            &forward_line,
            relay.config.forward_deadline,
        ) {
            Ok(raw) => {
                let Ok(response) = Json::parse(&raw) else {
                    return raw; // foreign but delivered: pass through
                };
                if response.get("ok").and_then(Json::as_bool) != Some(true) {
                    return raw; // queue_full etc.: client owns that policy
                }
                let remote_ticket = response
                    .get("ticket")
                    .and_then(Json::as_u64)
                    .unwrap_or(0);
                let disposition = response
                    .get("disposition")
                    .and_then(Json::as_str)
                    .unwrap_or("enqueued")
                    .to_owned();
                let depth = response.get("depth").and_then(Json::as_u64).unwrap_or(0);
                let ticket = relay.next_ticket.fetch_add(1, Ordering::Relaxed);
                let mut tickets =
                    relay.tickets.lock().unwrap_or_else(|e| e.into_inner());
                tickets.insert(
                    ticket,
                    TicketEntry {
                        key,
                        spec: canonical,
                        priority,
                        deadline_ms,
                        backend: Some(node),
                        remote_ticket,
                        generation: 0,
                    },
                );
                return ok_fields(vec![
                    ("ticket", JsonField::Int(ticket)),
                    ("job", JsonField::Str(key.to_string())),
                    ("disposition", JsonField::Str(disposition)),
                    ("depth", JsonField::Int(depth)),
                    ("node", JsonField::Int(node as u64)),
                ]);
            }
            Err(_) => {
                relay.record_probe(node, Err(()));
                if attempt < attempts {
                    relay.bump(|s| s.retries += 1);
                    let base = backoff_delay(relay.config.retry_backoff, attempt);
                    let extra = jitter.below(base.as_millis().max(1) as u64);
                    std::thread::sleep(base + Duration::from_millis(extra));
                }
            }
        }
    }
    no_backend()
}

/// status / result / cancel: look the relay ticket up, forward to the
/// owning backend, and on transport failure or a backend restart
/// re-drive the job on the ring's live owner (the failover path).
fn relay_forward_ticket(
    relay: &Relay,
    pool: &mut BackendPool,
    request: &Json,
    verb: &str,
) -> String {
    let Some(ticket) = request.get("ticket").and_then(Json::as_u64) else {
        return bad_request("`ticket` must be a non-negative integer");
    };
    let entry = {
        let tickets = relay.tickets.lock().unwrap_or_else(|e| e.into_inner());
        tickets.get(&ticket).cloned()
    };
    let Some(mut entry) = entry else {
        return err_fields("unknown_ticket", vec![]);
    };

    // Edge tickets: the result is (or was) in the edge LRU.
    if entry.backend.is_none() {
        match verb {
            "status" => return ok_fields(vec![("state", JsonField::Str("done".into()))]),
            "cancel" => {
                return ok_fields(vec![("cancel", JsonField::Str("already_done".into()))])
            }
            _ => {
                let cached = {
                    let mut edge =
                        relay.edge.lock().unwrap_or_else(|e| e.into_inner());
                    edge.get(entry.key)
                };
                if let Some(raw) = cached {
                    relay.bump(|s| s.edge_hits += 1);
                    relay.tickets.lock().unwrap_or_else(|e| e.into_inner()).remove(&ticket);
                    return raw;
                }
                // Evicted between submit and result: fall through to a
                // re-drive on the owning ring node.
            }
        }
    }

    let timeout_ms = request.get("timeout_ms").and_then(Json::as_u64);
    let (wait_ms, read_deadline) = result_read_deadline(relay, timeout_ms);
    let attempts = relay.config.retry_budget.max(1) + 1;
    let mut jitter = Jitter::new(relay.config.seed ^ entry.key.0 ^ ticket);
    for attempt in 1..=attempts {
        // Ensure the job is owned by a live backend, re-submitting it if
        // its owner died or restarted (exactly-once: the survivor memo
        // dedups by JobKey whether this thread or the prober wins).
        let node = match entry.backend {
            Some(node) if relay.node_state(node).routes() => node,
            _ => {
                let alive = relay.alive_mask();
                let Some(target) = relay.ring.route_live(entry.key, &alive) else {
                    return no_backend();
                };
                match relay.resubmit(target, &entry) {
                    Ok(remote_ticket) => {
                        relay.bump(|s| s.reroutes += 1);
                        let from = entry.backend.map_or(u64::MAX, |n| n as u64);
                        let job = entry.key.0;
                        relay.obs.emit(|| Event::Reroute {
                            job,
                            from,
                            to: target as u64,
                        });
                        entry.backend = Some(target);
                        entry.remote_ticket = remote_ticket;
                        entry.generation += 1;
                        let mut tickets =
                            relay.tickets.lock().unwrap_or_else(|e| e.into_inner());
                        if let Some(live) = tickets.get_mut(&ticket) {
                            *live = entry.clone();
                        }
                        target
                    }
                    Err(_) => {
                        relay.record_probe(target, Err(()));
                        backoff_sleep(relay, &mut jitter, attempt, attempts);
                        continue;
                    }
                }
            }
        };
        let forward_line = match verb {
            "result" => json_object(&[
                ("verb", JsonField::Str("result".into())),
                ("ticket", JsonField::Int(entry.remote_ticket)),
                ("timeout_ms", JsonField::Int(wait_ms)),
            ]),
            _ => json_object(&[
                ("verb", JsonField::Str(verb.to_owned())),
                ("ticket", JsonField::Int(entry.remote_ticket)),
            ]),
        };
        let deadline = if verb == "result" {
            read_deadline
        } else {
            relay.config.forward_deadline
        };
        match forward(relay, pool, node, &forward_line, deadline) {
            Ok(raw) => {
                if is_lost_ticket(&raw) {
                    // The backend restarted and lost its tickets; the
                    // journal replay may still be re-running the job.
                    // Re-submit (memo/coalescing dedups) and retry.
                    entry.backend = None;
                    backoff_sleep(relay, &mut jitter, attempt, attempts);
                    continue;
                }
                if verb == "result" {
                    cache_terminal_result(relay, &entry, ticket, &raw);
                }
                return raw;
            }
            Err(_) => {
                relay.record_probe(node, Err(()));
                // The prober may have moved the job already; pick up
                // its new home before re-driving it ourselves.
                let latest = {
                    let tickets =
                        relay.tickets.lock().unwrap_or_else(|e| e.into_inner());
                    tickets.get(&ticket).cloned()
                };
                match latest {
                    Some(live) if live.generation > entry.generation => entry = live,
                    Some(live) => {
                        entry = live;
                        entry.backend = None; // force a re-route
                    }
                    None => return err_fields("unknown_ticket", vec![]),
                }
                backoff_sleep(relay, &mut jitter, attempt, attempts);
            }
        }
    }
    err_fields(
        "unavailable",
        vec![
            (
                "detail",
                JsonField::Str("backends unreachable within the retry budget".into()),
            ),
            ("retryable", JsonField::Raw("true".into())),
        ],
    )
}

fn backoff_sleep(relay: &Relay, jitter: &mut Jitter, attempt: u32, attempts: u32) {
    if attempt < attempts {
        relay.bump(|s| s.retries += 1);
        let base = backoff_delay(relay.config.retry_backoff, attempt);
        let extra = jitter.below(base.as_millis().max(1) as u64);
        std::thread::sleep(base + Duration::from_millis(extra));
    }
}

/// A terminal `result` response replicates into the edge LRU (and the
/// consumed relay ticket is dropped). Only memoizable outcomes are
/// cached: completed/cached results are deterministic; failures are
/// not replicated so a transient fault cannot get pinned at the edge.
fn cache_terminal_result(relay: &Relay, entry: &TicketEntry, ticket: u64, raw: &str) {
    let Ok(response) = Json::parse(raw) else {
        return;
    };
    let outcome = response.get("outcome").and_then(Json::as_str);
    let terminal = outcome.is_some();
    if matches!(outcome, Some("completed" | "cached")) {
        let mut edge = relay.edge.lock().unwrap_or_else(|e| e.into_inner());
        edge.insert(entry.key, raw.to_owned());
    }
    if terminal {
        // The backend collected its ticket; ours is spent too.
        relay
            .tickets
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .remove(&ticket);
    }
}

/// Aggregated cluster stats: the numeric counters of every reachable
/// backend summed, plus the relay's own counters and node tallies.
fn relay_stats(relay: &Relay, pool: &mut BackendPool) -> String {
    const SUMMED: &[&str] = &[
        "submitted",
        "admitted",
        "rejected",
        "coalesced",
        "cache_hits",
        "completed",
        "failed",
        "cancelled",
        "expired",
        "deadline_exceeded",
        "poisoned",
        "retries",
        "respawns",
        "journal_compactions",
        "recovered_results",
        "resumed_jobs",
        "queue_depth",
        "store_hits",
        "store_misses",
        "insertions",
        "evictions",
    ];
    let mut sums: HashMap<&str, u64> = SUMMED.iter().map(|&k| (k, 0)).collect();
    let mut reachable = 0u64;
    for node in 0..relay.nodes.len() {
        let stats_line = json_object(&[("verb", JsonField::Str("stats".into()))]);
        let Ok(raw) = forward(
            relay,
            pool,
            node,
            &stats_line,
            relay.config.forward_deadline,
        ) else {
            relay.record_probe(node, Err(()));
            continue;
        };
        let Ok(response) = Json::parse(&raw) else { continue };
        reachable += 1;
        for &field in SUMMED {
            if let Some(v) = response.get(field).and_then(Json::as_u64) {
                *sums.get_mut(field).expect("preseeded") += v;
            }
        }
    }
    let submitted = sums["submitted"];
    let memoized = sums["cache_hits"] + sums["coalesced"];
    let memo_ratio = if submitted == 0 {
        0.0
    } else {
        memoized as f64 / submitted as f64
    };
    let lookups = sums["store_hits"] + sums["store_misses"];
    let hit_ratio = if lookups == 0 {
        0.0
    } else {
        sums["store_hits"] as f64 / lookups as f64
    };
    let alive = relay.alive_mask();
    let nodes_routable = alive.iter().filter(|a| **a).count() as u64;
    let relay_stats = relay.stats();
    let mut fields: Vec<(&'static str, JsonField)> = SUMMED
        .iter()
        .map(|&k| (k, JsonField::Int(sums[k])))
        .collect();
    fields.push(("hit_ratio", JsonField::Num(hit_ratio)));
    fields.push(("memo_ratio", JsonField::Num(memo_ratio)));
    fields.push(("role", JsonField::Str("relay".into())));
    fields.push(("nodes", JsonField::Int(alive.len() as u64)));
    fields.push(("nodes_routable", JsonField::Int(nodes_routable)));
    fields.push(("nodes_reporting", JsonField::Int(reachable)));
    fields.push(("relay_submitted", JsonField::Int(relay_stats.submitted)));
    fields.push(("relay_forwards", JsonField::Int(relay_stats.forwards)));
    fields.push(("relay_retries", JsonField::Int(relay_stats.retries)));
    fields.push(("relay_reroutes", JsonField::Int(relay_stats.reroutes)));
    fields.push(("relay_failovers", JsonField::Int(relay_stats.failovers)));
    fields.push(("relay_edge_hits", JsonField::Int(relay_stats.edge_hits)));
    ok_fields(fields)
}

/// Per-node breakdown: health state, probe RTT, and each reachable
/// backend's own counters, as a JSON array.
fn relay_node_stats(relay: &Relay, pool: &mut BackendPool) -> String {
    let mut rows = Vec::with_capacity(relay.nodes.len());
    for node in 0..relay.nodes.len() {
        let (state, failures, rtt_ns) = {
            let machine = relay.nodes[node]
                .health
                .lock()
                .unwrap_or_else(|e| e.into_inner());
            (
                machine.state(),
                u64::from(machine.failures()),
                machine.last_rtt_ns(),
            )
        };
        let mut fields = vec![
            ("node", JsonField::Int(node as u64)),
            (
                "addr",
                JsonField::Str(relay.nodes[node].addr.to_string()),
            ),
            ("state", JsonField::Str(state.name().into())),
            ("failures", JsonField::Int(failures)),
            ("rtt_ns", JsonField::Int(rtt_ns)),
        ];
        if state.routes() {
            let stats_line = json_object(&[("verb", JsonField::Str("stats".into()))]);
            if let Ok(raw) = forward(
                relay,
                pool,
                node,
                &stats_line,
                relay.config.forward_deadline,
            ) {
                if let Ok(response) = Json::parse(&raw) {
                    for field in ["submitted", "completed", "cache_hits", "coalesced", "queue_depth"]
                    {
                        if let Some(v) = response.get(field).and_then(Json::as_u64) {
                            // Narrow static strs: map to the matching literal.
                            let name: &'static str = match field {
                                "submitted" => "submitted",
                                "completed" => "completed",
                                "cache_hits" => "cache_hits",
                                "coalesced" => "coalesced",
                                _ => "queue_depth",
                            };
                            fields.push((name, JsonField::Int(v)));
                        }
                    }
                }
            }
        }
        rows.push(json_object(&fields));
    }
    ok_fields(vec![
        ("role", JsonField::Str("relay".into())),
        ("nodes", JsonField::Raw(format!("[{}]", rows.join(",")))),
    ])
}

/// A bound, not-yet-running relay server (mirrors
/// [`WireServer`](crate::wire::WireServer)).
pub struct RelayServer {
    listener: TcpListener,
    relay: Arc<Relay>,
}

impl RelayServer {
    /// Binds `addr` around a relay.
    ///
    /// # Errors
    ///
    /// Propagates the bind failure.
    pub fn bind(addr: impl ToSocketAddrs, relay: Relay) -> io::Result<RelayServer> {
        Ok(RelayServer {
            listener: TcpListener::bind(addr)?,
            relay: Arc::new(relay),
        })
    }

    /// The bound address (resolves port 0).
    ///
    /// # Errors
    ///
    /// Propagates the socket query failure.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Starts the probe loop and the accept loop on background
    /// threads; the handle stops both.
    ///
    /// # Errors
    ///
    /// Propagates the socket query / thread spawn failure.
    pub fn spawn(self) -> io::Result<RelayHandle> {
        let addr = self.local_addr()?;
        let relay = self.relay.clone();
        let prober_relay = relay.clone();
        let prober = std::thread::Builder::new()
            .name("ra-relay-probe".into())
            .spawn(move || prober_relay.probe_loop())?;
        let accept_relay = relay.clone();
        let listener = self.listener;
        let accept = std::thread::Builder::new()
            .name("ra-relay-accept".into())
            .spawn(move || accept_loop(&listener, &accept_relay))?;
        Ok(RelayHandle {
            addr,
            relay,
            threads: vec![prober, accept],
        })
    }
}

fn accept_loop(listener: &TcpListener, relay: &Arc<Relay>) {
    for conn in listener.incoming() {
        if relay.stop.load(Ordering::Relaxed) {
            return;
        }
        let Ok(stream) = conn else { continue };
        let relay = relay.clone();
        let _ = std::thread::Builder::new()
            .name("ra-relay-conn".into())
            .spawn(move || {
                let mut pool = BackendPool::new(&relay);
                let idle = relay.config.idle_timeout;
                serve_lines(stream, idle, |line| {
                    handle_relay_request(&relay, &mut pool, line)
                });
            });
    }
}

/// Stops a spawned relay (probe + accept loops) on drop or explicitly.
pub struct RelayHandle {
    addr: SocketAddr,
    relay: Arc<Relay>,
    threads: Vec<JoinHandle<()>>,
}

impl RelayHandle {
    /// Where the relay listens.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shared relay state (stats, node health).
    pub fn relay(&self) -> Arc<Relay> {
        self.relay.clone()
    }

    /// Signals both loops and joins them.
    pub fn stop(mut self) {
        self.stop_inner();
    }

    fn stop_inner(&mut self) {
        if self.threads.is_empty() {
            return;
        }
        self.relay.stop.store(true, Ordering::Relaxed);
        // Unblock the accept() so the loop observes the flag.
        let _ = TcpStream::connect(self.addr);
        for thread in self.threads.drain(..) {
            let _ = thread.join();
        }
        let _ = self.relay.obs.flush();
    }
}

impl Drop for RelayHandle {
    fn drop(&mut self) {
        self.stop_inner();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheduler::{JobService, ServeConfig};
    use crate::wire::WireServer;

    const SPEC: &str = "target=2x2 app=water mode=fixed:10 instructions=20 budget=100000";

    fn backend(workers: usize) -> crate::wire::ServerHandle {
        let service = JobService::start(
            ServeConfig {
                workers,
                ..ServeConfig::default()
            },
            ObsSink::disabled(),
        )
        .expect("service starts");
        WireServer::bind("127.0.0.1:0", service)
            .expect("bind backend")
            .spawn()
            .expect("spawn backend")
    }

    fn relay_over(addrs: &[SocketAddr]) -> RelayHandle {
        let config = RelayConfig {
            backends: addrs.iter().map(|a| a.to_string()).collect(),
            health: HealthPolicy {
                probe_interval: Duration::from_millis(50),
                probe_timeout: Duration::from_millis(250),
                fail_threshold: 2,
                recover_threshold: 1,
            },
            forward_deadline: Duration::from_millis(500),
            retry_backoff: Duration::from_millis(5),
            ..RelayConfig::default()
        };
        let relay = Relay::new(config, ObsSink::disabled()).expect("relay config");
        RelayServer::bind("127.0.0.1:0", relay)
            .expect("bind relay")
            .spawn()
            .expect("spawn relay")
    }

    #[test]
    fn relay_round_trips_submit_and_result() {
        let b0 = backend(1);
        let b1 = backend(1);
        let relay = relay_over(&[b0.addr(), b1.addr()]);
        let mut client = WireClient::connect(relay.addr()).unwrap();

        let submit = client.submit(SPEC, Some("high"), None).unwrap();
        assert_eq!(submit.get("ok").and_then(Json::as_bool), Some(true));
        assert_eq!(
            submit.get("disposition").and_then(Json::as_str),
            Some("enqueued")
        );
        let ticket = submit.get("ticket").and_then(Json::as_u64).unwrap();
        let node = submit.get("node").and_then(Json::as_u64).unwrap();
        assert!(node < 2);

        let result = client.result(ticket, Some(30_000)).unwrap();
        assert_eq!(
            result.get("outcome").and_then(Json::as_str),
            Some("completed")
        );
        let cycles = result
            .get("result")
            .and_then(|r| r.get("cycles"))
            .and_then(Json::as_u64)
            .unwrap();
        assert!(cycles > 0);

        // Same spec again: the edge LRU answers without a backend hop.
        let again = client.submit(SPEC, None, None).unwrap();
        assert_eq!(
            again.get("disposition").and_then(Json::as_str),
            Some("cached")
        );
        assert_eq!(again.get("edge").and_then(Json::as_bool), Some(true));
        let ticket2 = again.get("ticket").and_then(Json::as_u64).unwrap();
        let cached = client.result(ticket2, Some(5_000)).unwrap();
        assert_eq!(
            cached.get("result").and_then(|r| r.get("cycles")).and_then(Json::as_u64),
            Some(cycles),
            "edge-cached result must be bit-identical"
        );
        assert!(relay.relay().stats().edge_hits >= 2);
        relay.stop();
        b0.stop();
        b1.stop();
    }

    #[test]
    fn relay_stats_aggregate_and_node_stats_break_down() {
        let b0 = backend(1);
        let b1 = backend(1);
        let relay = relay_over(&[b0.addr(), b1.addr()]);
        let mut client = WireClient::connect(relay.addr()).unwrap();
        let submit = client.submit(SPEC, None, None).unwrap();
        let ticket = submit.get("ticket").and_then(Json::as_u64).unwrap();
        client.result(ticket, Some(30_000)).unwrap();

        let stats = client.stats().unwrap();
        assert_eq!(stats.get("role").and_then(Json::as_str), Some("relay"));
        assert_eq!(stats.get("submitted").and_then(Json::as_u64), Some(1));
        assert_eq!(stats.get("completed").and_then(Json::as_u64), Some(1));
        assert_eq!(stats.get("nodes").and_then(Json::as_u64), Some(2));
        assert!(stats.get("relay_forwards").and_then(Json::as_u64).unwrap() >= 2);

        let nodes = client.node_stats().unwrap();
        let rows = match nodes.get("nodes") {
            Some(Json::Arr(rows)) => rows,
            other => panic!("nodes must be an array, got {other:?}"),
        };
        assert_eq!(rows.len(), 2);
        for row in rows {
            assert_eq!(row.get("state").and_then(Json::as_str), Some("up"));
        }
        relay.stop();
        b0.stop();
        b1.stop();
    }

    #[test]
    fn killing_a_backend_fails_over_with_the_same_result() {
        let b0 = backend(1);
        let b1 = backend(1);
        let relay = relay_over(&[b0.addr(), b1.addr()]);
        let mut backends = [Some(b0), Some(b1)];
        let mut client = WireClient::connect(relay.addr()).unwrap();

        // Pin down which node owns the spec, then kill exactly that one.
        let submit = client.submit(SPEC, None, None).unwrap();
        let ticket = submit.get("ticket").and_then(Json::as_u64).unwrap();
        let owner = submit.get("node").and_then(Json::as_u64).unwrap() as usize;
        let baseline = client.result(ticket, Some(30_000)).unwrap();
        let cycles = baseline
            .get("result")
            .and_then(|r| r.get("cycles"))
            .and_then(Json::as_u64)
            .unwrap();

        // Kill the owner; the cluster must keep serving the same spec
        // with a bit-identical result (edge LRU or survivor memo).
        backends[owner].take().unwrap().stop();
        // Probe loop: fail_threshold=2 at 50ms interval -> Down well
        // within a second.
        let relay_state = relay.relay();
        let deadline = Instant::now() + Duration::from_secs(5);
        while relay_state.node_state(owner).routes() {
            assert!(
                Instant::now() < deadline,
                "probe loop never marked the dead node Down"
            );
            std::thread::sleep(Duration::from_millis(20));
        }

        let again = client.submit(SPEC, None, None).unwrap();
        assert_eq!(again.get("ok").and_then(Json::as_bool), Some(true));
        let ticket2 = again.get("ticket").and_then(Json::as_u64).unwrap();
        let failed_over = client.result(ticket2, Some(30_000)).unwrap();
        assert_eq!(
            failed_over
                .get("result")
                .and_then(|r| r.get("cycles"))
                .and_then(Json::as_u64),
            Some(cycles),
            "post-failover result must be bit-identical"
        );
        relay.stop();
        for handle in backends.into_iter().flatten() {
            handle.stop();
        }
    }

    #[test]
    fn in_flight_jobs_survive_a_backend_death() {
        // Slow enough to still be running when the backend dies.
        let slow_spec =
            "target=4x4 app=water mode=fixed:10 instructions=3000 budget=10000000";
        let b0 = backend(2);
        let b1 = backend(2);
        let relay = relay_over(&[b0.addr(), b1.addr()]);
        let mut backends = [Some(b0), Some(b1)];
        let mut client = WireClient::connect(relay.addr()).unwrap();
        let submit = client.submit(slow_spec, None, None).unwrap();
        assert_eq!(submit.get("ok").and_then(Json::as_bool), Some(true));
        let ticket = submit.get("ticket").and_then(Json::as_u64).unwrap();
        let owner = submit.get("node").and_then(Json::as_u64).unwrap() as usize;

        // Kill the owner while the job is in flight.
        backends[owner].take().unwrap().stop();
        let result = client.result(ticket, Some(60_000)).unwrap();
        assert_eq!(
            result.get("outcome").and_then(Json::as_str),
            Some("completed"),
            "failover must re-drive the in-flight job: {result:?}"
        );
        let stats = relay.relay().stats();
        assert!(
            stats.reroutes >= 1,
            "the handoff must be accounted as a reroute: {stats:?}"
        );
        relay.stop();
        for handle in backends.into_iter().flatten() {
            handle.stop();
        }
    }

    #[test]
    fn bad_specs_are_rejected_at_the_edge() {
        let b0 = backend(1);
        let relay = relay_over(&[b0.addr()]);
        let mut client = WireClient::connect(relay.addr()).unwrap();
        let response = client
            .call(r#"{"verb":"submit","spec":"target=4x4 app=water mode=warp"}"#)
            .unwrap();
        assert_eq!(response.get("ok").and_then(Json::as_bool), Some(false));
        assert_eq!(
            response.get("error").and_then(Json::as_str),
            Some("bad_spec")
        );
        // No forwards spent on it.
        assert_eq!(relay.relay().stats().submitted, 0);
        relay.stop();
        b0.stop();
    }
}
