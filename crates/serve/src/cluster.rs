//! The `ra-relay` coordinator: shards jobs across N backend nodes with
//! health-checked failover and exactly-once handoff.
//!
//! # Shape
//!
//! The relay speaks the same wire protocol as a single backend — both
//! codecs, sniffed per connection — so every existing client
//! (`ra-loadgen`, the integration tests, curl-with-netcat) points at
//! the relay unchanged. Internally:
//!
//! * a [`HashRing`](crate::ring::HashRing) consistent-hashes each
//!   [`JobKey`] to an owning backend, so identical specs always land on
//!   the same node and its memo store keeps deduplicating across the
//!   whole cluster;
//! * requests and responses are typed ([`Request`]/[`Response`]) end to
//!   end — the relay decodes once at its edge, routes the enum, and
//!   re-encodes per client codec. Forwards to backends ride the binary
//!   codec; the client side keeps whatever it sniffed;
//! * the batch verbs fan out as batches: `submit_batch` partitions its
//!   items by ring owner and forwards one sub-batch per owner,
//!   `status_batch`/`result_batch` group tickets by owning backend —
//!   one round-trip per backend instead of one per item, with a
//!   per-item retrying fallback when a sub-batch forward dies;
//! * a probe loop drives one [`HealthMachine`] per backend
//!   (Up/Suspect/Down, consecutive-failure thresholds, probe RTT),
//!   emitting `node_up` / `node_down` obs events on transitions;
//! * layered on the health machine, every backend carries a
//!   [`CircuitBreaker`] fed by the *request* stream: error rate or
//!   over-budget RTTs trip it open, routing steers around open
//!   breakers, and a probe-limited half-open phase closes it again
//!   (`breaker_transition` obs events mark every flip);
//! * when every owner for a key is down, saturated (`queue_full`), or
//!   breaker-open, a submit that opted into degradation
//!   (`allow_degraded` with a floor admitting `hop`) is answered *at
//!   the edge*: the relay runs the analytic hop model inline and
//!   returns a `fidelity=hop` result with disposition `degraded`
//!   instead of an error — the cluster's outermost brownout rung;
//! * every forward carries a deadline (connect + read timeouts) and a
//!   bounded, seeded-jitter retry budget — the same exponential policy
//!   the scheduler uses for transient job faults;
//! * a small LRU at the relay edge replicates hot memo entries, so
//!   duplicate-heavy traffic is answered without a backend hop even
//!   while a shard is failing over.
//!
//! # Exactly-once failover
//!
//! When a node dies mid-job the relay re-submits the dead shard's
//! in-flight specs to the ring's next live owner. Re-submission is safe
//! for the same reason journal replay is: a job is content-addressed by
//! its canonical spec hash, results are deterministic, and the
//! survivor's memo store + single-flight coalescing collapse any
//! duplicate arrival (prober re-route racing a client retry) into one
//! run. The client observes exactly one terminal result per submitted
//! job, bit-identical to what the dead node would have produced.

use std::collections::HashMap;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use ra_bench::{json_object, JsonField};
use ra_cosim::ModeSpec;
use ra_obs::{Event, ObsSink};

use crate::breaker::{BreakerConfig, BreakerState, CircuitBreaker};
use crate::health::{HealthMachine, HealthPolicy, NodeState, Transition};
use crate::json::Json;
use crate::proto::{
    ErrorCode, OutcomeOk, Request, Response, ResultBody, SubmitItem, SubmitOk, WireError,
};
use crate::ring::{HashRing, DEFAULT_VNODES};
use crate::scheduler::{backoff_delay, HOP_ERROR_BOUND};
use crate::spec::{Fidelity, JobKey, JobSpec};
use crate::wire::{ok_fields, serve_stream, WireClient};

/// Tuning knobs for [`RelayServer`].
#[derive(Debug, Clone)]
pub struct RelayConfig {
    /// Backend addresses, one per shard slot; slot order is identity.
    pub backends: Vec<String>,
    /// Virtual nodes per backend on the hash ring.
    pub vnodes: usize,
    /// Probe loop tuning (interval, timeout, thresholds).
    pub health: HealthPolicy,
    /// Per-backend circuit-breaker tuning for the forwarding path.
    pub breaker: BreakerConfig,
    /// Per-forward connect + response deadline.
    pub forward_deadline: Duration,
    /// Forward attempts per request beyond the first.
    pub retry_budget: u32,
    /// Base backoff between forward attempts; doubles per attempt, plus
    /// seeded jitter so synchronized clients do not stampede.
    pub retry_backoff: Duration,
    /// Relay-edge hot-memo LRU capacity in entries (0 disables it).
    pub edge_cache: usize,
    /// Seed for retry jitter (deterministic tests pin it).
    pub seed: u64,
    /// Idle-connection budget for the relay's own listener.
    pub idle_timeout: Duration,
}

impl Default for RelayConfig {
    fn default() -> Self {
        RelayConfig {
            backends: Vec::new(),
            vnodes: DEFAULT_VNODES,
            health: HealthPolicy::default(),
            breaker: BreakerConfig::default(),
            forward_deadline: Duration::from_secs(2),
            retry_budget: 3,
            retry_backoff: Duration::from_millis(10),
            edge_cache: 64,
            seed: 42,
            idle_timeout: crate::wire::DEFAULT_IDLE_TIMEOUT,
        }
    }
}

/// Relay-level counters (the backend counters live on the backends and
/// are aggregated by the `stats` verb).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RelayStats {
    /// Submits received by the relay (batch items count individually).
    pub submitted: u64,
    /// Requests forwarded to a backend (a sub-batch counts once).
    pub forwards: u64,
    /// Forward attempts retried after a transport failure.
    pub retries: u64,
    /// Jobs re-routed from a failed backend to a survivor.
    pub reroutes: u64,
    /// Node-down transitions (each fires one failover pass).
    pub failovers: u64,
    /// Submits and results answered from the relay-edge memo LRU.
    pub edge_hits: u64,
    /// Shedable jobs answered at `fidelity=hop` by the relay edge
    /// because every owner was saturated or breaker-open.
    pub edge_brownouts: u64,
}

/// xorshift64* — the same tiny deterministic generator `ra-loadgen`
/// uses for client backoff jitter.
struct Jitter(u64);

impl Jitter {
    fn new(seed: u64) -> Jitter {
        Jitter(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1)
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn below(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            0
        } else {
            self.next() % bound
        }
    }
}

/// Hot-memo LRU at the relay edge: typed terminal `result` responses
/// keyed by job hash, served without a backend hop. Re-encoding a
/// cached [`Response`] is deterministic per codec, so an edge hit is
/// bit-identical to the backend's own answer on either wire.
struct EdgeEntry {
    when: u64,
    /// A brownout answer produced below full fidelity. Degraded entries
    /// only satisfy submits that opted into degradation, and any
    /// full-fidelity result replaces them in place (never the reverse).
    degraded: bool,
    response: Response,
}

struct EdgeCache {
    capacity: usize,
    tick: u64,
    map: HashMap<u64, EdgeEntry>,
}

impl EdgeCache {
    fn new(capacity: usize) -> EdgeCache {
        EdgeCache {
            capacity,
            tick: 0,
            map: HashMap::new(),
        }
    }

    fn get(&mut self, key: JobKey) -> Option<Response> {
        self.tick += 1;
        let tick = self.tick;
        self.map.get_mut(&key.0).map(|entry| {
            entry.when = tick;
            entry.response.clone()
        })
    }

    /// Whether a submit may be answered from the edge: degraded entries
    /// count only when the submitter accepts degraded answers.
    fn hit(&self, key: JobKey, accept_degraded: bool) -> bool {
        self.map
            .get(&key.0)
            .is_some_and(|entry| !entry.degraded || accept_degraded)
    }

    fn insert(&mut self, key: JobKey, response: Response, degraded: bool) {
        if self.capacity == 0 {
            return;
        }
        // Upgrade-only: a degraded answer never displaces a full one.
        if degraded && self.map.get(&key.0).is_some_and(|e| !e.degraded) {
            return;
        }
        self.tick += 1;
        self.map.insert(
            key.0,
            EdgeEntry {
                when: self.tick,
                degraded,
                response,
            },
        );
        if self.map.len() > self.capacity {
            // Evict the least-recently-used entry. Linear scan: the
            // edge cache is deliberately small (tens of entries).
            if let Some(&oldest) = self
                .map
                .iter()
                .min_by_key(|(_, entry)| entry.when)
                .map(|(k, _)| k)
            {
                self.map.remove(&oldest);
            }
        }
    }
}

/// One in-flight relay ticket: enough to re-drive the job anywhere.
#[derive(Debug, Clone)]
struct TicketEntry {
    key: JobKey,
    /// The canonicalized submit item (spec text re-submittable
    /// verbatim, plus priority/deadline and the degradation contract —
    /// a re-routed job keeps its `allow_degraded`/`min_fidelity`).
    item: SubmitItem,
    /// Backend slot currently owning the job; `None` for a ticket
    /// answered purely from the edge cache.
    backend: Option<usize>,
    /// The owning backend's ticket for this job.
    remote_ticket: u64,
    /// Bumped on every re-route so a forwarder blocked on the old
    /// backend can tell the prober already moved the job.
    generation: u64,
}

struct Node {
    addr: SocketAddr,
    health: Mutex<HealthMachine>,
    /// Request-stream circuit breaker, layered on the probe-driven
    /// health machine: a node can be probe-alive yet tripping here.
    breaker: Mutex<CircuitBreaker>,
}

/// Shared relay state: ring, node table, ticket map, edge cache,
/// counters. Connection threads and the probe loop all hold an `Arc`.
pub struct Relay {
    config: RelayConfig,
    ring: HashRing,
    nodes: Vec<Node>,
    tickets: Mutex<HashMap<u64, TicketEntry>>,
    next_ticket: AtomicU64,
    edge: Mutex<EdgeCache>,
    stats: Mutex<RelayStats>,
    obs: ObsSink,
    stop: AtomicBool,
    /// Monotonic origin for breaker timestamps (`now_ns`).
    started: Instant,
}

impl Relay {
    /// Resolves the backend addresses and builds the shared state (no
    /// I/O beyond DNS resolution; probing starts with
    /// [`RelayServer::spawn`]).
    ///
    /// # Errors
    ///
    /// When `backends` is empty or an address does not resolve.
    pub fn new(config: RelayConfig, obs: ObsSink) -> io::Result<Relay> {
        if config.backends.is_empty() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "a relay needs at least one --backend",
            ));
        }
        let mut nodes = Vec::with_capacity(config.backends.len());
        for text in &config.backends {
            let addr = text.to_socket_addrs()?.next().ok_or_else(|| {
                io::Error::new(
                    io::ErrorKind::InvalidInput,
                    format!("backend `{text}` does not resolve"),
                )
            })?;
            nodes.push(Node {
                addr,
                health: Mutex::new(HealthMachine::new(&config.health)),
                breaker: Mutex::new(CircuitBreaker::new(config.breaker.clone())),
            });
        }
        let ring = HashRing::new(nodes.len(), config.vnodes.max(1));
        let edge = EdgeCache::new(config.edge_cache);
        Ok(Relay {
            config,
            ring,
            nodes,
            tickets: Mutex::new(HashMap::new()),
            next_ticket: AtomicU64::new(1),
            edge: Mutex::new(edge),
            stats: Mutex::new(RelayStats::default()),
            obs,
            stop: AtomicBool::new(false),
            started: Instant::now(),
        })
    }

    /// Relay-level counter snapshot.
    pub fn stats(&self) -> RelayStats {
        *self.stats.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Health state of one backend slot.
    pub fn node_state(&self, node: usize) -> NodeState {
        self.nodes[node]
            .health
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .state()
    }

    /// Circuit-breaker state of one backend slot.
    pub fn breaker_state(&self, node: usize) -> BreakerState {
        self.nodes[node]
            .breaker
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .state()
    }

    /// Total breaker trips across every backend slot.
    pub fn breaker_trips(&self) -> u64 {
        self.nodes
            .iter()
            .map(|n| n.breaker.lock().unwrap_or_else(|e| e.into_inner()).trips())
            .sum()
    }

    /// Nanoseconds since relay construction (breaker clock).
    fn now_ns(&self) -> u64 {
        self.started.elapsed().as_nanos() as u64
    }

    fn emit_breaker_transition(&self, node: usize, from: BreakerState, to: BreakerState) {
        self.obs.emit(|| Event::BreakerTransition {
            node: node as u64,
            from: from.name().into(),
            to: to.name().into(),
        });
        // Breaker flips gate routing; a live tail must see them promptly.
        let _ = self.obs.flush();
    }

    /// Asks `node`'s breaker whether a forward may go out now; an open
    /// breaker whose cooldown elapsed flips to half-open here.
    fn breaker_admits(&self, node: usize) -> bool {
        let now = self.now_ns();
        let (allowed, from, to) = {
            let mut breaker = self.nodes[node]
                .breaker
                .lock()
                .unwrap_or_else(|e| e.into_inner());
            let from = breaker.state();
            let allowed = breaker.allow(now);
            (allowed, from, breaker.state())
        };
        if from != to {
            self.emit_breaker_transition(node, from, to);
        }
        allowed
    }

    /// Feeds one forward outcome into `node`'s breaker.
    fn breaker_report(&self, node: usize, outcome: Result<Duration, ()>) {
        let now = self.now_ns();
        let (from, to) = {
            let mut breaker = self.nodes[node]
                .breaker
                .lock()
                .unwrap_or_else(|e| e.into_inner());
            let from = breaker.state();
            match outcome {
                Ok(rtt) => breaker.on_success(now, rtt),
                Err(()) => breaker.on_failure(now),
            }
            (from, breaker.state())
        };
        if from != to {
            self.emit_breaker_transition(node, from, to);
        }
    }

    /// Whether the routing mask may steer traffic at `node`'s breaker
    /// (non-consuming; the forward itself still asks `allow`).
    fn breaker_would_route(&self, node: usize) -> bool {
        self.nodes[node]
            .breaker
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .would_allow(self.now_ns())
    }

    fn bump<F: FnOnce(&mut RelayStats)>(&self, f: F) {
        f(&mut self.stats.lock().unwrap_or_else(|e| e.into_inner()));
    }

    /// Per-node liveness mask for the ring.
    fn alive_mask(&self) -> Vec<bool> {
        self.nodes
            .iter()
            .map(|n| {
                n.health
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .state()
                    .routes()
            })
            .collect()
    }

    /// Liveness mask further restricted to breakers willing to route:
    /// the submit path steers around probe-alive nodes whose request
    /// stream is tripping.
    fn routable_mask(&self) -> Vec<bool> {
        self.alive_mask()
            .into_iter()
            .enumerate()
            .map(|(node, alive)| alive && self.breaker_would_route(node))
            .collect()
    }

    /// Mints a relay ticket and records its entry.
    fn register_ticket(
        &self,
        key: JobKey,
        item: SubmitItem,
        backend: Option<usize>,
        remote_ticket: u64,
    ) -> u64 {
        let ticket = self.next_ticket.fetch_add(1, Ordering::Relaxed);
        self.tickets
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .insert(
                ticket,
                TicketEntry {
                    key,
                    item,
                    backend,
                    remote_ticket,
                    generation: 0,
                },
            );
        ticket
    }

    /// Feeds one probe (or forward) outcome into a node's machine and
    /// reacts to transitions: obs events, and failover on `WentDown`.
    fn record_probe(&self, node: usize, outcome: Result<Duration, ()>) {
        let transition = {
            let mut machine = self.nodes[node]
                .health
                .lock()
                .unwrap_or_else(|e| e.into_inner());
            match outcome {
                Ok(rtt) => machine.on_success(rtt),
                Err(()) => machine.on_failure(),
            }
        };
        match transition {
            Some(Transition::CameUp) => {
                let rtt_ns = self.nodes[node]
                    .health
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .last_rtt_ns();
                self.obs.emit(|| Event::NodeUp {
                    node: node as u64,
                    rtt_ns,
                });
                // Membership changes must be visible to a live tail
                // (CI greps the trace mid-run), not sit buffered.
                let _ = self.obs.flush();
            }
            Some(Transition::WentDown) => {
                let failures = u64::from(
                    self.nodes[node]
                        .health
                        .lock()
                        .unwrap_or_else(|e| e.into_inner())
                        .failures(),
                );
                self.obs.emit(|| Event::NodeDown {
                    node: node as u64,
                    failures,
                });
                self.bump(|s| s.failovers += 1);
                self.fail_over(node);
            }
            None => {}
        }
    }

    /// Re-routes every in-flight job owned by `dead` to the ring's next
    /// live owner. Grouped into one batched re-submit per survivor;
    /// exactly-once because the survivor's memo store and coalescing
    /// dedup any racing client-path retry by `JobKey`.
    fn fail_over(&self, dead: usize) {
        let alive = self.alive_mask();
        let moved: Vec<(u64, TicketEntry)> = {
            let tickets = self.tickets.lock().unwrap_or_else(|e| e.into_inner());
            tickets
                .iter()
                .filter(|(_, e)| e.backend == Some(dead))
                .map(|(&t, e)| (t, e.clone()))
                .collect()
        };
        // Partition the orphans by their new ring owner so each
        // survivor gets one batched re-submit instead of N round-trips.
        let mut by_target: HashMap<usize, Vec<&(u64, TicketEntry)>> = HashMap::new();
        for pair in &moved {
            if let Some(target) = self.ring.route_live(pair.1.key, &alive) {
                by_target.entry(target).or_default().push(pair);
            }
            // Nothing alive: the client path will surface it.
        }
        let mut handed_off = 0u64;
        let mut targets: Vec<usize> = by_target.keys().copied().collect();
        targets.sort_unstable();
        for target in targets {
            let group = &by_target[&target];
            let items: Vec<SubmitItem> = group
                .iter()
                .map(|(_, entry)| entry.item.clone())
                .collect();
            let Ok(responses) = self.resubmit_batch(target, items) else {
                // Survivor unreachable too; its own probes will demote
                // it. The client path keeps retrying meanwhile.
                continue;
            };
            for ((ticket, entry), response) in group.iter().zip(responses) {
                let Response::Submit(ok) = response else {
                    continue; // refused (queue full); the client retries
                };
                let mut tickets = self.tickets.lock().unwrap_or_else(|e| e.into_inner());
                if let Some(live) = tickets.get_mut(ticket) {
                    // Only move it if a client thread has not already
                    // re-driven it elsewhere.
                    if live.backend == Some(dead) {
                        live.backend = Some(target);
                        live.remote_ticket = ok.ticket;
                        live.generation += 1;
                        handed_off += 1;
                        let job = entry.key.0;
                        self.obs.emit(|| Event::Reroute {
                            job,
                            from: dead as u64,
                            to: target as u64,
                        });
                    }
                }
            }
        }
        self.bump(|s| s.reroutes += handed_off);
        self.obs.emit(|| Event::Failover {
            node: dead as u64,
            inflight: handed_off,
        });
        let _ = self.obs.flush();
    }

    /// Submits an entry's spec to `target` over a fresh short-lived
    /// connection, returning the backend's ticket.
    fn resubmit(&self, target: usize, entry: &TicketEntry) -> io::Result<u64> {
        let items = vec![entry.item.clone()];
        match self.resubmit_batch(target, items)?.pop() {
            Some(Response::Submit(ok)) => Ok(ok.ticket),
            _ => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "resubmit response carried no ticket",
            )),
        }
    }

    /// One batched re-submit to `target` over a fresh short-lived
    /// binary connection; one response per item, in order.
    fn resubmit_batch(
        &self,
        target: usize,
        items: Vec<SubmitItem>,
    ) -> io::Result<Vec<Response>> {
        let mut client = WireClient::connect_timeout(
            &self.nodes[target].addr,
            self.config.forward_deadline,
        )?
        .with_binary(true);
        client.set_read_timeout(Some(self.config.forward_deadline))?;
        let responses = client.submit_batch(items)?;
        self.bump(|s| s.forwards += 1);
        Ok(responses)
    }

    /// One probe round over every backend.
    fn probe_all(&self) {
        for node in 0..self.nodes.len() {
            let started = Instant::now();
            let outcome = WireClient::connect_timeout(
                &self.nodes[node].addr,
                self.config.health.probe_timeout,
            )
            .and_then(|mut client| {
                client.set_read_timeout(Some(self.config.health.probe_timeout))?;
                client.health()
            });
            match outcome {
                Ok(response) if response.get("ok").and_then(Json::as_bool) == Some(true) => {
                    self.record_probe(node, Ok(started.elapsed()));
                }
                _ => self.record_probe(node, Err(())),
            }
        }
    }

    fn probe_loop(&self) {
        // First round immediately: traffic may arrive before the first
        // interval elapses and the mask should reflect reality.
        while !self.stop.load(Ordering::Relaxed) {
            self.probe_all();
            let mut waited = Duration::ZERO;
            let step = Duration::from_millis(25);
            while waited < self.config.health.probe_interval {
                if self.stop.load(Ordering::Relaxed) {
                    return;
                }
                std::thread::sleep(step);
                waited += step;
            }
        }
    }
}

/// A per-connection pool of backend clients: lazily connected, dropped
/// on any transport error so the next use reconnects fresh. One pool
/// per relay connection thread — forwards never contend on a shared
/// backend socket. Pooled clients speak the binary codec: the
/// relay→backend hop is the hot path and the framed TLV is both
/// smaller and checksummed.
pub struct BackendPool {
    clients: Vec<Option<WireClient>>,
}

impl BackendPool {
    /// An empty pool sized for `relay`'s node table.
    pub fn new(relay: &Relay) -> BackendPool {
        BackendPool {
            clients: (0..relay.nodes.len()).map(|_| None).collect(),
        }
    }

    /// A connected client for `node`, reusing the pooled connection.
    fn client(&mut self, relay: &Relay, node: usize) -> io::Result<&mut WireClient> {
        if self.clients[node].is_none() {
            let client = WireClient::connect_timeout(
                &relay.nodes[node].addr,
                relay.config.forward_deadline,
            )?
            .with_binary(true);
            client.set_read_timeout(Some(relay.config.forward_deadline))?;
            self.clients[node] = Some(client);
        }
        Ok(self.clients[node].as_mut().expect("just inserted"))
    }

    fn invalidate(&mut self, node: usize) {
        self.clients[node] = None;
    }
}

/// The local refusal a forward returns when `node`'s breaker is open.
/// No socket was touched, so callers must not feed it to the health
/// machine (see [`is_breaker_open`]).
fn breaker_open_error() -> io::Error {
    io::Error::new(io::ErrorKind::WouldBlock, "circuit breaker open")
}

/// Whether a forward error is the breaker's local refusal rather than
/// a transport failure.
fn is_breaker_open(err: &io::Error) -> bool {
    err.kind() == io::ErrorKind::WouldBlock
}

/// Forwards one typed request to `node`, with the read deadline
/// stretched to `read_deadline` (long-poll `result` calls must outlive
/// the job they wait for). Invalidates the pooled connection on error.
///
/// Every forward first asks the node's circuit breaker and reports its
/// outcome back with the measured round-trip, so the breaker sees the
/// real request stream (slow successes included) — an open breaker
/// refuses locally with [`breaker_open_error`].
fn forward(
    relay: &Relay,
    pool: &mut BackendPool,
    node: usize,
    request: &Request,
    read_deadline: Duration,
) -> io::Result<Response> {
    if !relay.breaker_admits(node) {
        return Err(breaker_open_error());
    }
    let started = Instant::now();
    let outcome = (|| {
        let client = pool.client(relay, node)?;
        client.set_read_timeout(Some(read_deadline))?;
        let response = client.call_request(request);
        // Restore the default forward deadline for the next reuse.
        let _ = client.set_read_timeout(Some(relay.config.forward_deadline));
        response
    })();
    match outcome {
        Ok(response) => {
            // A stretched-deadline long poll measures the *job*, not the
            // backend; only short forwards judge their RTT against the
            // breaker's budget.
            let rtt = if read_deadline > relay.config.forward_deadline {
                Duration::ZERO
            } else {
                started.elapsed()
            };
            relay.breaker_report(node, Ok(rtt));
            relay.bump(|s| s.forwards += 1);
            Ok(response)
        }
        Err(err) => {
            relay.breaker_report(node, Err(()));
            // A desynchronized connection (timed-out long poll) cannot
            // be reused: a stale response would answer the wrong call.
            pool.invalidate(node);
            Err(err)
        }
    }
}

/// How long a `result` forward may block: the client's requested wait
/// plus one forward deadline of slack for transport. An unbounded
/// client wait is capped — the relay never parks a thread forever on
/// one backend read.
fn result_read_deadline(relay: &Relay, timeout_ms: Option<u64>) -> (u64, Duration) {
    let wait_ms = timeout_ms.unwrap_or(600_000);
    let deadline = Duration::from_millis(wait_ms) + relay.config.forward_deadline;
    (wait_ms, deadline)
}

fn no_backend(verb: &str) -> Response {
    Response::Error(
        WireError::new(ErrorCode::NoBackend, verb)
            .with_detail("no live backend for this key"),
    )
}

fn unknown_ticket(verb: &str) -> Response {
    Response::Error(WireError::new(ErrorCode::UnknownTicket, verb))
}

/// Whether a backend response means "this backend no longer knows the
/// job" (restart lost the ticket) rather than a client error.
fn is_lost_ticket(response: &Response) -> bool {
    matches!(response, Response::Error(err) if err.code == ErrorCode::UnknownTicket)
}

/// The three ticket-addressed verbs a relay forwards.
enum TicketAction {
    Status,
    Result { timeout_ms: Option<u64> },
    Cancel,
}

/// Dispatches one typed relay request — the relay's counterpart of
/// [`crate::wire::dispatch`]. Pure with respect to listener I/O (the
/// pool does backend I/O), so tests drive it without sockets on the
/// front side.
pub fn handle_relay_request(
    relay: &Relay,
    pool: &mut BackendPool,
    request: &Request,
) -> Response {
    match request {
        Request::Submit(item) => relay_submit(relay, pool, item, "submit"),
        Request::SubmitBatch(items) => relay_submit_batch(relay, pool, items),
        Request::Status { ticket } => {
            relay_forward_ticket(relay, pool, *ticket, &TicketAction::Status, "status")
        }
        Request::StatusBatch { tickets } => {
            relay_ticket_batch(relay, pool, tickets, &TicketAction::Status, "status_batch")
        }
        Request::Result { ticket, timeout_ms } => relay_forward_ticket(
            relay,
            pool,
            *ticket,
            &TicketAction::Result {
                timeout_ms: *timeout_ms,
            },
            "result",
        ),
        Request::ResultBatch {
            tickets,
            timeout_ms,
        } => relay_ticket_batch(
            relay,
            pool,
            tickets,
            &TicketAction::Result {
                timeout_ms: *timeout_ms,
            },
            "result_batch",
        ),
        Request::Cancel { ticket } => {
            relay_forward_ticket(relay, pool, *ticket, &TicketAction::Cancel, "cancel")
        }
        Request::Stats => {
            // Mirror the backend: a stats poll is a sync point for the
            // relay's own trace stream.
            let _ = relay.obs.flush();
            relay_stats(relay, pool)
        }
        Request::NodeStats => relay_node_stats(relay, pool),
        Request::Health => {
            let alive = relay.alive_mask();
            let up = alive.iter().filter(|a| **a).count() as u64;
            Response::Report {
                json: ok_fields(vec![
                    ("role", JsonField::Str("relay".into())),
                    ("state", JsonField::Str("up".into())),
                    ("nodes", JsonField::Int(alive.len() as u64)),
                    ("nodes_routable", JsonField::Int(up)),
                ]),
            }
        }
    }
}

/// The edge's half of a submit: canonicalize, count, and answer from
/// the edge LRU when possible — shared by `submit` and the first pass
/// of `submit_batch`.
enum Prepared {
    /// Decided without a backend hop (bad spec or edge hit).
    Answered(Response),
    /// Needs a ring hop: the canonical spec and its routing key.
    Route { key: JobKey, canonical: String },
}

fn prepare_submit(relay: &Relay, item: &SubmitItem, verb: &str) -> Prepared {
    // Canonicalize at the edge: routing must hash the canonical form,
    // and malformed specs should never cost a backend hop.
    let spec: JobSpec = match item.spec.parse() {
        Ok(spec) => spec,
        Err(err) => {
            return Prepared::Answered(Response::Error(
                WireError::new(ErrorCode::BadSpec, verb).with_detail(err.to_string()),
            ))
        }
    };
    let key = spec.job_hash();
    let canonical = spec.canonical();
    relay.bump(|s| s.submitted += 1);

    // Edge hit: answer without a backend hop, even mid-failover. A
    // degraded (brownout) entry only answers submitters that accept
    // degraded results themselves.
    let edge_hit = {
        let edge = relay.edge.lock().unwrap_or_else(|e| e.into_inner());
        edge.hit(key, item_accepts_hop(item))
    };
    if edge_hit {
        relay.bump(|s| s.edge_hits += 1);
        let canonical_item = SubmitItem {
            spec: canonical,
            ..item.clone()
        };
        let ticket = relay.register_ticket(key, canonical_item, None, 0);
        return Prepared::Answered(Response::Submit(SubmitOk {
            ticket,
            job: key.to_string(),
            disposition: "cached".into(),
            depth: 0,
            node: None,
            edge: true,
        }));
    }
    Prepared::Route { key, canonical }
}

/// Whether a submit item's degradation contract admits a hop-fidelity
/// answer: it opted in, and its floor (if any) is the hop rung.
fn item_accepts_hop(item: &SubmitItem) -> bool {
    item.allow_degraded
        && !matches!(item.min_fidelity.as_deref(), Some(floor) if floor != Fidelity::Hop.name())
}

fn relay_submit(
    relay: &Relay,
    pool: &mut BackendPool,
    item: &SubmitItem,
    verb: &str,
) -> Response {
    match prepare_submit(relay, item, verb) {
        Prepared::Answered(response) => response,
        Prepared::Route { key, canonical } => {
            submit_via_ring(relay, pool, key, &canonical, item, verb)
        }
    }
}

/// Forwards one submit to the ring owner, with bounded jittered retries
/// walking past nodes that fail mid-forward or whose breaker refuses.
/// When every owner is down, saturated, or breaker-open, a shedable
/// item is answered at the edge via [`edge_brownout`] instead of
/// failing with `no_backend`.
fn submit_via_ring(
    relay: &Relay,
    pool: &mut BackendPool,
    key: JobKey,
    canonical: &str,
    item: &SubmitItem,
    verb: &str,
) -> Response {
    let canonical_item = SubmitItem {
        spec: canonical.to_owned(),
        ..item.clone()
    };
    let forward_request = Request::Submit(canonical_item.clone());
    let mut jitter = Jitter::new(relay.config.seed ^ key.0);
    let attempts = relay.config.retry_budget.max(1);
    for attempt in 1..=attempts {
        let routable = relay.routable_mask();
        let Some(node) = relay.ring.route_live(key, &routable) else {
            return edge_brownout(relay, key, &canonical_item)
                .unwrap_or_else(|| no_backend(verb));
        };
        match forward(
            relay,
            pool,
            node,
            &forward_request,
            relay.config.forward_deadline,
        ) {
            Ok(Response::Submit(ok)) => {
                let ticket =
                    relay.register_ticket(key, canonical_item, Some(node), ok.ticket);
                return Response::Submit(SubmitOk {
                    ticket,
                    job: key.to_string(),
                    disposition: ok.disposition,
                    depth: ok.depth,
                    node: Some(node as u64),
                    edge: false,
                });
            }
            // A saturated owner refused: answer shedable work degraded
            // at the edge rather than bouncing it back to the client.
            Ok(Response::Error(err)) if err.code == ErrorCode::QueueFull => {
                return edge_brownout(relay, key, &canonical_item)
                    .unwrap_or(Response::Error(err));
            }
            // Other refusals (bad spec, shutting down): the client owns
            // that policy.
            Ok(other) => return other,
            Err(err) => {
                if !is_breaker_open(&err) {
                    relay.record_probe(node, Err(()));
                }
                backoff_sleep(relay, &mut jitter, attempt, attempts);
            }
        }
    }
    edge_brownout(relay, key, &canonical_item).unwrap_or_else(|| no_backend(verb))
}

/// The relay edge's own brownout rung: when no owner can take a
/// shedable job, run the analytic hop model inline and answer at
/// `fidelity=hop` — a degraded result now instead of a `no_backend` or
/// `queue_full` error. Returns `None` when the item did not opt in,
/// its floor forbids the hop rung, or the spec has no cheaper rung to
/// degrade to (only reciprocal modes do).
fn edge_brownout(relay: &Relay, key: JobKey, item: &SubmitItem) -> Option<Response> {
    if !item_accepts_hop(item) {
        return None;
    }
    let spec: JobSpec = item.spec.parse().ok()?;
    if !Fidelity::degradable(&spec.mode) {
        return None;
    }
    let mut hop_spec = spec;
    hop_spec.mode = ModeSpec::Hop;
    let run_started = Instant::now();
    let result = hop_spec.to_run_spec().run().ok()?;
    let run_ns = run_started.elapsed().as_nanos() as u64;
    let response = Response::Outcome(OutcomeOk {
        outcome: "completed".into(),
        detail: None,
        queue_ns: Some(0),
        run_ns: Some(run_ns),
        body: Some(ResultBody {
            workload: result.workload.clone(),
            mode: result.mode.clone(),
            cycles: result.cycles,
            messages: result.messages,
            ipc: result.ipc,
            latency_mean: result.latency.mean(),
            latency_count: result.latency.count(),
            calibrations: result.calibrations,
            fidelity: Some(Fidelity::Hop.name().to_owned()),
            error_bound: Some(HOP_ERROR_BOUND),
        }),
    });
    {
        let mut edge = relay.edge.lock().unwrap_or_else(|e| e.into_inner());
        edge.insert(key, response, true);
    }
    let ticket = relay.register_ticket(key, item.clone(), None, 0);
    relay.bump(|s| s.edge_brownouts += 1);
    relay.obs.emit(|| Event::EdgeBrownout { job: key.0 });
    let _ = relay.obs.flush();
    Some(Response::Submit(SubmitOk {
        ticket,
        job: key.to_string(),
        disposition: "degraded".into(),
        depth: 0,
        node: None,
        edge: true,
    }))
}

/// `submit_batch` at the relay: answer bad specs and edge hits locally,
/// partition the rest by ring owner, and forward one sub-batch per
/// owner. A sub-batch that dies in transit falls back to the retrying
/// single-submit path per item, so one slow owner cannot fail the
/// whole batch.
fn relay_submit_batch(
    relay: &Relay,
    pool: &mut BackendPool,
    items: &[SubmitItem],
) -> Response {
    relay.obs.emit(|| Event::WireBatch {
        verb: "submit_batch".into(),
        items: items.len() as u64,
    });
    let mut responses: Vec<Option<Response>> = vec![None; items.len()];
    let mut routes: Vec<Option<(JobKey, String)>> = vec![None; items.len()];
    let mut by_owner: HashMap<usize, Vec<usize>> = HashMap::new();
    let routable = relay.routable_mask();
    for (index, item) in items.iter().enumerate() {
        match prepare_submit(relay, item, "submit_batch") {
            Prepared::Answered(response) => responses[index] = Some(response),
            Prepared::Route { key, canonical } => {
                match relay.ring.route_live(key, &routable) {
                    Some(owner) => {
                        by_owner.entry(owner).or_default().push(index);
                        routes[index] = Some((key, canonical));
                    }
                    None => {
                        let canonical_item = SubmitItem {
                            spec: canonical,
                            ..item.clone()
                        };
                        responses[index] = Some(
                            edge_brownout(relay, key, &canonical_item)
                                .unwrap_or_else(|| no_backend("submit_batch")),
                        );
                    }
                }
            }
        }
    }
    let mut owners: Vec<usize> = by_owner.keys().copied().collect();
    owners.sort_unstable();
    for owner in owners {
        let indices = &by_owner[&owner];
        let sub_batch = Request::SubmitBatch(
            indices
                .iter()
                .map(|&index| {
                    let (_, canonical) = routes[index].as_ref().expect("routed item");
                    SubmitItem {
                        spec: canonical.clone(),
                        ..items[index].clone()
                    }
                })
                .collect(),
        );
        let sub_responses = match forward(
            relay,
            pool,
            owner,
            &sub_batch,
            relay.config.forward_deadline,
        ) {
            Ok(Response::Batch(sub)) if sub.len() == indices.len() => Some(sub),
            Ok(_) => None,
            Err(err) => {
                if !is_breaker_open(&err) {
                    relay.record_probe(owner, Err(()));
                }
                None
            }
        };
        match sub_responses {
            Some(sub) => {
                for (&index, sub_response) in indices.iter().zip(sub) {
                    let (key, canonical) = routes[index].clone().expect("routed item");
                    responses[index] = Some(match sub_response {
                        Response::Submit(ok) => {
                            let canonical_item = SubmitItem {
                                spec: canonical,
                                ..items[index].clone()
                            };
                            let ticket = relay.register_ticket(
                                key,
                                canonical_item,
                                Some(owner),
                                ok.ticket,
                            );
                            Response::Submit(SubmitOk {
                                ticket,
                                job: key.to_string(),
                                disposition: ok.disposition,
                                depth: ok.depth,
                                node: Some(owner as u64),
                                edge: false,
                            })
                        }
                        other => other,
                    });
                }
            }
            None => {
                // The whole sub-batch failed in transit: re-drive each
                // item through the retrying single-submit path, which
                // walks the ring past the failed owner.
                for &index in indices {
                    let (key, canonical) = routes[index].clone().expect("routed item");
                    responses[index] = Some(submit_via_ring(
                        relay,
                        pool,
                        key,
                        &canonical,
                        &items[index],
                        "submit_batch",
                    ));
                }
            }
        }
    }
    Response::Batch(
        responses
            .into_iter()
            .map(|response| response.expect("every batch item answered"))
            .collect(),
    )
}

/// `status_batch` / `result_batch` at the relay: group the tickets by
/// their live owning backend and forward one sub-batch per backend.
/// Edge tickets, unknown tickets, dead owners, lost tickets, and
/// failed sub-batches all take the single-ticket path, which answers
/// locally or re-drives on the ring.
fn relay_ticket_batch(
    relay: &Relay,
    pool: &mut BackendPool,
    tickets: &[u64],
    action: &TicketAction,
    verb: &str,
) -> Response {
    relay.obs.emit(|| Event::WireBatch {
        verb: verb.to_owned(),
        items: tickets.len() as u64,
    });
    let mut responses: Vec<Option<Response>> = vec![None; tickets.len()];
    // node -> (item index, relay ticket, backend ticket)
    let mut by_backend: HashMap<usize, Vec<(usize, u64, u64)>> = HashMap::new();
    for (index, &ticket) in tickets.iter().enumerate() {
        let entry = {
            let map = relay.tickets.lock().unwrap_or_else(|e| e.into_inner());
            map.get(&ticket).cloned()
        };
        match entry {
            None => responses[index] = Some(unknown_ticket(verb)),
            Some(entry) => match entry.backend {
                Some(node) if relay.node_state(node).routes() => {
                    by_backend
                        .entry(node)
                        .or_default()
                        .push((index, ticket, entry.remote_ticket));
                }
                _ => {
                    responses[index] =
                        Some(relay_forward_ticket(relay, pool, ticket, action, verb));
                }
            },
        }
    }
    let mut backends: Vec<usize> = by_backend.keys().copied().collect();
    backends.sort_unstable();
    for node in backends {
        let group = &by_backend[&node];
        let remote: Vec<u64> = group.iter().map(|&(_, _, remote)| remote).collect();
        let (sub_batch, deadline) = match action {
            TicketAction::Status => (
                Request::StatusBatch { tickets: remote },
                relay.config.forward_deadline,
            ),
            TicketAction::Result { timeout_ms } => {
                // One whole-batch deadline, exactly the backend's own
                // result_batch semantics.
                let (wait_ms, deadline) = result_read_deadline(relay, *timeout_ms);
                (
                    Request::ResultBatch {
                        tickets: remote,
                        timeout_ms: Some(wait_ms),
                    },
                    deadline,
                )
            }
            TicketAction::Cancel => {
                // No cancel_batch verb exists; answer item by item.
                for &(index, ticket, _) in group {
                    responses[index] =
                        Some(relay_forward_ticket(relay, pool, ticket, action, verb));
                }
                continue;
            }
        };
        let outcome = forward(relay, pool, node, &sub_batch, deadline);
        match outcome {
            Ok(Response::Batch(sub)) if sub.len() == group.len() => {
                for (&(index, ticket, _), item_response) in group.iter().zip(sub) {
                    if is_lost_ticket(&item_response) {
                        // The backend restarted; re-drive this one.
                        responses[index] =
                            Some(relay_forward_ticket(relay, pool, ticket, action, verb));
                        continue;
                    }
                    if matches!(action, TicketAction::Result { .. }) {
                        let entry = {
                            let map =
                                relay.tickets.lock().unwrap_or_else(|e| e.into_inner());
                            map.get(&ticket).cloned()
                        };
                        if let Some(entry) = entry {
                            cache_terminal_result(relay, &entry, ticket, &item_response);
                        }
                    }
                    responses[index] = Some(item_response);
                }
            }
            other => {
                if let Err(err) = &other {
                    if !is_breaker_open(err) {
                        relay.record_probe(node, Err(()));
                    }
                }
                for &(index, ticket, _) in group {
                    responses[index] =
                        Some(relay_forward_ticket(relay, pool, ticket, action, verb));
                }
            }
        }
    }
    Response::Batch(
        responses
            .into_iter()
            .map(|response| response.expect("every batch item answered"))
            .collect(),
    )
}

/// status / result / cancel for one ticket: look the relay ticket up,
/// forward to the owning backend, and on transport failure or a
/// backend restart re-drive the job on the ring's live owner (the
/// failover path).
fn relay_forward_ticket(
    relay: &Relay,
    pool: &mut BackendPool,
    ticket: u64,
    action: &TicketAction,
    verb: &str,
) -> Response {
    let entry = {
        let tickets = relay.tickets.lock().unwrap_or_else(|e| e.into_inner());
        tickets.get(&ticket).cloned()
    };
    let Some(mut entry) = entry else {
        return unknown_ticket(verb);
    };

    // Edge tickets: the result is (or was) in the edge LRU.
    if entry.backend.is_none() {
        match action {
            TicketAction::Status => {
                return Response::Status {
                    state: "done".into(),
                }
            }
            TicketAction::Cancel => {
                return Response::Cancel {
                    cancel: "already_done".into(),
                }
            }
            TicketAction::Result { .. } => {
                let cached = {
                    let mut edge = relay.edge.lock().unwrap_or_else(|e| e.into_inner());
                    edge.get(entry.key)
                };
                if let Some(response) = cached {
                    relay.bump(|s| s.edge_hits += 1);
                    relay
                        .tickets
                        .lock()
                        .unwrap_or_else(|e| e.into_inner())
                        .remove(&ticket);
                    return response;
                }
                // Evicted between submit and result: fall through to a
                // re-drive on the owning ring node.
            }
        }
    }

    let timeout_ms = match action {
        TicketAction::Result { timeout_ms } => *timeout_ms,
        _ => None,
    };
    let (wait_ms, read_deadline) = result_read_deadline(relay, timeout_ms);
    let attempts = relay.config.retry_budget.max(1) + 1;
    let mut jitter = Jitter::new(relay.config.seed ^ entry.key.0 ^ ticket);
    for attempt in 1..=attempts {
        // Ensure the job is owned by a live backend, re-submitting it
        // if its owner died or restarted (exactly-once: the survivor
        // memo dedups by JobKey whether this thread or the prober wins).
        let node = match entry.backend {
            Some(node) if relay.node_state(node).routes() => node,
            _ => {
                let alive = relay.alive_mask();
                let Some(target) = relay.ring.route_live(entry.key, &alive) else {
                    return no_backend(verb);
                };
                match relay.resubmit(target, &entry) {
                    Ok(remote_ticket) => {
                        relay.bump(|s| s.reroutes += 1);
                        let from = entry.backend.map_or(u64::MAX, |n| n as u64);
                        let job = entry.key.0;
                        relay.obs.emit(|| Event::Reroute {
                            job,
                            from,
                            to: target as u64,
                        });
                        entry.backend = Some(target);
                        entry.remote_ticket = remote_ticket;
                        entry.generation += 1;
                        let mut tickets =
                            relay.tickets.lock().unwrap_or_else(|e| e.into_inner());
                        if let Some(live) = tickets.get_mut(&ticket) {
                            *live = entry.clone();
                        }
                        target
                    }
                    Err(_) => {
                        relay.record_probe(target, Err(()));
                        backoff_sleep(relay, &mut jitter, attempt, attempts);
                        continue;
                    }
                }
            }
        };
        let forward_request = match action {
            TicketAction::Result { .. } => Request::Result {
                ticket: entry.remote_ticket,
                timeout_ms: Some(wait_ms),
            },
            TicketAction::Status => Request::Status {
                ticket: entry.remote_ticket,
            },
            TicketAction::Cancel => Request::Cancel {
                ticket: entry.remote_ticket,
            },
        };
        let deadline = if matches!(action, TicketAction::Result { .. }) {
            read_deadline
        } else {
            relay.config.forward_deadline
        };
        match forward(relay, pool, node, &forward_request, deadline) {
            Ok(response) => {
                if is_lost_ticket(&response) {
                    // The backend restarted and lost its tickets; the
                    // journal replay may still be re-running the job.
                    // Re-submit (memo/coalescing dedups) and retry.
                    entry.backend = None;
                    backoff_sleep(relay, &mut jitter, attempt, attempts);
                    continue;
                }
                if matches!(action, TicketAction::Result { .. }) {
                    cache_terminal_result(relay, &entry, ticket, &response);
                }
                return response;
            }
            Err(err) => {
                if !is_breaker_open(&err) {
                    relay.record_probe(node, Err(()));
                }
                // The prober may have moved the job already; pick up
                // its new home before re-driving it ourselves.
                let latest = {
                    let tickets = relay.tickets.lock().unwrap_or_else(|e| e.into_inner());
                    tickets.get(&ticket).cloned()
                };
                match latest {
                    Some(live) if live.generation > entry.generation => entry = live,
                    Some(live) => {
                        entry = live;
                        entry.backend = None; // force a re-route
                    }
                    None => return unknown_ticket(verb),
                }
                backoff_sleep(relay, &mut jitter, attempt, attempts);
            }
        }
    }
    Response::Error(
        WireError::new(ErrorCode::Unavailable, verb)
            .with_detail("backends unreachable within the retry budget"),
    )
}

fn backoff_sleep(relay: &Relay, jitter: &mut Jitter, attempt: u32, attempts: u32) {
    if attempt < attempts {
        relay.bump(|s| s.retries += 1);
        let base = backoff_delay(relay.config.retry_backoff, attempt);
        let extra = jitter.below(base.as_millis().max(1) as u64);
        std::thread::sleep(base + Duration::from_millis(extra));
    }
}

/// A terminal `result` response replicates into the edge LRU (and the
/// consumed relay ticket is dropped). Only memoizable outcomes are
/// cached: completed/cached results are deterministic; failures are
/// not replicated so a transient fault cannot get pinned at the edge.
fn cache_terminal_result(
    relay: &Relay,
    entry: &TicketEntry,
    ticket: u64,
    response: &Response,
) {
    let Response::Outcome(ok) = response else {
        return;
    };
    if matches!(ok.outcome.as_str(), "completed" | "cached") {
        // A brownout answer replicates as degraded: it serves only
        // degradation-tolerant submits, and a later full-fidelity
        // result replaces it in place.
        let degraded = ok.body.as_ref().is_some_and(|body| {
            matches!(body.fidelity.as_deref(), Some(rung) if rung != Fidelity::Reciprocal.name())
        });
        let mut edge = relay.edge.lock().unwrap_or_else(|e| e.into_inner());
        edge.insert(entry.key, response.clone(), degraded);
    }
    // The backend collected its ticket; ours is spent too.
    relay
        .tickets
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .remove(&ticket);
}

/// Aggregated cluster stats: the numeric counters of every reachable
/// backend summed, plus the relay's own counters and node tallies.
fn relay_stats(relay: &Relay, pool: &mut BackendPool) -> Response {
    const SUMMED: &[&str] = &[
        "submitted",
        "admitted",
        "rejected",
        "coalesced",
        "cache_hits",
        "completed",
        "failed",
        "cancelled",
        "expired",
        "deadline_exceeded",
        "poisoned",
        "retries",
        "respawns",
        "journal_compactions",
        "recovered_results",
        "resumed_jobs",
        "queue_depth",
        "store_hits",
        "store_misses",
        "insertions",
        "evictions",
        "shed",
        "degraded",
        "upgraded",
        "upgrades_pending",
    ];
    let mut sums: HashMap<&str, u64> = SUMMED.iter().map(|&k| (k, 0)).collect();
    let mut reachable = 0u64;
    let mut unreachable: Vec<u64> = Vec::new();
    for node in 0..relay.nodes.len() {
        let raw = match forward(
            relay,
            pool,
            node,
            &Request::Stats,
            relay.config.forward_deadline,
        ) {
            Ok(Response::Report { json }) => json,
            Ok(_) => {
                unreachable.push(node as u64);
                continue;
            }
            Err(err) => {
                if !is_breaker_open(&err) {
                    relay.record_probe(node, Err(()));
                }
                unreachable.push(node as u64);
                continue;
            }
        };
        let Ok(response) = Json::parse(&raw) else {
            unreachable.push(node as u64);
            continue;
        };
        reachable += 1;
        for &field in SUMMED {
            if let Some(v) = response.get(field).and_then(Json::as_u64) {
                *sums.get_mut(field).expect("preseeded") += v;
            }
        }
    }
    let submitted = sums["submitted"];
    let memoized = sums["cache_hits"] + sums["coalesced"];
    let memo_ratio = if submitted == 0 {
        0.0
    } else {
        memoized as f64 / submitted as f64
    };
    let lookups = sums["store_hits"] + sums["store_misses"];
    let hit_ratio = if lookups == 0 {
        0.0
    } else {
        sums["store_hits"] as f64 / lookups as f64
    };
    let alive = relay.alive_mask();
    let nodes_routable = alive.iter().filter(|a| **a).count() as u64;
    let relay_counters = relay.stats();
    let mut fields: Vec<(&'static str, JsonField)> = SUMMED
        .iter()
        .map(|&k| (k, JsonField::Int(sums[k])))
        .collect();
    fields.push(("hit_ratio", JsonField::Num(hit_ratio)));
    fields.push(("memo_ratio", JsonField::Num(memo_ratio)));
    fields.push(("role", JsonField::Str("relay".into())));
    fields.push(("nodes", JsonField::Int(alive.len() as u64)));
    fields.push(("nodes_routable", JsonField::Int(nodes_routable)));
    fields.push(("nodes_reporting", JsonField::Int(reachable)));
    fields.push(("relay_submitted", JsonField::Int(relay_counters.submitted)));
    fields.push(("relay_forwards", JsonField::Int(relay_counters.forwards)));
    fields.push(("relay_retries", JsonField::Int(relay_counters.retries)));
    fields.push(("relay_reroutes", JsonField::Int(relay_counters.reroutes)));
    fields.push(("relay_failovers", JsonField::Int(relay_counters.failovers)));
    fields.push(("relay_edge_hits", JsonField::Int(relay_counters.edge_hits)));
    fields.push((
        "relay_edge_brownouts",
        JsonField::Int(relay_counters.edge_brownouts),
    ));
    fields.push(("relay_breaker_trips", JsonField::Int(relay.breaker_trips())));
    let breakers_open = (0..relay.nodes.len())
        .filter(|&node| relay.breaker_state(node) != BreakerState::Closed)
        .count() as u64;
    fields.push(("breakers_open", JsonField::Int(breakers_open)));
    // Honest aggregation: when any backend failed to report, the sums
    // above under-count the cluster — flag it and name the gaps so a
    // dashboard never mistakes a partial view for a quiet cluster.
    if !unreachable.is_empty() {
        fields.push(("degraded_stats", JsonField::Raw("true".into())));
        let rows: Vec<String> = unreachable.iter().map(u64::to_string).collect();
        fields.push((
            "nodes_unreachable",
            JsonField::Raw(format!("[{}]", rows.join(","))),
        ));
    }
    Response::Report {
        json: ok_fields(fields),
    }
}

/// Per-node breakdown: health state, probe RTT, and each reachable
/// backend's own headline counters, as a JSON array.
fn relay_node_stats(relay: &Relay, pool: &mut BackendPool) -> Response {
    const PER_NODE: &[&str] = &[
        "submitted",
        "completed",
        "cache_hits",
        "coalesced",
        "queue_depth",
        "shed",
        "degraded",
        "upgraded",
        "brownout",
    ];
    let mut rows = Vec::with_capacity(relay.nodes.len());
    for node in 0..relay.nodes.len() {
        let (state, failures, rtt_ns) = {
            let machine = relay.nodes[node]
                .health
                .lock()
                .unwrap_or_else(|e| e.into_inner());
            (
                machine.state(),
                u64::from(machine.failures()),
                machine.last_rtt_ns(),
            )
        };
        let (breaker_state, breaker_trips) = {
            let breaker = relay.nodes[node]
                .breaker
                .lock()
                .unwrap_or_else(|e| e.into_inner());
            (breaker.state(), breaker.trips())
        };
        let mut fields = vec![
            ("node", JsonField::Int(node as u64)),
            ("addr", JsonField::Str(relay.nodes[node].addr.to_string())),
            ("state", JsonField::Str(state.name().into())),
            ("failures", JsonField::Int(failures)),
            ("rtt_ns", JsonField::Int(rtt_ns)),
            ("breaker", JsonField::Str(breaker_state.name().into())),
            ("breaker_trips", JsonField::Int(breaker_trips)),
        ];
        let mut reported = false;
        if state.routes() {
            match forward(
                relay,
                pool,
                node,
                &Request::Stats,
                relay.config.forward_deadline,
            ) {
                Ok(Response::Report { json }) => {
                    if let Ok(response) = Json::parse(&json) {
                        for &field in PER_NODE {
                            if let Some(v) = response.get(field).and_then(Json::as_u64) {
                                fields.push((field, JsonField::Int(v)));
                            }
                        }
                        reported = true;
                    }
                }
                Ok(_) => {}
                Err(err) => {
                    if !is_breaker_open(&err) {
                        relay.record_probe(node, Err(()));
                    }
                }
            }
        }
        // A row that carries no counters says so explicitly: Down,
        // breaker-open, and mid-crash backends all read as
        // `unreachable` instead of silently thinner rows.
        if !reported {
            fields.push(("unreachable", JsonField::Raw("true".into())));
        }
        rows.push(json_object(&fields));
    }
    Response::Report {
        json: ok_fields(vec![
            ("role", JsonField::Str("relay".into())),
            ("nodes", JsonField::Raw(format!("[{}]", rows.join(",")))),
        ]),
    }
}

/// A bound, not-yet-running relay server (mirrors
/// [`WireServer`](crate::wire::WireServer)).
pub struct RelayServer {
    listener: TcpListener,
    relay: Arc<Relay>,
}

impl RelayServer {
    /// Binds `addr` around a relay.
    ///
    /// # Errors
    ///
    /// Propagates the bind failure.
    pub fn bind(addr: impl ToSocketAddrs, relay: Relay) -> io::Result<RelayServer> {
        Ok(RelayServer {
            listener: TcpListener::bind(addr)?,
            relay: Arc::new(relay),
        })
    }

    /// The bound address (resolves port 0).
    ///
    /// # Errors
    ///
    /// Propagates the socket query failure.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Starts the probe loop and the accept loop on background
    /// threads; the handle stops both.
    ///
    /// # Errors
    ///
    /// Propagates the socket query / thread spawn failure.
    pub fn spawn(self) -> io::Result<RelayHandle> {
        let addr = self.local_addr()?;
        let relay = self.relay.clone();
        let prober_relay = relay.clone();
        let prober = std::thread::Builder::new()
            .name("ra-relay-probe".into())
            .spawn(move || prober_relay.probe_loop())?;
        let accept_relay = relay.clone();
        let listener = self.listener;
        let accept = std::thread::Builder::new()
            .name("ra-relay-accept".into())
            .spawn(move || accept_loop(&listener, &accept_relay))?;
        Ok(RelayHandle {
            addr,
            relay,
            threads: vec![prober, accept],
        })
    }
}

fn accept_loop(listener: &TcpListener, relay: &Arc<Relay>) {
    for conn in listener.incoming() {
        if relay.stop.load(Ordering::Relaxed) {
            return;
        }
        let Ok(stream) = conn else { continue };
        let relay = relay.clone();
        let _ = std::thread::Builder::new()
            .name("ra-relay-conn".into())
            .spawn(move || {
                let mut pool = BackendPool::new(&relay);
                let idle = relay.config.idle_timeout;
                serve_stream(stream, idle, |request| {
                    handle_relay_request(&relay, &mut pool, request)
                });
            });
    }
}

/// Stops a spawned relay (probe + accept loops) on drop or explicitly.
pub struct RelayHandle {
    addr: SocketAddr,
    relay: Arc<Relay>,
    threads: Vec<JoinHandle<()>>,
}

impl RelayHandle {
    /// Where the relay listens.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shared relay state (stats, node health).
    pub fn relay(&self) -> Arc<Relay> {
        self.relay.clone()
    }

    /// Signals both loops and joins them.
    pub fn stop(mut self) {
        self.stop_inner();
    }

    fn stop_inner(&mut self) {
        if self.threads.is_empty() {
            return;
        }
        self.relay.stop.store(true, Ordering::Relaxed);
        // Unblock the accept() so the loop observes the flag.
        let _ = TcpStream::connect(self.addr);
        for thread in self.threads.drain(..) {
            let _ = thread.join();
        }
        let _ = self.relay.obs.flush();
    }
}

impl Drop for RelayHandle {
    fn drop(&mut self) {
        self.stop_inner();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheduler::{JobService, ServeConfig};
    use crate::wire::WireServer;

    const SPEC: &str = "target=2x2 app=water mode=fixed:10 instructions=20 budget=100000";

    fn backend(workers: usize) -> crate::wire::ServerHandle {
        let service = JobService::start(
            ServeConfig {
                workers,
                ..ServeConfig::default()
            },
            ObsSink::disabled(),
        )
        .expect("service starts");
        WireServer::bind("127.0.0.1:0", service)
            .expect("bind backend")
            .spawn()
            .expect("spawn backend")
    }

    fn relay_over(addrs: &[SocketAddr]) -> RelayHandle {
        let config = RelayConfig {
            backends: addrs.iter().map(|a| a.to_string()).collect(),
            health: HealthPolicy {
                probe_interval: Duration::from_millis(50),
                probe_timeout: Duration::from_millis(250),
                fail_threshold: 2,
                recover_threshold: 1,
            },
            forward_deadline: Duration::from_millis(500),
            retry_backoff: Duration::from_millis(5),
            ..RelayConfig::default()
        };
        let relay = Relay::new(config, ObsSink::disabled()).expect("relay config");
        RelayServer::bind("127.0.0.1:0", relay)
            .expect("bind relay")
            .spawn()
            .expect("spawn relay")
    }

    /// A free 127.0.0.1 address: bound once to pick a port, then
    /// released so the test controls when (if ever) something listens.
    fn reserved_addr() -> SocketAddr {
        let parked = TcpListener::bind("127.0.0.1:0").expect("park a port");
        let addr = parked.local_addr().expect("parked addr");
        drop(parked);
        addr
    }

    /// A relay built directly (no spawn: no probe loop, no listener) so
    /// tests drive `handle_relay_request` deterministically. The health
    /// thresholds are set sky-high so only the *breaker* reacts to
    /// forward failures.
    fn relay_direct(addrs: &[SocketAddr], breaker: BreakerConfig) -> Relay {
        let config = RelayConfig {
            backends: addrs.iter().map(|a| a.to_string()).collect(),
            health: HealthPolicy {
                probe_interval: Duration::from_secs(3600),
                probe_timeout: Duration::from_millis(250),
                fail_threshold: 10_000,
                recover_threshold: 1,
            },
            breaker,
            forward_deadline: Duration::from_millis(300),
            retry_budget: 2,
            retry_backoff: Duration::from_millis(1),
            ..RelayConfig::default()
        };
        Relay::new(config, ObsSink::disabled()).expect("relay config")
    }

    fn backend_at(addr: SocketAddr) -> crate::wire::ServerHandle {
        let service = JobService::start(
            ServeConfig {
                workers: 1,
                ..ServeConfig::default()
            },
            ObsSink::disabled(),
        )
        .expect("service starts");
        WireServer::bind(addr, service)
            .expect("bind backend at reserved addr")
            .spawn()
            .expect("spawn backend")
    }

    fn test_breaker() -> BreakerConfig {
        BreakerConfig {
            window: 4,
            min_samples: 2,
            error_threshold: 0.5,
            rtt_budget: Duration::from_secs(5),
            open_cooldown: Duration::from_millis(100),
            half_open_probes: 1,
            close_after: 1,
        }
    }

    #[test]
    fn a_tripped_breaker_steers_submits_and_recovers_half_open() {
        let addr = reserved_addr();
        let relay = relay_direct(&[addr], test_breaker());
        let mut pool = BackendPool::new(&relay);

        // Nothing listens yet: both forward attempts fail, which is
        // exactly min_samples at 100% error rate — the breaker trips.
        let refused = handle_relay_request(
            &relay,
            &mut pool,
            &Request::Submit(SubmitItem::new(SPEC)),
        );
        assert!(
            matches!(&refused, Response::Error(err) if err.code == ErrorCode::NoBackend),
            "{refused:?}"
        );
        assert_eq!(relay.breaker_state(0), BreakerState::Open);
        assert_eq!(relay.breaker_trips(), 1);
        assert!(
            relay.node_state(0).routes(),
            "the breaker must trip without the health machine demoting the node"
        );

        // While open (cooldown running) the routing mask refuses
        // locally: no connection attempt, no extra breaker samples.
        let still_refused = handle_relay_request(
            &relay,
            &mut pool,
            &Request::Submit(SubmitItem::new(SPEC)),
        );
        assert!(
            matches!(&still_refused, Response::Error(err) if err.code == ErrorCode::NoBackend),
            "{still_refused:?}"
        );
        assert_eq!(relay.breaker_state(0), BreakerState::Open);

        // The backend comes up; once the cooldown elapses the next
        // submit is the half-open probe, and its success closes the
        // breaker (close_after=1).
        let b0 = backend_at(addr);
        std::thread::sleep(Duration::from_millis(120));
        let recovered = handle_relay_request(
            &relay,
            &mut pool,
            &Request::Submit(SubmitItem::new(SPEC)),
        );
        let Response::Submit(ok) = &recovered else {
            panic!("the half-open probe must carry the submit: {recovered:?}");
        };
        assert_eq!(ok.node, Some(0));
        assert_eq!(relay.breaker_state(0), BreakerState::Closed);
        assert_eq!(relay.breaker_trips(), 1, "recovery is not another trip");
        b0.stop();
    }

    #[test]
    fn unreachable_owners_brownout_shedable_submits_at_the_edge() {
        let addr = reserved_addr();
        let relay = relay_direct(&[addr], test_breaker());
        let mut pool = BackendPool::new(&relay);
        let rspec = "target=2x2 app=water mode=reciprocal instructions=40 budget=100000";

        // A shedable submit (allow_degraded, no floor) with every owner
        // unreachable: the edge answers it at fidelity=hop instead of
        // failing with no_backend.
        let item = SubmitItem::new(rspec)
            .client("edge-test")
            .allow_degraded(true);
        let submitted =
            handle_relay_request(&relay, &mut pool, &Request::Submit(item.clone()));
        let Response::Submit(ok) = &submitted else {
            panic!("shedable submit must be answered degraded: {submitted:?}");
        };
        assert_eq!(ok.disposition, "degraded");
        assert!(ok.edge);
        assert_eq!(ok.node, None);
        assert_eq!(relay.stats().edge_brownouts, 1);

        let outcome = handle_relay_request(
            &relay,
            &mut pool,
            &Request::Result {
                ticket: ok.ticket,
                timeout_ms: Some(1_000),
            },
        );
        let Response::Outcome(out) = &outcome else {
            panic!("edge ticket must resolve from the edge cache: {outcome:?}");
        };
        assert_eq!(out.outcome, "completed");
        let body = out.body.as_ref().expect("degraded answers carry a body");
        assert_eq!(body.fidelity.as_deref(), Some("hop"));
        assert_eq!(body.error_bound, Some(HOP_ERROR_BOUND));
        assert!(body.cycles > 0);

        // A second shedable submit is served from the degraded edge
        // entry without any backend traffic.
        let again = handle_relay_request(&relay, &mut pool, &Request::Submit(item));
        let Response::Submit(hit) = &again else {
            panic!("{again:?}");
        };
        assert_eq!(hit.disposition, "cached");
        assert!(hit.edge);

        // A full-fidelity submitter of the same spec must NOT be fed
        // the degraded entry: with the breaker open it fails fast with
        // no_backend rather than silently accepting a hop answer.
        let strict = handle_relay_request(
            &relay,
            &mut pool,
            &Request::Submit(SubmitItem::new(rspec)),
        );
        assert!(
            matches!(&strict, Response::Error(err) if err.code == ErrorCode::NoBackend),
            "a degraded edge entry must not satisfy a full-fidelity submit: {strict:?}"
        );
    }

    #[test]
    fn aggregated_stats_are_flagged_degraded_when_a_backend_is_unreachable() {
        let live = backend(1);
        let dead_addr = reserved_addr();
        let relay = relay_direct(&[live.addr(), dead_addr], test_breaker());
        let mut pool = BackendPool::new(&relay);

        let stats = handle_relay_request(&relay, &mut pool, &Request::Stats);
        let Response::Report { json } = &stats else {
            panic!("{stats:?}");
        };
        let parsed = Json::parse(json).expect("stats json parses");
        assert_eq!(
            parsed.get("degraded_stats").and_then(Json::as_bool),
            Some(true),
            "partial sums must be flagged: {json}"
        );
        assert_eq!(parsed.get("nodes_reporting").and_then(Json::as_u64), Some(1));
        let unreachable = match parsed.get("nodes_unreachable") {
            Some(Json::Arr(rows)) => rows.clone(),
            other => panic!("nodes_unreachable must be an array, got {other:?}"),
        };
        assert_eq!(unreachable.len(), 1);
        assert_eq!(unreachable[0].as_u64(), Some(1));

        let nodes = handle_relay_request(&relay, &mut pool, &Request::NodeStats);
        let Response::Report { json } = &nodes else {
            panic!("{nodes:?}");
        };
        let parsed = Json::parse(json).expect("node_stats json parses");
        let rows = match parsed.get("nodes") {
            Some(Json::Arr(rows)) => rows.clone(),
            other => panic!("nodes must be an array, got {other:?}"),
        };
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].get("unreachable"), None, "live node reports");
        assert!(rows[0].get("breaker").and_then(Json::as_str).is_some());
        assert_eq!(
            rows[1].get("unreachable").and_then(Json::as_bool),
            Some(true),
            "dead node row must say so: {json}"
        );

        // A fully reachable cluster is never flagged.
        let live2 = backend(1);
        let relay_ok = relay_direct(&[live.addr(), live2.addr()], test_breaker());
        let mut pool_ok = BackendPool::new(&relay_ok);
        let stats = handle_relay_request(&relay_ok, &mut pool_ok, &Request::Stats);
        let Response::Report { json } = &stats else {
            panic!("{stats:?}");
        };
        let parsed = Json::parse(json).expect("stats json parses");
        assert_eq!(parsed.get("degraded_stats"), None, "{json}");
        assert_eq!(parsed.get("nodes_unreachable"), None, "{json}");
        live.stop();
        live2.stop();
    }

    #[test]
    fn relay_round_trips_submit_and_result() {
        let b0 = backend(1);
        let b1 = backend(1);
        let relay = relay_over(&[b0.addr(), b1.addr()]);
        let mut client = WireClient::connect(relay.addr()).unwrap();

        let submit = client.submit(SPEC, Some("high"), None).unwrap();
        assert_eq!(submit.get("ok").and_then(Json::as_bool), Some(true));
        assert_eq!(
            submit.get("disposition").and_then(Json::as_str),
            Some("enqueued")
        );
        let ticket = submit.get("ticket").and_then(Json::as_u64).unwrap();
        let node = submit.get("node").and_then(Json::as_u64).unwrap();
        assert!(node < 2);

        let result = client.result(ticket, Some(30_000)).unwrap();
        assert_eq!(
            result.get("outcome").and_then(Json::as_str),
            Some("completed")
        );
        let cycles = result
            .get("result")
            .and_then(|r| r.get("cycles"))
            .and_then(Json::as_u64)
            .unwrap();
        assert!(cycles > 0);

        // Same spec again: the edge LRU answers without a backend hop.
        let again = client.submit(SPEC, None, None).unwrap();
        assert_eq!(
            again.get("disposition").and_then(Json::as_str),
            Some("cached")
        );
        assert_eq!(again.get("edge").and_then(Json::as_bool), Some(true));
        let ticket2 = again.get("ticket").and_then(Json::as_u64).unwrap();
        let cached = client.result(ticket2, Some(5_000)).unwrap();
        assert_eq!(
            cached
                .get("result")
                .and_then(|r| r.get("cycles"))
                .and_then(Json::as_u64),
            Some(cycles),
            "edge-cached result must be bit-identical"
        );
        assert!(relay.relay().stats().edge_hits >= 2);
        relay.stop();
        b0.stop();
        b1.stop();
    }

    #[test]
    fn relay_stats_aggregate_and_node_stats_break_down() {
        let b0 = backend(1);
        let b1 = backend(1);
        let relay = relay_over(&[b0.addr(), b1.addr()]);
        let mut client = WireClient::connect(relay.addr()).unwrap();
        let submit = client.submit(SPEC, None, None).unwrap();
        let ticket = submit.get("ticket").and_then(Json::as_u64).unwrap();
        client.result(ticket, Some(30_000)).unwrap();

        let stats = client.stats().unwrap();
        assert_eq!(stats.get("role").and_then(Json::as_str), Some("relay"));
        assert_eq!(stats.get("submitted").and_then(Json::as_u64), Some(1));
        assert_eq!(stats.get("completed").and_then(Json::as_u64), Some(1));
        assert_eq!(stats.get("nodes").and_then(Json::as_u64), Some(2));
        assert!(stats.get("relay_forwards").and_then(Json::as_u64).unwrap() >= 2);

        let nodes = client.node_stats().unwrap();
        let rows = match nodes.get("nodes") {
            Some(Json::Arr(rows)) => rows,
            other => panic!("nodes must be an array, got {other:?}"),
        };
        assert_eq!(rows.len(), 2);
        for row in rows {
            assert_eq!(row.get("state").and_then(Json::as_str), Some("up"));
        }
        relay.stop();
        b0.stop();
        b1.stop();
    }

    #[test]
    fn killing_a_backend_fails_over_with_the_same_result() {
        let b0 = backend(1);
        let b1 = backend(1);
        let relay = relay_over(&[b0.addr(), b1.addr()]);
        let mut backends = [Some(b0), Some(b1)];
        let mut client = WireClient::connect(relay.addr()).unwrap();

        // Pin down which node owns the spec, then kill exactly that one.
        let submit = client.submit(SPEC, None, None).unwrap();
        let ticket = submit.get("ticket").and_then(Json::as_u64).unwrap();
        let owner = submit.get("node").and_then(Json::as_u64).unwrap() as usize;
        let baseline = client.result(ticket, Some(30_000)).unwrap();
        let cycles = baseline
            .get("result")
            .and_then(|r| r.get("cycles"))
            .and_then(Json::as_u64)
            .unwrap();

        // Kill the owner; the cluster must keep serving the same spec
        // with a bit-identical result (edge LRU or survivor memo).
        backends[owner].take().unwrap().stop();
        // Probe loop: fail_threshold=2 at 50ms interval -> Down well
        // within a second.
        let relay_state = relay.relay();
        let deadline = Instant::now() + Duration::from_secs(5);
        while relay_state.node_state(owner).routes() {
            assert!(
                Instant::now() < deadline,
                "probe loop never marked the dead node Down"
            );
            std::thread::sleep(Duration::from_millis(20));
        }

        let again = client.submit(SPEC, None, None).unwrap();
        assert_eq!(again.get("ok").and_then(Json::as_bool), Some(true));
        let ticket2 = again.get("ticket").and_then(Json::as_u64).unwrap();
        let failed_over = client.result(ticket2, Some(30_000)).unwrap();
        assert_eq!(
            failed_over
                .get("result")
                .and_then(|r| r.get("cycles"))
                .and_then(Json::as_u64),
            Some(cycles),
            "post-failover result must be bit-identical"
        );
        relay.stop();
        for handle in backends.into_iter().flatten() {
            handle.stop();
        }
    }

    #[test]
    fn in_flight_jobs_survive_a_backend_death() {
        // Slow enough to still be running when the backend dies.
        let slow_spec =
            "target=4x4 app=water mode=fixed:10 instructions=3000 budget=10000000";
        let b0 = backend(2);
        let b1 = backend(2);
        let relay = relay_over(&[b0.addr(), b1.addr()]);
        let mut backends = [Some(b0), Some(b1)];
        let mut client = WireClient::connect(relay.addr()).unwrap();
        let submit = client.submit(slow_spec, None, None).unwrap();
        assert_eq!(submit.get("ok").and_then(Json::as_bool), Some(true));
        let ticket = submit.get("ticket").and_then(Json::as_u64).unwrap();
        let owner = submit.get("node").and_then(Json::as_u64).unwrap() as usize;

        // Kill the owner while the job is in flight.
        backends[owner].take().unwrap().stop();
        let result = client.result(ticket, Some(60_000)).unwrap();
        assert_eq!(
            result.get("outcome").and_then(Json::as_str),
            Some("completed"),
            "failover must re-drive the in-flight job: {result:?}"
        );
        let stats = relay.relay().stats();
        assert!(
            stats.reroutes >= 1,
            "the handoff must be accounted as a reroute: {stats:?}"
        );
        relay.stop();
        for handle in backends.into_iter().flatten() {
            handle.stop();
        }
    }

    #[test]
    fn bad_specs_are_rejected_at_the_edge() {
        let b0 = backend(1);
        let relay = relay_over(&[b0.addr()]);
        let mut client = WireClient::connect(relay.addr()).unwrap();
        let response = client
            .call(r#"{"verb":"submit","spec":"target=4x4 app=water mode=warp"}"#)
            .unwrap();
        assert_eq!(response.get("ok").and_then(Json::as_bool), Some(false));
        assert_eq!(
            response.get("error").and_then(Json::as_str),
            Some("bad_spec")
        );
        assert_eq!(response.get("verb").and_then(Json::as_str), Some("submit"));
        // No forwards spent on it.
        assert_eq!(relay.relay().stats().submitted, 0);
        relay.stop();
        b0.stop();
    }

    #[test]
    fn batch_verbs_fan_out_across_the_ring() {
        for binary in [false, true] {
            let b0 = backend(2);
            let b1 = backend(2);
            let relay = relay_over(&[b0.addr(), b1.addr()]);
            let mut client = WireClient::connect(relay.addr())
                .unwrap()
                .with_binary(binary);

            // Distinct seeds spread the items across both ring owners;
            // one bad spec must fail per-item, not kill the batch.
            let mut items: Vec<SubmitItem> = (0..6)
                .map(|seed| SubmitItem::new(format!("{SPEC} seed={seed}")))
                .collect();
            items.push(SubmitItem::new("not a spec"));
            let responses = client.submit_batch(items).unwrap();
            assert_eq!(responses.len(), 7, "binary={binary}");
            let mut tickets = Vec::new();
            for response in &responses[..6] {
                let Response::Submit(ok) = response else {
                    panic!("binary={binary}: {response:?}");
                };
                tickets.push(ok.ticket);
                assert!(ok.node.is_some(), "relay submits carry the node");
            }
            assert!(
                matches!(&responses[6], Response::Error(err) if err.code == ErrorCode::BadSpec),
                "binary={binary}: {:?}",
                responses[6]
            );

            let outcomes = client.result_batch(tickets.clone(), Some(60_000)).unwrap();
            assert_eq!(outcomes.len(), 6, "binary={binary}");
            for outcome in &outcomes {
                let Response::Outcome(ok) = outcome else {
                    panic!("binary={binary}: {outcome:?}");
                };
                assert_eq!(ok.outcome, "completed", "binary={binary}");
            }

            // Collected tickets are spent; status_batch says so item
            // by item.
            let states = client.status_batch(tickets).unwrap();
            for state in &states {
                assert!(
                    matches!(state, Response::Error(err) if err.code == ErrorCode::UnknownTicket),
                    "binary={binary}: {state:?}"
                );
            }
            relay.stop();
            b0.stop();
            b1.stop();
        }
    }

    #[test]
    fn a_json_client_through_a_binary_forwarding_relay_matches_the_direct_path() {
        // The mixed path: JSON client -> relay -> (binary) backend must
        // produce a result body byte-identical to a JSON client talking
        // to a backend directly.
        let direct_backend = backend(1);
        let mut direct = WireClient::connect(direct_backend.addr()).unwrap();
        let submit = direct.submit(SPEC, None, None).unwrap();
        let ticket = submit.get("ticket").and_then(Json::as_u64).unwrap();
        let direct_line = direct
            .call_raw(&format!(
                r#"{{"verb":"result","ticket":{ticket},"timeout_ms":30000}}"#
            ))
            .unwrap();
        direct_backend.stop();

        let b0 = backend(1);
        let relay = relay_over(&[b0.addr()]);
        let mut client = WireClient::connect(relay.addr()).unwrap();
        let submit = client.submit(SPEC, None, None).unwrap();
        let ticket = submit.get("ticket").and_then(Json::as_u64).unwrap();
        let relayed_line = client
            .call_raw(&format!(
                r#"{{"verb":"result","ticket":{ticket},"timeout_ms":30000}}"#
            ))
            .unwrap();

        // Compare the deterministic payload: the result body (timings
        // differ run to run, so strip them by extracting the body).
        let body = |line: &str| {
            let json = Json::parse(line).unwrap();
            assert_eq!(
                json.get("outcome").and_then(Json::as_str),
                Some("completed"),
                "{line}"
            );
            let start = line.find(r#""result":{"#).expect("result body present");
            line[start..].to_owned()
        };
        assert_eq!(body(&direct_line), body(&relayed_line));
        relay.stop();
        b0.stop();
    }
}
