//! Data-parallel execution engine for the cycle-level NoC.
//!
//! The paper offloads its cycle-level network simulator to a GPU coprocessor:
//! router state lives in device memory and every simulated cycle is a pair of
//! bulk-synchronous data-parallel kernel launches. This crate reproduces that
//! execution structure on host threads (see DESIGN.md for the substitution
//! argument): a persistent worker pool executes the *compute* phase of all
//! routers in parallel (reads of the shared wire state are immutable), hits a
//! barrier, executes the *send* phase on disjoint per-router wire chunks,
//! hits a second barrier, and hands control back to the (sequential)
//! co-simulation loop — exactly a kernel-launch/sync cadence.
//!
//! Because the phase contract of [`ra_noc::Router`] guarantees that compute
//! only writes router-local state and send only writes router-owned wires,
//! the parallel schedule produces **bit-identical results** to the serial
//! engine (tested here and in the workspace integration tests).
//!
//! # Example
//!
//! ```
//! use ra_gpu::ParallelEngine;
//! use ra_noc::{NocConfig, NocNetwork};
//! use ra_sim::{Cycle, MessageClass, NetMessage, Network, NodeId};
//!
//! let mut net = NocNetwork::new(NocConfig::new(4, 4))?;
//! let mut engine = ParallelEngine::new(2);
//! net.inject(
//!     NetMessage::new(0, NodeId(0), NodeId(15), MessageClass::Request, 8),
//!     Cycle(0),
//! );
//! engine.run_cycles(&mut net, 100).expect("no worker faults");
//! assert_eq!(net.stats().delivered, 1);
//! # Ok::<(), ra_sim::ConfigError>(())
//! ```

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Barrier};
use std::thread::JoinHandle;

use parking_lot::RwLock;
use ra_noc::{Flit, NocNetwork, Router, TopologyMap, Wire, Wires};
use ra_sim::SimError;

/// A snapshot of the raw pointers a cycle's phases operate on.
///
/// Written by the coordinating thread before the start barrier of each
/// cycle; read by workers strictly between the start and end barriers, while
/// the coordinator is blocked — that barrier discipline is what makes the
/// aliasing sound.
#[derive(Clone, Copy)]
struct Job {
    routers: *mut Router,
    n_routers: usize,
    topo: *const TopologyMap,
    wires: *const Wires,
    flit_wires: *mut Wire<Flit>,
    credit_wires: *mut Wire<u8>,
    ports: usize,
    now: u64,
}

impl Job {
    const fn empty() -> Self {
        Job {
            routers: std::ptr::null_mut(),
            n_routers: 0,
            topo: std::ptr::null(),
            wires: std::ptr::null(),
            flit_wires: std::ptr::null_mut(),
            credit_wires: std::ptr::null_mut(),
            ports: 0,
            now: 0,
        }
    }
}

// SAFETY: the pointers are only dereferenced by workers between the start
// and end barriers of a cycle, while the owning &mut NocNetwork is pinned on
// the coordinating thread inside `run_cycle`, and each worker touches a
// disjoint router/wire range (see `range_of`).
unsafe impl Send for Job {}
unsafe impl Sync for Job {}

struct SharedState {
    start: Barrier,
    mid: Barrier,
    end: Barrier,
    job: RwLock<Job>,
    shutdown: AtomicBool,
    /// First panic caught inside a worker phase this cycle, as
    /// `(worker index, panic payload)`. Workers always reach their
    /// barriers even after a panic, so the coordinator can harvest the
    /// fault instead of deadlocking on a dead thread.
    fault: RwLock<Option<(usize, String)>>,
}

/// The contiguous router range worker `w` of `n` owns.
fn range_of(worker: usize, workers: usize, routers: usize) -> std::ops::Range<usize> {
    let per = routers.div_ceil(workers.max(1));
    let lo = (worker * per).min(routers);
    let hi = ((worker + 1) * per).min(routers);
    lo..hi
}

/// A persistent bulk-synchronous worker pool executing NoC cycles.
///
/// Construction spawns the pool; dropping the engine shuts it down. One
/// engine can drive many networks over its lifetime (only one at a time).
pub struct ParallelEngine {
    shared: Arc<SharedState>,
    handles: Vec<JoinHandle<()>>,
    workers: usize,
}

impl std::fmt::Debug for ParallelEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ParallelEngine")
            .field("workers", &self.workers)
            .finish()
    }
}

impl ParallelEngine {
    /// Spawns a pool of `workers` threads (at least 1).
    pub fn new(workers: usize) -> Self {
        let workers = workers.max(1);
        let shared = Arc::new(SharedState {
            start: Barrier::new(workers + 1),
            mid: Barrier::new(workers + 1),
            end: Barrier::new(workers + 1),
            job: RwLock::new(Job::empty()),
            shutdown: AtomicBool::new(false),
            fault: RwLock::new(None),
        });
        let handles = (0..workers)
            .map(|w| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("noc-worker-{w}"))
                    .spawn(move || worker_loop(w, workers, &shared))
                    .expect("spawn NoC worker")
            })
            .collect();
        ParallelEngine {
            shared,
            handles,
            workers,
        }
    }

    /// Number of worker threads in the pool.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Executes exactly one cycle of `net` on the pool.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Fault`] if a worker thread panicked while
    /// executing a router phase. The pool itself survives (panics are
    /// caught inside the workers, which still reach every barrier), so the
    /// engine remains usable — but the network that was being stepped must
    /// be considered corrupt and rebuilt by the caller.
    pub fn run_cycle(&mut self, net: &mut NocNetwork) -> Result<(), SimError> {
        {
            let (now, topo, routers, wires) = net.parts();
            let job = Job {
                routers: routers.as_mut_ptr(),
                n_routers: routers.len(),
                topo,
                wires,
                flit_wires: wires.flits.as_mut_ptr(),
                credit_wires: wires.credits.as_mut_ptr(),
                ports: wires.ports() as usize,
                now,
            };
            *self.shared.job.write() = job;
            self.shared.start.wait();
            // Workers run phase_compute, then phase_send, while we wait.
            self.shared.mid.wait();
            self.shared.end.wait();
        }
        if let Some((worker, detail)) = self.shared.fault.write().take() {
            return Err(SimError::Fault {
                component: format!("noc-worker-{worker}"),
                detail,
            });
        }
        net.finish_cycle();
        Ok(())
    }

    /// Runs `cycles` consecutive cycles.
    ///
    /// # Errors
    ///
    /// Propagates the first [`SimError::Fault`] from
    /// [`run_cycle`](ParallelEngine::run_cycle).
    pub fn run_cycles(&mut self, net: &mut NocNetwork, cycles: u64) -> Result<(), SimError> {
        for _ in 0..cycles {
            self.run_cycle(net)?;
        }
        Ok(())
    }

    /// Runs until the network drains (every in-flight message delivered).
    ///
    /// # Errors
    ///
    /// * [`SimError::Timeout`] if `budget` cycles elapse first;
    /// * [`SimError::Fault`] if a worker panicked;
    /// * [`SimError::Invariant`] if a router recorded a violated invariant.
    pub fn run_until_drained(
        &mut self,
        net: &mut NocNetwork,
        budget: u64,
    ) -> Result<(), SimError> {
        use ra_sim::Network;
        let start = net.next_cycle();
        while net.in_flight() > 0 {
            net.check_invariant()?;
            if net.next_cycle() - start > budget {
                return Err(SimError::Timeout {
                    budget,
                    waiting_for: format!("{} in-flight messages", net.in_flight()),
                });
            }
            self.run_cycle(net)?;
        }
        net.check_invariant()
    }
}

impl Drop for ParallelEngine {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        // Release the workers from the start barrier so they can observe
        // the shutdown flag and exit.
        self.shared.start.wait();
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

/// Renders a caught panic payload into a displayable string.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

fn worker_loop(worker: usize, workers: usize, shared: &SharedState) {
    loop {
        shared.start.wait();
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        let job = *shared.job.read();
        let range = range_of(worker, workers, job.n_routers);
        // Panics inside router phases (a model bug, or an injected test
        // fault) must not kill the worker: a dead thread would deadlock the
        // coordinator at the next barrier. Catch them, record the first one
        // in the shared fault slot, and keep the barrier cadence intact.
        let compute = catch_unwind(AssertUnwindSafe(|| {
            // SAFETY: `range` is disjoint across workers; the coordinator
            // holds the &mut NocNetwork and is parked on the barriers, so no
            // other aliasing access exists. `topo` and `wires` are only read.
            unsafe {
                let topo = &*job.topo;
                let wires = &*job.wires;
                for r in range.clone() {
                    (*job.routers.add(r)).phase_compute(topo, wires, job.now);
                }
            }
        }));
        shared.mid.wait();
        let send = catch_unwind(AssertUnwindSafe(|| {
            // SAFETY: each router writes only its own `ports`-sized wire
            // chunk; chunks are disjoint because router ranges are disjoint.
            unsafe {
                for r in range.clone() {
                    let router = &mut *job.routers.add(r);
                    let fw = std::slice::from_raw_parts_mut(
                        job.flit_wires.add(r * job.ports),
                        job.ports,
                    );
                    let cw = std::slice::from_raw_parts_mut(
                        job.credit_wires.add(r * job.ports),
                        job.ports,
                    );
                    router.phase_send(fw, cw, job.now);
                }
            }
        }));
        if let Err(payload) = compute.and(send) {
            let mut slot = shared.fault.write();
            if slot.is_none() {
                *slot = Some((worker, panic_message(payload.as_ref())));
            }
        }
        shared.end.wait();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ra_noc::{InjectionProcess, NocConfig, TrafficGen, TrafficPattern};
    use ra_sim::{Cycle, Network};

    #[test]
    fn range_partition_covers_everything_disjointly() {
        for workers in 1..6 {
            for routers in [0usize, 1, 5, 16, 17, 64] {
                let mut covered = vec![false; routers];
                for w in 0..workers {
                    for i in range_of(w, workers, routers) {
                        assert!(!covered[i], "overlap at {i}");
                        covered[i] = true;
                    }
                }
                assert!(covered.iter().all(|&c| c), "gap for {workers}/{routers}");
            }
        }
    }

    #[test]
    fn parallel_engine_delivers_traffic() {
        let mut net = NocNetwork::new(NocConfig::new(4, 4)).unwrap();
        let mut engine = ParallelEngine::new(3);
        let mut gen = TrafficGen::new(
            4,
            4,
            TrafficPattern::Uniform,
            InjectionProcess::Bernoulli { rate: 0.05 },
            1,
        );
        for now in 0..2_000u64 {
            gen.inject_cycle(&mut net, Cycle(now));
            engine.run_cycle(&mut net).unwrap();
        }
        engine.run_until_drained(&mut net, 100_000).unwrap();
        assert_eq!(net.stats().injected, gen.injected());
        assert_eq!(net.stats().delivered, gen.injected());
    }

    #[test]
    fn parallel_matches_serial_exactly() {
        fn run(parallel: Option<usize>) -> (u64, f64, f64) {
            let mut net = NocNetwork::new(NocConfig::new(8, 8)).unwrap();
            let mut gen = TrafficGen::new(
                8,
                8,
                TrafficPattern::Transpose,
                InjectionProcess::Bernoulli { rate: 0.08 },
                3,
            );
            let mut engine = parallel.map(ParallelEngine::new);
            for now in 0..3_000u64 {
                gen.inject_cycle(&mut net, Cycle(now));
                match engine.as_mut() {
                    Some(e) => e.run_cycle(&mut net).unwrap(),
                    None => net.tick(Cycle(now)),
                }
            }
            let s = net.stats();
            (s.delivered, s.latency.mean(), s.net_latency.mean())
        }
        let serial = run(None);
        for workers in [1, 2, 4] {
            assert_eq!(run(Some(workers)), serial, "workers = {workers}");
        }
    }

    #[test]
    fn engine_survives_multiple_networks() {
        let mut engine = ParallelEngine::new(2);
        for seed in 0..3 {
            let mut net = NocNetwork::new(NocConfig::new(4, 4).with_seed(seed)).unwrap();
            let mut gen = TrafficGen::new(
                4,
                4,
                TrafficPattern::Uniform,
                InjectionProcess::Bernoulli { rate: 0.03 },
                seed,
            );
            for now in 0..500u64 {
                gen.inject_cycle(&mut net, Cycle(now));
                engine.run_cycle(&mut net).unwrap();
            }
            engine.run_until_drained(&mut net, 50_000).unwrap();
            assert_eq!(net.stats().delivered, gen.injected());
        }
    }

    #[test]
    fn zero_workers_clamps_to_one() {
        let engine = ParallelEngine::new(0);
        assert_eq!(engine.workers(), 1);
    }

    #[test]
    fn drop_joins_cleanly() {
        let engine = ParallelEngine::new(4);
        drop(engine); // must not hang or panic
    }

    #[test]
    fn worker_panic_surfaces_as_fault_and_pool_survives() {
        use ra_sim::{MessageClass, NetMessage, NodeId, SimError};
        let mut engine = ParallelEngine::new(3);

        let mut net = NocNetwork::new(NocConfig::new(4, 4)).unwrap();
        net.inject(
            NetMessage::new(0, NodeId(0), NodeId(15), MessageClass::Request, 8),
            Cycle(0),
        );
        net.debug_router_mut(7).debug_force_panic();
        let err = engine.run_cycle(&mut net).unwrap_err();
        let SimError::Fault { component, detail } = &err else {
            panic!("expected Fault, got {err:?}");
        };
        assert!(component.starts_with("noc-worker-"), "got {component}");
        assert!(detail.contains("router 7"), "got {detail}");

        // The pool must survive the panic: a fresh network runs to
        // completion on the same engine.
        let mut net = NocNetwork::new(NocConfig::new(4, 4)).unwrap();
        net.inject(
            NetMessage::new(0, NodeId(0), NodeId(15), MessageClass::Request, 8),
            Cycle(0),
        );
        engine.run_until_drained(&mut net, 10_000).unwrap();
        assert_eq!(net.stats().delivered, 1);
    }
}
