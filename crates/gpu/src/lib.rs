//! Data-parallel execution engine for the cycle-level NoC.
//!
//! The paper offloads its cycle-level network simulator to a GPU coprocessor:
//! router state lives in device memory and every simulated cycle is a pair of
//! bulk-synchronous data-parallel kernel launches. This crate reproduces that
//! execution structure on host threads (see DESIGN.md for the substitution
//! argument): a persistent worker pool executes the *compute* phase of all
//! live routers in parallel (reads of the shared wire state are immutable),
//! hits a barrier, executes the *send* phase on disjoint per-router wire
//! chunks, and proceeds straight into the next cycle of the batch — exactly a
//! multi-cycle kernel-launch/sync cadence.
//!
//! Because the phase contract of [`ra_noc::Router`] guarantees that compute
//! only writes router-local state and send only writes router-owned wires,
//! the parallel schedule produces **bit-identical results** to the serial
//! engine (tested here and in the workspace integration tests).
//!
//! # Batched cycles and fused barriers
//!
//! Driving one cycle costs three full-pool rendezvous (start, compute→send,
//! end). The engine therefore executes up to [`MAX_BATCH_CYCLES`] cycles per
//! job: the coordinator crosses only the start and end barriers of a batch,
//! and between cycles the workers synchronize among themselves on cheaper
//! worker-only barriers — the end-of-cycle and start-of-next-cycle
//! rendezvous fuse into one. Injections coming due inside a batch are handed
//! out up front ([`ra_noc::ReleasedInjection`]) and applied by the owning
//! worker at the right cycle, and delivery events are cycle-stamped and
//! merged afterwards in exactly the serial order
//! ([`NocNetwork::finish_batch`]).
//!
//! # Clock gating and load balancing
//!
//! Workers consume the same liveness predicate as the serial engine
//! ([`EngineParts::router_live`]) rather than blindly sweeping their range,
//! so a mostly-idle mesh costs a liveness check per router instead of a full
//! pipeline step. Because live routers may cluster (one busy corner of the
//! mesh), the coordinator re-partitions the contiguous router ranges at
//! every batch boundary, weighting live routers heavier than idle ones.
//!
//! # Example
//!
//! ```
//! use ra_gpu::ParallelEngine;
//! use ra_noc::{NocConfig, NocNetwork};
//! use ra_sim::{Cycle, MessageClass, NetMessage, Network, NodeId};
//!
//! let mut net = NocNetwork::new(NocConfig::new(4, 4))?;
//! let mut engine = ParallelEngine::new(2);
//! net.inject(
//!     NetMessage::new(0, NodeId(0), NodeId(15), MessageClass::Request, 8),
//!     Cycle(0),
//! );
//! engine.run_cycles(&mut net, 100).expect("no worker faults");
//! assert_eq!(net.stats().delivered, 1);
//! # Ok::<(), ra_sim::ConfigError>(())
//! ```

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Barrier};
use std::thread::JoinHandle;

use parking_lot::RwLock;
use ra_obs::{Event, ObsSink};
use ra_noc::{
    EngineParts, Flit, NocNetwork, ReleasedInjection, Router, TopologyMap, Wire, Wires,
    MAX_BATCH_CYCLES,
};
use ra_sim::SimError;

/// Relative cost of stepping a live router vs. liveness-checking an idle
/// one, used to balance worker ranges when activity is skewed.
const LIVE_WEIGHT: u64 = 16;

/// A snapshot of the raw pointers a batch's phases operate on.
///
/// Written by the coordinating thread before the start barrier of each
/// batch; read by workers strictly between the start and end barriers, while
/// the coordinator is blocked — that barrier discipline is what makes the
/// aliasing sound.
#[derive(Clone, Copy)]
struct Job {
    routers: *mut Router,
    n_routers: usize,
    topo: *const TopologyMap,
    wires: *const Wires,
    flit_wires: *mut Wire<Flit>,
    credit_wires: *mut Wire<u8>,
    ports: usize,
    /// First cycle of the batch.
    t0: u64,
    /// Cycles in the batch (1..=[`MAX_BATCH_CYCLES`]).
    cycles: u64,
    gating: bool,
    link_latency: u64,
    /// Per-router exclusive wake bounds (atomics: workers race benignly).
    wake: *const AtomicU64,
    wake_flit_dst: *const u32,
    wake_credit_dst: *const u32,
    /// `workers + 1` cumulative range bounds (worker `w` owns
    /// `bounds[w]..bounds[w+1]`).
    bounds: *const u32,
    /// Injections coming due inside the batch, sorted by `(cycle, order)`.
    releases: *const ReleasedInjection,
    n_releases: usize,
}

impl Job {
    const fn empty() -> Self {
        Job {
            routers: std::ptr::null_mut(),
            n_routers: 0,
            topo: std::ptr::null(),
            wires: std::ptr::null(),
            flit_wires: std::ptr::null_mut(),
            credit_wires: std::ptr::null_mut(),
            ports: 0,
            t0: 0,
            cycles: 0,
            gating: false,
            link_latency: 1,
            wake: std::ptr::null(),
            wake_flit_dst: std::ptr::null(),
            wake_credit_dst: std::ptr::null(),
            bounds: std::ptr::null(),
            releases: std::ptr::null(),
            n_releases: 0,
        }
    }
}

// SAFETY: the pointers are only dereferenced by workers between the start
// and end barriers of a batch, while the owning &mut NocNetwork (and the
// engine's bounds/releases buffers) are pinned on the coordinating thread
// inside `run_batch`. Each worker mutates a disjoint router/wire range; the
// shared wake array is only touched through atomics; topo, wires (in
// compute), bounds, and releases are read-only.
unsafe impl Send for Job {}
unsafe impl Sync for Job {}

struct SharedState {
    /// Batch start rendezvous: all workers + the coordinator.
    start: Barrier,
    /// Batch end rendezvous: all workers + the coordinator.
    end: Barrier,
    /// Compute→send rendezvous within a cycle: workers only.
    mid: Barrier,
    /// Send→next-compute rendezvous between batch cycles: workers only.
    /// This is the fusion: the coordinator never joins it, so consecutive
    /// cycles of a batch cost two worker-only barriers instead of a full
    /// end + start pair.
    boundary: Barrier,
    job: RwLock<Job>,
    /// Bit `c` set = some router moved a flit in the batch's `c`-th cycle
    /// (ORed in by workers, consumed by `finish_batch`).
    active_bits: AtomicU64,
    shutdown: AtomicBool,
    /// First panic caught inside a worker phase this batch, as
    /// `(worker index, panic payload)`. Workers always reach their
    /// barriers even after a panic, so the coordinator can harvest the
    /// fault instead of deadlocking on a dead thread.
    fault: RwLock<Option<(usize, String)>>,
}

/// The contiguous router range worker `w` of `n` owns under a uniform
/// split. Routers are spread one-per-worker first, so `workers > routers`
/// gives the surplus workers provably empty ranges (never out-of-bounds
/// ones).
fn range_of(worker: usize, workers: usize, routers: usize) -> std::ops::Range<usize> {
    let workers = workers.max(1);
    let base = routers / workers;
    let extra = routers % workers;
    let lo = worker * base + worker.min(extra);
    let hi = lo + base + usize::from(worker < extra);
    lo..hi
}

/// Fills `bounds` with `workers + 1` cumulative cut points partitioning
/// `0..n_routers` so every worker carries roughly equal *weight*: a live
/// router (one that will actually be stepped this batch) counts
/// [`LIVE_WEIGHT`] times an idle one. With gating off every router is
/// stepped anyway, so the uniform [`range_of`] split is used as-is.
fn compute_bounds(parts: &EngineParts<'_>, workers: usize, bounds: &mut Vec<u32>) {
    let n = parts.routers.len();
    bounds.clear();
    bounds.push(0);
    if !parts.gating {
        for w in 0..workers {
            bounds.push(range_of(w, workers, n).end as u32);
        }
        return;
    }
    let t0 = parts.now;
    let weight = |r: usize| -> u64 {
        let live =
            EngineParts::router_live(true, &parts.routers[r], &parts.wake[r], t0);
        1 + u64::from(live) * (LIVE_WEIGHT - 1)
    };
    let total: u64 = (0..n).map(weight).sum::<u64>().max(1);
    let mut cum = 0u64;
    let mut k = 1u64;
    for r in 0..n {
        cum += weight(r);
        // Cut whenever the cumulative weight crosses the next 1/workers
        // fraction of the total; repeated crossings yield empty ranges.
        while k < workers as u64 && cum * workers as u64 >= k * total {
            bounds.push((r + 1) as u32);
            k += 1;
        }
    }
    while bounds.len() < workers + 1 {
        bounds.push(n as u32);
    }
    bounds[workers] = n as u32;
}

/// A persistent bulk-synchronous worker pool executing NoC cycles.
///
/// Construction spawns the pool; dropping the engine shuts it down. One
/// engine can drive many networks over its lifetime (only one at a time).
pub struct ParallelEngine {
    shared: Arc<SharedState>,
    handles: Vec<JoinHandle<()>>,
    workers: usize,
    /// Range bounds of the current batch (pinned while workers run).
    bounds: Vec<u32>,
    /// Releases of the current batch (pinned while workers run).
    releases: Vec<ReleasedInjection>,
    /// Observability sink; disabled by default. When enabled, each batch
    /// emits one [`Event::EngineBatch`] with its range cuts and the
    /// coordinator's barrier wait (the batch's wall-clock on the pool).
    sink: ObsSink,
}

impl std::fmt::Debug for ParallelEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ParallelEngine")
            .field("workers", &self.workers)
            .finish()
    }
}

impl ParallelEngine {
    /// Spawns a pool of `workers` threads (at least 1).
    pub fn new(workers: usize) -> Self {
        let workers = workers.max(1);
        let shared = Arc::new(SharedState {
            start: Barrier::new(workers + 1),
            end: Barrier::new(workers + 1),
            mid: Barrier::new(workers),
            boundary: Barrier::new(workers),
            job: RwLock::new(Job::empty()),
            active_bits: AtomicU64::new(0),
            shutdown: AtomicBool::new(false),
            fault: RwLock::new(None),
        });
        let handles = (0..workers)
            .map(|w| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("noc-worker-{w}"))
                    .spawn(move || worker_loop(w, &shared))
                    .expect("spawn NoC worker")
            })
            .collect();
        ParallelEngine {
            shared,
            handles,
            workers,
            bounds: Vec::new(),
            releases: Vec::new(),
            sink: ObsSink::disabled(),
        }
    }

    /// Number of worker threads in the pool.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Attaches an observability sink. Per-batch events only; the workers
    /// themselves never touch it.
    pub fn set_sink(&mut self, sink: ObsSink) {
        self.sink = sink;
    }

    /// Executes exactly one cycle of `net` on the pool.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Fault`] if a worker thread panicked while
    /// executing a router phase. The pool itself survives (panics are
    /// caught inside the workers, which still reach every barrier), so the
    /// engine remains usable — but the network that was being stepped must
    /// be considered corrupt and rebuilt by the caller.
    pub fn run_cycle(&mut self, net: &mut NocNetwork) -> Result<(), SimError> {
        self.run_batch(net, 1)
    }

    /// Executes `cycles` consecutive cycles (1..=[`MAX_BATCH_CYCLES`]) as
    /// one batched job.
    fn run_batch(&mut self, net: &mut NocNetwork, cycles: u64) -> Result<(), SimError> {
        debug_assert!((1..=MAX_BATCH_CYCLES).contains(&cycles));
        let t0 = net.next_cycle();
        let mut barrier_wait_ns = 0u64;
        {
            let parts = net.begin_batch(cycles, &mut self.releases);
            compute_bounds(&parts, self.workers, &mut self.bounds);
            let job = Job {
                routers: parts.routers.as_mut_ptr(),
                n_routers: parts.routers.len(),
                topo: parts.topo,
                wires: parts.wires,
                flit_wires: parts.wires.flits.as_mut_ptr(),
                credit_wires: parts.wires.credits.as_mut_ptr(),
                ports: parts.wires.ports() as usize,
                t0: parts.now,
                cycles,
                gating: parts.gating,
                link_latency: parts.link_latency,
                wake: parts.wake.as_ptr(),
                wake_flit_dst: parts.wake_flit_dst.as_ptr(),
                wake_credit_dst: parts.wake_credit_dst.as_ptr(),
                bounds: self.bounds.as_ptr(),
                releases: self.releases.as_ptr(),
                n_releases: self.releases.len(),
            };
            self.shared.active_bits.store(0, Ordering::SeqCst);
            *self.shared.job.write() = job;
            let timer = self.sink.enabled().then(std::time::Instant::now);
            self.shared.start.wait();
            // Workers run all `cycles` cycles back to back while we wait.
            self.shared.end.wait();
            if let Some(t) = timer {
                barrier_wait_ns = t.elapsed().as_nanos() as u64;
            }
        }
        let active_bits = self.shared.active_bits.load(Ordering::SeqCst);
        if let Some((worker, detail)) = self.shared.fault.write().take() {
            return Err(SimError::Fault {
                component: format!("noc-worker-{worker}"),
                detail,
            });
        }
        net.finish_batch(cycles, active_bits);
        let bounds = &self.bounds;
        let releases = self.releases.len() as u64;
        self.sink.emit(|| {
            let ranges = bounds.windows(2).map(|w| u64::from(w[1] - w[0]));
            Event::EngineBatch {
                t0,
                cycles,
                workers: self.workers as u64,
                barrier_wait_ns,
                releases,
                min_range: ranges.clone().min().unwrap_or(0),
                max_range: ranges.max().unwrap_or(0),
            }
        });
        Ok(())
    }

    /// Runs exactly `cycles` consecutive cycles, batching up to
    /// [`MAX_BATCH_CYCLES`] at a time and fast-forwarding provably idle
    /// stretches without touching the pool at all.
    ///
    /// # Errors
    ///
    /// Propagates the first [`SimError::Fault`] from a batch.
    pub fn run_cycles(&mut self, net: &mut NocNetwork, cycles: u64) -> Result<(), SimError> {
        let target = net.next_cycle() + cycles;
        while net.next_cycle() < target {
            if net.fast_forward_idle(target) == 0 {
                let batch = (target - net.next_cycle()).min(MAX_BATCH_CYCLES);
                self.run_batch(net, batch)?;
            }
        }
        Ok(())
    }

    /// Runs until the network drains (every in-flight message delivered).
    ///
    /// Cycles are executed in batches, so up to [`MAX_BATCH_CYCLES`] − 1
    /// trailing idle cycles may be simulated past the last delivery.
    ///
    /// # Errors
    ///
    /// * [`SimError::Timeout`] if `budget` cycles elapse first;
    /// * [`SimError::Fault`] if a worker panicked;
    /// * [`SimError::Invariant`] if a router recorded a violated invariant.
    pub fn run_until_drained(
        &mut self,
        net: &mut NocNetwork,
        budget: u64,
    ) -> Result<(), SimError> {
        use ra_sim::Network;
        let start = net.next_cycle();
        while net.in_flight() > 0 {
            net.check_invariant()?;
            if net.next_cycle() - start > budget {
                return Err(SimError::Timeout {
                    budget,
                    waiting_for: format!("{} in-flight messages", net.in_flight()),
                });
            }
            self.run_batch(net, MAX_BATCH_CYCLES)?;
        }
        net.check_invariant()
    }
}

impl Drop for ParallelEngine {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        // Release the workers from the start barrier so they can observe
        // the shutdown flag and exit.
        self.shared.start.wait();
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

/// Renders a caught panic payload into a displayable string.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Compute phase of one batch cycle over `lo..hi`: apply the injections
/// coming due, step every live router, and OR the cycle's activity bit.
///
/// # Safety
///
/// Must run between the batch's start and end barriers, with `lo..hi`
/// disjoint from every other worker's range (see the `Job` safety comment).
unsafe fn compute_cycle(
    job: &Job,
    shared: &SharedState,
    lo: usize,
    hi: usize,
    c: u64,
    rel_idx: &mut usize,
) {
    while *rel_idx < job.n_releases {
        let rel = &*job.releases.add(*rel_idx);
        if rel.cycle > c {
            break;
        }
        let r = rel.router as usize;
        if r >= lo && r < hi {
            (*job.routers.add(r)).apply_release(rel);
        }
        *rel_idx += 1;
    }
    let topo = &*job.topo;
    let wires = &*job.wires;
    let wake = std::slice::from_raw_parts(job.wake, job.n_routers);
    let mut any = false;
    for (r, wake_r) in wake.iter().enumerate().take(hi).skip(lo) {
        let router = &mut *job.routers.add(r);
        if EngineParts::router_live(job.gating, router, wake_r, c) {
            router.phase_compute(topo, wires, c);
            any |= router.was_active();
        }
    }
    if any {
        shared
            .active_bits
            .fetch_or(1 << (c - job.t0), Ordering::Relaxed);
    }
}

/// Send phase of one batch cycle over `lo..hi`: publish staged output on
/// the routers' own wire chunks and propagate wake bounds.
///
/// # Safety
///
/// Same contract as [`compute_cycle`]; additionally each router writes only
/// its own `ports`-sized wire chunk, disjoint because ranges are disjoint.
unsafe fn send_cycle(job: &Job, lo: usize, hi: usize, c: u64) {
    let wake = std::slice::from_raw_parts(job.wake, job.n_routers);
    let wake_flit_dst =
        std::slice::from_raw_parts(job.wake_flit_dst, job.n_routers * job.ports);
    let wake_credit_dst =
        std::slice::from_raw_parts(job.wake_credit_dst, job.n_routers * job.ports);
    let until = c + job.link_latency + 1; // exclusive wake bound
    for r in lo..hi {
        let router = &mut *job.routers.add(r);
        // Staging is produced by this cycle's compute, so a router with
        // nothing staged was either skipped or idle: no wire writes, no
        // wakes.
        if !router.has_staged() {
            continue;
        }
        let fw = std::slice::from_raw_parts_mut(job.flit_wires.add(r * job.ports), job.ports);
        let cw = std::slice::from_raw_parts_mut(job.credit_wires.add(r * job.ports), job.ports);
        router.phase_send(fw, cw, c);
        EngineParts::propagate_wakes(
            wake,
            wake_flit_dst,
            wake_credit_dst,
            router,
            r,
            job.ports,
            until,
        );
    }
}

fn worker_loop(worker: usize, shared: &SharedState) {
    loop {
        shared.start.wait();
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        let job = *shared.job.read();
        // SAFETY: `bounds` holds workers + 1 entries and is pinned by the
        // coordinator for the whole batch.
        let (lo, hi) = unsafe {
            (
                *job.bounds.add(worker) as usize,
                *job.bounds.add(worker + 1) as usize,
            )
        };
        let mut rel_idx = 0usize;
        // Panics inside router phases (a model bug, or an injected test
        // fault) must not kill the worker: a dead thread would deadlock the
        // pool at the next barrier. Catch the panic, record the first one
        // in the shared fault slot, skip the remaining cycle bodies, and
        // keep the full barrier cadence intact.
        let mut dead = false;
        for c in job.t0..job.t0 + job.cycles {
            if !dead {
                let result = catch_unwind(AssertUnwindSafe(|| {
                    // SAFETY: between start and end barriers, disjoint range.
                    unsafe { compute_cycle(&job, shared, lo, hi, c, &mut rel_idx) }
                }));
                if let Err(payload) = result {
                    let mut slot = shared.fault.write();
                    if slot.is_none() {
                        *slot = Some((worker, panic_message(payload.as_ref())));
                    }
                    dead = true;
                }
            }
            shared.mid.wait();
            if !dead {
                let result = catch_unwind(AssertUnwindSafe(|| {
                    // SAFETY: between start and end barriers, disjoint range.
                    unsafe { send_cycle(&job, lo, hi, c) }
                }));
                if let Err(payload) = result {
                    let mut slot = shared.fault.write();
                    if slot.is_none() {
                        *slot = Some((worker, panic_message(payload.as_ref())));
                    }
                    dead = true;
                }
            }
            if c + 1 < job.t0 + job.cycles {
                shared.boundary.wait();
            }
        }
        shared.end.wait();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ra_noc::{InjectionProcess, NocConfig, TrafficGen, TrafficPattern};
    use ra_sim::{Cycle, Network};

    #[test]
    fn range_partition_covers_everything_disjointly() {
        for workers in 1..6 {
            for routers in [0usize, 1, 5, 16, 17, 64] {
                let mut covered = vec![false; routers];
                for w in 0..workers {
                    for i in range_of(w, workers, routers) {
                        assert!(!covered[i], "overlap at {i}");
                        covered[i] = true;
                    }
                }
                assert!(covered.iter().all(|&c| c), "gap for {workers}/{routers}");
            }
        }
    }

    #[test]
    fn surplus_workers_get_empty_ranges() {
        // workers ∈ {1, n, > n}: every case must partition exactly, and
        // surplus workers must see provably empty (not out-of-bounds)
        // ranges.
        let n = 5usize;
        let r = range_of(0, 1, n);
        assert_eq!(r, 0..n, "single worker owns everything");
        for w in 0..n {
            assert_eq!(range_of(w, n, n), w..w + 1, "one router per worker");
        }
        let workers = n + 3;
        let mut covered = 0;
        for w in 0..workers {
            let r = range_of(w, workers, n);
            assert!(r.end <= n, "range {r:?} exceeds {n} routers");
            if w < n {
                assert_eq!(r.len(), 1, "worker {w} must own one router");
            } else {
                assert!(r.is_empty(), "surplus worker {w} got {r:?}");
            }
            covered += r.len();
        }
        assert_eq!(covered, n);
    }

    #[test]
    fn balanced_bounds_partition_and_favor_live_routers() {
        use ra_sim::{MessageClass, NetMessage, NodeId};
        let mut net = NocNetwork::new(NocConfig::new(8, 8)).unwrap();
        // Load one corner of the mesh only.
        for i in 0..6 {
            net.inject(
                NetMessage::new(i, NodeId(0), NodeId(9), MessageClass::Request, 64),
                Cycle(0),
            );
        }
        let workers = 4;
        let mut bounds = Vec::new();
        let mut releases = Vec::new();
        let parts = net.begin_batch(1, &mut releases);
        compute_bounds(&parts, workers, &mut bounds);
        let n = parts.routers.len() as u32;
        assert_eq!(bounds.len(), workers + 1);
        assert_eq!(bounds[0], 0);
        assert_eq!(bounds[workers], n);
        assert!(bounds.windows(2).all(|w| w[0] <= w[1]), "{bounds:?}");
        // The busy corner lives in the low router ids, so the first worker
        // must own a smaller slice than a uniform split would give it.
        assert!(
            bounds[1] < n / workers as u32,
            "first range not shrunk: {bounds:?}"
        );
        net.finish_batch(1, 0);
    }

    #[test]
    fn parallel_engine_delivers_traffic() {
        let mut net = NocNetwork::new(NocConfig::new(4, 4)).unwrap();
        let mut engine = ParallelEngine::new(3);
        let mut gen = TrafficGen::new(
            4,
            4,
            TrafficPattern::Uniform,
            InjectionProcess::Bernoulli { rate: 0.05 },
            1,
        );
        for now in 0..2_000u64 {
            gen.inject_cycle(&mut net, Cycle(now));
            engine.run_cycle(&mut net).unwrap();
        }
        engine.run_until_drained(&mut net, 100_000).unwrap();
        assert_eq!(net.stats().injected, gen.injected());
        assert_eq!(net.stats().delivered, gen.injected());
    }

    #[test]
    fn parallel_matches_serial_exactly() {
        fn run(parallel: Option<usize>) -> (u64, f64, f64) {
            let mut net = NocNetwork::new(NocConfig::new(8, 8)).unwrap();
            let mut gen = TrafficGen::new(
                8,
                8,
                TrafficPattern::Transpose,
                InjectionProcess::Bernoulli { rate: 0.08 },
                3,
            );
            let mut engine = parallel.map(ParallelEngine::new);
            for now in 0..3_000u64 {
                gen.inject_cycle(&mut net, Cycle(now));
                match engine.as_mut() {
                    Some(e) => e.run_cycle(&mut net).unwrap(),
                    None => net.tick(Cycle(now)),
                }
            }
            let s = net.stats();
            (s.delivered, s.latency.mean(), s.net_latency.mean())
        }
        let serial = run(None);
        for workers in [1, 2, 4] {
            assert_eq!(run(Some(workers)), serial, "workers = {workers}");
        }
    }

    #[test]
    fn batched_cycles_match_per_cycle_runs() {
        fn run(batched: bool, workers: usize) -> ra_noc::NocStats {
            let mut net = NocNetwork::new(NocConfig::new(8, 8).with_seed(11)).unwrap();
            let mut gen = TrafficGen::new(
                8,
                8,
                TrafficPattern::Uniform,
                InjectionProcess::Bernoulli { rate: 0.04 },
                9,
            );
            let mut engine = ParallelEngine::new(workers);
            // Inject for a stretch, go idle, then run a long tail so
            // batches cover busy, draining, and idle windows alike.
            for now in 0..500u64 {
                gen.inject_cycle(&mut net, Cycle(now));
                engine.run_cycle(&mut net).unwrap();
            }
            if batched {
                engine.run_cycles(&mut net, 2_500).unwrap();
            } else {
                for _ in 0..2_500 {
                    engine.run_cycle(&mut net).unwrap();
                }
            }
            net.stats().clone()
        }
        let reference = run(false, 2);
        for workers in [1, 2, 4] {
            assert_eq!(run(true, workers), reference, "workers = {workers}");
        }
    }

    #[test]
    fn engine_survives_multiple_networks() {
        let mut engine = ParallelEngine::new(2);
        for seed in 0..3 {
            let mut net = NocNetwork::new(NocConfig::new(4, 4).with_seed(seed)).unwrap();
            let mut gen = TrafficGen::new(
                4,
                4,
                TrafficPattern::Uniform,
                InjectionProcess::Bernoulli { rate: 0.03 },
                seed,
            );
            for now in 0..500u64 {
                gen.inject_cycle(&mut net, Cycle(now));
                engine.run_cycle(&mut net).unwrap();
            }
            engine.run_until_drained(&mut net, 50_000).unwrap();
            assert_eq!(net.stats().delivered, gen.injected());
        }
    }

    #[test]
    fn zero_workers_clamps_to_one() {
        let engine = ParallelEngine::new(0);
        assert_eq!(engine.workers(), 1);
    }

    #[test]
    fn drop_joins_cleanly() {
        let engine = ParallelEngine::new(4);
        drop(engine); // must not hang or panic
    }

    #[test]
    fn worker_panic_surfaces_as_fault_and_pool_survives() {
        use ra_sim::{MessageClass, NetMessage, NodeId, SimError};
        let mut engine = ParallelEngine::new(3);

        let mut net = NocNetwork::new(NocConfig::new(4, 4)).unwrap();
        net.inject(
            NetMessage::new(0, NodeId(0), NodeId(15), MessageClass::Request, 8),
            Cycle(0),
        );
        net.debug_router_mut(7).debug_force_panic();
        let err = engine.run_cycle(&mut net).unwrap_err();
        let SimError::Fault { component, detail } = &err else {
            panic!("expected Fault, got {err:?}");
        };
        assert!(component.starts_with("noc-worker-"), "got {component}");
        assert!(detail.contains("router 7"), "got {detail}");

        // The pool must survive the panic: a fresh network runs to
        // completion on the same engine.
        let mut net = NocNetwork::new(NocConfig::new(4, 4)).unwrap();
        net.inject(
            NetMessage::new(0, NodeId(0), NodeId(15), MessageClass::Request, 8),
            Cycle(0),
        );
        engine.run_until_drained(&mut net, 10_000).unwrap();
        assert_eq!(net.stats().delivered, 1);
    }

    #[test]
    fn worker_panic_mid_batch_keeps_pool_alive() {
        use ra_sim::{MessageClass, NetMessage, NodeId, SimError};
        let mut engine = ParallelEngine::new(4);
        let mut net = NocNetwork::new(NocConfig::new(4, 4)).unwrap();
        net.inject(
            NetMessage::new(0, NodeId(0), NodeId(15), MessageClass::Request, 8),
            Cycle(0),
        );
        net.debug_router_mut(3).debug_force_panic();
        // A full 64-cycle batch: the panic hits in cycle 0, the worker must
        // keep the barrier cadence for the remaining 63 cycles.
        let err = engine.run_cycles(&mut net, 64).unwrap_err();
        assert!(matches!(err, SimError::Fault { .. }), "got {err:?}");
        drop(net);

        let mut net = NocNetwork::new(NocConfig::new(4, 4)).unwrap();
        net.inject(
            NetMessage::new(0, NodeId(0), NodeId(15), MessageClass::Request, 8),
            Cycle(0),
        );
        engine.run_until_drained(&mut net, 10_000).unwrap();
        assert_eq!(net.stats().delivered, 1);
    }
}
