//! Experiment driver: runs a full system under a chosen network
//! abstraction and reports the metrics the figures plot.

use std::fmt;
use std::str::FromStr;
use std::sync::atomic::AtomicBool;
use std::sync::Arc;
use std::time::{Duration, Instant};

use ra_fullsys::{FullSysSnapshot, FullSystem, SliceEnd};
use ra_netmodel::{AbstractNetwork, FixedLatency, HopLatency, HopMetric, QueueingLatency};
use ra_noc::{DetailedNoc, TopologyKind};
use ra_obs::{Event, ObsSink, SpanKind};
use ra_sim::{ConfigError, MessageClass, Network, SimError, Summary};
use ra_workloads::{AnyWorkload, AppProfile, WorkSpec};

use crate::probe::{LatencyProbe, ProbeSnapshot};
use crate::reciprocal::{CouplerStats, ReciprocalNetwork};
use crate::target::Target;

/// Which network abstraction a run uses.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ModeSpec {
    /// Constant-latency model (crudest baseline).
    Fixed(u64),
    /// Contention-free hop model — the paper's "abstract network model".
    Hop,
    /// Hop model with an analytic queueing term.
    Queueing,
    /// Reciprocal abstraction: calibrated model + detailed NoC in quanta.
    /// `workers == 0` runs the detailed model serially; `workers > 0` on
    /// the parallel engine.
    Reciprocal {
        /// Calibration quantum in cycles.
        quantum: u64,
        /// Parallel-engine workers (0 = serial).
        workers: usize,
        /// Speculative quantum pipelining: replay quantum N in the
        /// background while the full system runs quantum N+1 against the
        /// predicted calibration, committing or rolling back at the join.
        /// Simulated statistics are bit-identical either way.
        pipeline: bool,
    },
    /// Ground truth: the full system coupled to the cycle-level NoC for
    /// every message.
    Lockstep,
}

impl ModeSpec {
    /// Short label used in report rows.
    pub fn label(&self) -> String {
        match self {
            ModeSpec::Fixed(l) => format!("fixed({l})"),
            ModeSpec::Hop => "abstract-hop".into(),
            ModeSpec::Queueing => "abstract-queueing".into(),
            ModeSpec::Reciprocal { workers, pipeline, .. } => {
                let mut label = if *workers == 0 {
                    "reciprocal".to_string()
                } else {
                    format!("reciprocal-par{workers}")
                };
                if *pipeline {
                    label.push_str("-pipe");
                }
                label
            }
            ModeSpec::Lockstep => "lockstep-truth".into(),
        }
    }
}

/// Canonical textual form, round-trippable through [`FromStr`]:
/// `fixed:12`, `hop`, `queueing`, `reciprocal:quantum=500,workers=4`,
/// `lockstep`. Pipelined reciprocal appends `,pipeline=on`; the flag is
/// omitted when off, so pre-existing canonical texts (and anything hashed
/// from them) are unchanged.
impl fmt::Display for ModeSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModeSpec::Fixed(l) => write!(f, "fixed:{l}"),
            ModeSpec::Hop => f.write_str("hop"),
            ModeSpec::Queueing => f.write_str("queueing"),
            ModeSpec::Reciprocal { quantum, workers, pipeline } => {
                write!(f, "reciprocal:quantum={quantum},workers={workers}")?;
                if *pipeline {
                    f.write_str(",pipeline=on")?;
                }
                Ok(())
            }
            ModeSpec::Lockstep => f.write_str("lockstep"),
        }
    }
}

/// A mode string [`ModeSpec::from_str`] could not parse, with the reason.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseModeError(String);

impl fmt::Display for ParseModeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid mode spec: {}", self.0)
    }
}

impl std::error::Error for ParseModeError {}

/// Parses the `--mode` syntax shared by every experiment binary.
///
/// Accepts the canonical [`Display`](ModeSpec) forms plus bare
/// `reciprocal` (default quantum/workers) and partial key=value lists:
/// `reciprocal:workers=4` keeps the default quantum.
impl FromStr for ModeSpec {
    type Err = ParseModeError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let s = s.trim();
        let (head, rest) = match s.split_once(':') {
            Some((head, rest)) => (head.trim(), Some(rest)),
            None => (s, None),
        };
        match (head, rest) {
            ("hop", None) => Ok(ModeSpec::Hop),
            ("queueing", None) => Ok(ModeSpec::Queueing),
            ("lockstep", None) => Ok(ModeSpec::Lockstep),
            ("fixed", Some(lat)) => lat
                .trim()
                .parse()
                .map(ModeSpec::Fixed)
                .map_err(|_| ParseModeError(format!("fixed latency `{lat}` is not an integer"))),
            ("fixed", None) => Err(ParseModeError(
                "fixed needs a latency, e.g. `fixed:12`".into(),
            )),
            ("reciprocal", rest) => {
                let ModeSpec::Reciprocal {
                    mut quantum,
                    mut workers,
                    mut pipeline,
                } = ModeSpec::default()
                else {
                    unreachable!("default mode is reciprocal");
                };
                for kv in rest
                    .unwrap_or_default()
                    .split(',')
                    .filter(|kv| !kv.trim().is_empty())
                {
                    let (key, value) = kv
                        .split_once('=')
                        .ok_or_else(|| ParseModeError(format!("expected key=value, got `{kv}`")))?;
                    match key.trim() {
                        "quantum" => {
                            quantum = value.trim().parse().map_err(|_| {
                                ParseModeError(format!("quantum `{value}` is not an integer"))
                            })?;
                        }
                        "workers" => {
                            workers = value.trim().parse().map_err(|_| {
                                ParseModeError(format!("workers `{value}` is not an integer"))
                            })?;
                        }
                        "pipeline" => {
                            pipeline = match value.trim() {
                                "on" => true,
                                "off" => false,
                                other => {
                                    return Err(ParseModeError(format!(
                                        "pipeline `{other}` is not on/off"
                                    )))
                                }
                            };
                        }
                        other => {
                            return Err(ParseModeError(format!(
                                "unknown reciprocal key `{other}` \
                                 (expected quantum, workers, or pipeline)"
                            )))
                        }
                    }
                }
                Ok(ModeSpec::Reciprocal { quantum, workers, pipeline })
            }
            (other, _) => Err(ParseModeError(format!(
                "unknown mode `{other}` (expected fixed:<lat>, hop, queueing, \
                 reciprocal[:quantum=<n>,workers=<n>], or lockstep)"
            ))),
        }
    }
}

/// The default mode is the paper's contribution: a serial reciprocal
/// coupler at a 2 000-cycle quantum.
impl Default for ModeSpec {
    fn default() -> Self {
        ModeSpec::Reciprocal {
            quantum: 2_000,
            workers: 0,
            pipeline: false,
        }
    }
}

/// Everything a single run measures.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Workload name.
    pub workload: String,
    /// Mode label.
    pub mode: String,
    /// Target execution time in cycles (full-system view).
    pub cycles: u64,
    /// Wall-clock time of the simulation.
    pub wall: Duration,
    /// Message latency the full system experienced.
    pub latency: Summary,
    /// Per-class experienced latency.
    pub class_latency: Vec<Summary>,
    /// Network messages the run generated.
    pub messages: u64,
    /// Whole-machine IPC.
    pub ipc: f64,
    /// Calibration updates (reciprocal modes only).
    pub calibrations: u64,
    /// The coupler's full exchange statistics (reciprocal modes only):
    /// drift, time decomposition, degradation and trip history.
    pub coupler: Option<CouplerStats>,
}

impl RunResult {
    /// Mean experienced latency in cycles.
    pub fn avg_latency(&self) -> f64 {
        self.latency.mean()
    }
}

/// Relative error of `value` against `truth`, in percent.
pub fn percent_error(value: f64, truth: f64) -> f64 {
    if truth == 0.0 {
        return 0.0;
    }
    ((value - truth) / truth).abs() * 100.0
}

/// A single simulation run, declaratively configured.
///
/// A builder: name the target and workload, override only what differs
/// from the defaults, and `run()`.
///
/// ```
/// use ra_cosim::{ModeSpec, RunSpec, Target};
/// use ra_workloads::AppProfile;
///
/// let target = Target::cmp(4, 4);
/// let app = AppProfile::water();
/// let result = RunSpec::new(&target, &app)
///     .mode(ModeSpec::Hop)
///     .instructions(300)
///     .budget(500_000)
///     .seed(1)
///     .run()?;
/// assert!(result.cycles > 0);
/// # Ok::<(), ra_sim::SimError>(())
/// ```
///
/// Defaults: the [`ModeSpec::default`] reciprocal coupler, 1 000
/// instructions per core, a 10 M-cycle budget, seed 42, and no recorder.
#[non_exhaustive]
#[derive(Debug)]
#[must_use = "a RunSpec does nothing until .run()"]
pub struct RunSpec<'a> {
    target: &'a Target,
    work: WorkSpec,
    mode: ModeSpec,
    instructions: u64,
    budget: u64,
    seed: u64,
    sink: ObsSink,
    cancel: Option<Arc<AtomicBool>>,
    calibrated_only: bool,
}

impl<'a> RunSpec<'a> {
    /// Starts a run specification over `target` executing `app`.
    pub fn new(target: &'a Target, app: &'a AppProfile) -> Self {
        Self::for_work(target, WorkSpec::Profile(app.clone()))
    }

    /// Starts a run specification over `target` executing any workload the
    /// vocabulary can name: a profile, a DNN pipeline, or a streamed trace.
    pub fn for_work(target: &'a Target, work: WorkSpec) -> Self {
        RunSpec {
            target,
            work,
            mode: ModeSpec::default(),
            instructions: 1_000,
            budget: 10_000_000,
            seed: 42,
            sink: ObsSink::disabled(),
            cancel: None,
            calibrated_only: false,
        }
    }

    /// Instantiates this spec's workload for the target: DNN pipelines get
    /// one stage per island on chiplet targets, and trace specs stream from
    /// disk (surfacing a missing/malformed file as a config error).
    fn build_workload(&self) -> Result<AnyWorkload, SimError> {
        let islands = self.target.fullsys.islands;
        let stages = if islands > 1 { islands } else { 0 };
        self.work
            .build(self.target.cores(), stages, self.seed)
            .map_err(|e| SimError::Config(ConfigError::new(e.to_string())))
    }

    /// Selects the network abstraction (default: reciprocal).
    pub fn mode(mut self, mode: ModeSpec) -> Self {
        self.mode = mode;
        self
    }

    /// Instructions every core must retire (default 1 000).
    pub fn instructions(mut self, instructions: u64) -> Self {
        self.instructions = instructions;
        self
    }

    /// Cycle budget before the run times out (default 10 000 000).
    pub fn budget(mut self, budget: u64) -> Self {
        self.budget = budget;
        self
    }

    /// Workload RNG seed (default 42).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Attaches an observability sink; its recorder receives the whole
    /// stack's events (coupler, NoC windows, engine batches, profiling
    /// spans). Default: disabled — zero recording overhead.
    pub fn recorder(mut self, sink: ObsSink) -> Self {
        self.sink = sink;
        self
    }

    /// Serves reciprocal modes from the calibrated model alone: the
    /// coupler is built with its detailed NoC pre-abandoned (see
    /// [`ReciprocalNetwork::serving_only`]), so the run costs about as
    /// much as an abstract-model run while keeping the reciprocal mode's
    /// calibrated fit. Non-reciprocal modes are unaffected. Speculative
    /// pipelining is disabled for such runs — there is no detailed replay
    /// to speculate against. Deterministic per spec: a given spec always
    /// produces the same calibrated-only result, regardless of why the
    /// caller degraded it. Default: off (full co-simulation).
    pub fn calibrated_only(mut self, on: bool) -> Self {
        self.calibrated_only = on;
        self
    }

    /// Arms a cooperative cancellation flag: another thread setting it
    /// makes the run return [`SimError::Cancelled`] at the next poll
    /// boundary of the full system's run-loop watchdog. The job service
    /// uses this to cancel in-flight simulations without tearing down
    /// worker threads. Default: not cancellable.
    pub fn cancel_flag(mut self, cancel: Arc<AtomicBool>) -> Self {
        self.cancel = Some(cancel);
        self
    }

    /// Executes the run.
    ///
    /// # Errors
    ///
    /// Propagates configuration errors and the full system's
    /// timeout/deadlock watchdogs.
    pub fn run(self) -> Result<RunResult, SimError> {
        let result = match self.mode {
            ModeSpec::Reciprocal {
                quantum,
                workers,
                pipeline,
            } => self.run_reciprocal(quantum, workers, pipeline),
            mode => self.run_boxed(mode),
        }?;
        Ok(result)
    }

    /// The reciprocal path keeps the concrete coupler type, so the real
    /// [`CouplerStats`] come back in [`RunResult::coupler`] — and so the
    /// pipelined schedule can drive the checkpoint/rollback loop.
    fn run_reciprocal(
        self,
        quantum: u64,
        workers: usize,
        pipeline: bool,
    ) -> Result<RunResult, SimError> {
        // A calibrated-only run has no detailed replay to speculate
        // against; execute serially but keep the spec's own mode label so
        // the job's identity is unchanged (the fidelity tag carries the
        // degradation).
        let effective_pipeline = pipeline && !self.calibrated_only;
        let mut coupler = ReciprocalNetwork::new(self.target.noc.clone(), quantum, workers)
            .map_err(SimError::Config)?
            .with_sink(self.sink.clone())
            .with_pipeline(effective_pipeline);
        if self.calibrated_only {
            coupler = coupler.serving_only();
        }
        let net = LatencyProbe::new(coupler);
        let workload = self.build_workload()?;
        let mut sys = FullSystem::new(self.target.fullsys.clone(), net, workload)
            .map_err(SimError::Config)?;
        if let Some(cancel) = &self.cancel {
            sys.set_halt_flag(cancel.clone());
        }
        let start = Instant::now();
        let run = if effective_pipeline {
            run_pipelined(&mut sys, self.instructions, self.budget)
        } else {
            sys.run_until_instructions(self.instructions, self.budget)
        };
        let cycles = run?;
        let wall = start.elapsed();
        let stats = sys.stats();
        let probe = sys.network();
        let latency = *probe.latency();
        let class_latency = MessageClass::ALL
            .iter()
            .map(|c| *probe.class_latency(*c))
            .collect();
        let mut coupler_stats = probe.inner().stats().clone();
        coupler_stats.noc = Some(probe.inner().detailed().stats());
        // The remainder of the wall-clock is the full system plus the fast
        // path — T2's third component.
        self.sink.emit(|| Event::Span {
            kind: SpanKind::FullsysStep,
            nanos: wall
                .saturating_sub(coupler_stats.detailed_wall)
                .saturating_sub(coupler_stats.calibrate_wall)
                .as_nanos() as u64,
        });
        let _ = self.sink.flush();
        let mode = ModeSpec::Reciprocal {
            quantum,
            workers,
            pipeline,
        };
        Ok(RunResult {
            workload: self.work.name().to_owned(),
            mode: mode.label(),
            cycles,
            wall,
            latency,
            class_latency,
            messages: stats.total_messages(),
            ipc: stats.ipc(),
            calibrations: coupler_stats.calibrations,
            coupler: Some(coupler_stats),
        })
    }

    /// Every non-reciprocal mode runs behind `Box<dyn Network>`.
    fn run_boxed(self, mode: ModeSpec) -> Result<RunResult, SimError> {
        let net = LatencyProbe::new(build_network(mode, self.target, &self.sink)?);
        let workload = self.build_workload()?;
        let mut sys = FullSystem::new(self.target.fullsys.clone(), net, workload)
            .map_err(SimError::Config)?;
        if let Some(cancel) = &self.cancel {
            sys.set_halt_flag(cancel.clone());
        }
        let start = Instant::now();
        let cycles = sys.run_until_instructions(self.instructions, self.budget)?;
        let wall = start.elapsed();
        let stats = sys.stats();
        let probe = sys.network();
        let latency = *probe.latency();
        let class_latency = MessageClass::ALL
            .iter()
            .map(|c| *probe.class_latency(*c))
            .collect();
        self.sink.emit(|| Event::Span {
            kind: SpanKind::FullsysStep,
            nanos: wall.as_nanos() as u64,
        });
        let _ = self.sink.flush();
        Ok(RunResult {
            workload: self.work.name().to_owned(),
            mode: mode.label(),
            cycles,
            wall,
            latency,
            class_latency,
            messages: stats.total_messages(),
            ipc: stats.ipc(),
            calibrations: 0,
            coupler: None,
        })
    }
}

/// The simulation state a pipelined run checkpoints at every healthy
/// quantum boundary and rewinds on rollback: the full system (tiles,
/// caches, protocol state, workload RNG cursors, stats), the latency
/// probe's measurements, and the run-loop watchdog bookkeeping. The
/// coupler rewinds its own fast path internally.
type Checkpoint = (
    FullSysSnapshot<AnyWorkload>,
    ProbeSnapshot,
    ra_fullsys::RunProgress,
);

/// The pipelined run loop: run to each quantum boundary in slices,
/// checkpoint at healthy pauses, and rewind + re-run the window when the
/// coupler's join reports that the speculation diverged. The simulated
/// timeline that survives commits is bit-identical to a serial run's.
fn run_pipelined(
    sys: &mut FullSystem<LatencyProbe<ReciprocalNetwork>, AnyWorkload>,
    per_core: u64,
    budget: u64,
) -> Result<u64, SimError> {
    let mut progress = sys.begin_run();
    let mut checkpoint: Option<Checkpoint> = None;
    loop {
        let until = sys.network().inner().next_boundary() + 1;
        match sys.run_slice(per_core, budget, until, &mut progress) {
            Ok(SliceEnd::Paused) => {
                if sys.network().inner().has_rollback() {
                    restore(sys, &checkpoint, &mut progress);
                } else {
                    checkpoint = Some((sys.snapshot(), sys.network().snapshot(), progress));
                }
            }
            Ok(SliceEnd::Done(cycles)) => {
                // Join any replay still in flight; the final partial
                // window must also verify before the result is trusted.
                let now = sys.now();
                if sys.network_mut().inner_mut().finalize(now) {
                    return Ok(cycles);
                }
                restore(sys, &checkpoint, &mut progress);
            }
            Err(err) => {
                // The error is only real if the speculative state it arose
                // in survives the join; otherwise rewind and re-run.
                let now = sys.now();
                if sys.network_mut().inner_mut().finalize(now) {
                    return Err(err);
                }
                restore(sys, &checkpoint, &mut progress);
            }
        }
    }
}

/// Rewinds a pipelined run to its last healthy-boundary checkpoint after
/// the coupler decided a rollback.
fn restore(
    sys: &mut FullSystem<LatencyProbe<ReciprocalNetwork>, AnyWorkload>,
    checkpoint: &Option<Checkpoint>,
    progress: &mut ra_fullsys::RunProgress,
) {
    let boundary = sys
        .network_mut()
        .inner_mut()
        .take_rollback()
        .expect("restore without a decided rollback");
    let (snap, probe, saved) = checkpoint
        .as_ref()
        .expect("a rollback cannot precede the first boundary checkpoint");
    debug_assert_eq!(
        snap.at_cycle(),
        boundary + 1,
        "checkpoint must sit one step past the rolled-back boundary"
    );
    sys.restore(snap);
    sys.network_mut().restore(probe);
    *progress = *saved;
}

/// Builds the network for a mode over a target. Lockstep mode attaches
/// `sink` to the cycle-level NoC (the other abstract models emit nothing).
fn build_network(
    mode: ModeSpec,
    target: &Target,
    sink: &ObsSink,
) -> Result<Box<dyn Network>, SimError> {
    let shape = target.noc.shape;
    let metric = if let Some(spec) = &target.noc.chiplet {
        HopMetric::Chiplet {
            islands: spec.islands,
            island: shape,
        }
    } else {
        match target.noc.topology {
            TopologyKind::Mesh => HopMetric::Mesh(shape),
            TopologyKind::Torus => HopMetric::Torus(shape),
            TopologyKind::CMesh { concentration } => HopMetric::CMesh {
                shape,
                concentration,
            },
        }
    };
    let flit_bytes = target.noc.flit_bytes;
    Ok(match mode {
        ModeSpec::Fixed(l) => Box::new(AbstractNetwork::new(FixedLatency::new(l), metric, flit_bytes)),
        ModeSpec::Hop => Box::new(AbstractNetwork::new(HopLatency::default(), metric, flit_bytes)),
        ModeSpec::Queueing => Box::new(AbstractNetwork::new(
            QueueingLatency::default(),
            metric,
            flit_bytes,
        )),
        // The boxed path cannot drive the checkpoint/rollback loop, so the
        // pipeline flag is ignored here; `RunSpec::run` routes reciprocal
        // modes through the concrete-typed path instead.
        ModeSpec::Reciprocal { quantum, workers, pipeline: _ } => Box::new(
            ReciprocalNetwork::new(target.noc.clone(), quantum, workers)?
                .with_sink(sink.clone()),
        ),
        ModeSpec::Lockstep => {
            let mut net = DetailedNoc::new(target.noc.clone())?;
            net.set_sink(sink.clone());
            Box::new(net)
        }
    })
}

/// Formats a row of the standard report table.
pub fn format_row(r: &RunResult) -> String {
    format!(
        "{:<14} {:<18} {:>10} cyc  {:>8.2} avg-lat  {:>9} msgs  ipc {:>5.2}  {:>8.1?}",
        r.workload,
        r.mode,
        r.cycles,
        r.avg_latency(),
        r.messages,
        r.ipc,
        r.wall,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_target() -> Target {
        Target::cmp(4, 4)
    }

    #[test]
    fn percent_error_basics() {
        assert!((percent_error(110.0, 100.0) - 10.0).abs() < 1e-9);
        assert!((percent_error(90.0, 100.0) - 10.0).abs() < 1e-9);
        assert_eq!(percent_error(5.0, 0.0), 0.0);
    }

    #[test]
    fn mode_labels_are_distinct() {
        let labels: std::collections::HashSet<_> = [
            ModeSpec::Fixed(10),
            ModeSpec::Hop,
            ModeSpec::Queueing,
            ModeSpec::Reciprocal { quantum: 100, workers: 0, pipeline: false },
            ModeSpec::Reciprocal { quantum: 100, workers: 0, pipeline: true },
            ModeSpec::Reciprocal { quantum: 100, workers: 2, pipeline: false },
            ModeSpec::Reciprocal { quantum: 100, workers: 2, pipeline: true },
            ModeSpec::Lockstep,
        ]
        .iter()
        .map(ModeSpec::label)
        .collect();
        assert_eq!(labels.len(), 8);
    }

    #[test]
    fn mode_display_round_trips_through_from_str() {
        for mode in [
            ModeSpec::Fixed(12),
            ModeSpec::Hop,
            ModeSpec::Queueing,
            ModeSpec::Reciprocal { quantum: 500, workers: 4, pipeline: false },
            ModeSpec::Reciprocal { quantum: 2_000, workers: 0, pipeline: false },
            ModeSpec::Reciprocal { quantum: 2_000, workers: 0, pipeline: true },
            ModeSpec::Lockstep,
        ] {
            let text = mode.to_string();
            let parsed: ModeSpec = text.parse().unwrap_or_else(|e| panic!("{text}: {e}"));
            assert_eq!(parsed, mode, "{text} must round-trip");
        }
    }

    #[test]
    fn mode_display_omits_pipeline_when_off() {
        // Wire compatibility: canonical texts from before the pipeline
        // flag existed (and anything hashed from them) must not change.
        let off = ModeSpec::Reciprocal { quantum: 500, workers: 4, pipeline: false };
        assert_eq!(off.to_string(), "reciprocal:quantum=500,workers=4");
        let on = ModeSpec::Reciprocal { quantum: 500, workers: 4, pipeline: true };
        assert_eq!(on.to_string(), "reciprocal:quantum=500,workers=4,pipeline=on");
    }

    #[test]
    fn mode_from_str_accepts_shorthand() {
        assert_eq!("reciprocal".parse::<ModeSpec>().unwrap(), ModeSpec::default());
        assert_eq!(
            "reciprocal:workers=4".parse::<ModeSpec>().unwrap(),
            ModeSpec::Reciprocal { quantum: 2_000, workers: 4, pipeline: false }
        );
        assert_eq!(
            "reciprocal:quantum=500".parse::<ModeSpec>().unwrap(),
            ModeSpec::Reciprocal { quantum: 500, workers: 0, pipeline: false }
        );
        assert_eq!(
            "reciprocal:pipeline=on".parse::<ModeSpec>().unwrap(),
            ModeSpec::Reciprocal { quantum: 2_000, workers: 0, pipeline: true }
        );
        assert_eq!(
            "reciprocal:quantum=500,pipeline=off".parse::<ModeSpec>().unwrap(),
            ModeSpec::Reciprocal { quantum: 500, workers: 0, pipeline: false }
        );
        assert_eq!(" hop ".parse::<ModeSpec>().unwrap(), ModeSpec::Hop);
        assert_eq!("fixed: 9".parse::<ModeSpec>().unwrap(), ModeSpec::Fixed(9));
    }

    #[test]
    fn mode_from_str_rejects_garbage() {
        for bad in [
            "",
            "warp",
            "fixed",
            "fixed:lots",
            "reciprocal:quantum",
            "reciprocal:pace=3",
            "reciprocal:pipeline=sideways",
            "hop:1",
        ] {
            assert!(bad.parse::<ModeSpec>().is_err(), "`{bad}` must not parse");
        }
    }

    #[test]
    fn all_modes_complete_a_small_run() {
        let target = small_target();
        let app = AppProfile::water();
        for mode in [
            ModeSpec::Fixed(12),
            ModeSpec::Hop,
            ModeSpec::Queueing,
            ModeSpec::Reciprocal { quantum: 200, workers: 0, pipeline: false },
            ModeSpec::Reciprocal { quantum: 200, workers: 0, pipeline: true },
            ModeSpec::Lockstep,
        ] {
            let r = RunSpec::new(&target, &app)
                .mode(mode)
                .instructions(300)
                .budget(500_000)
                .seed(1)
                .run()
                .unwrap_or_else(|e| panic!("{}: {e}", mode.label()));
            assert!(r.cycles > 0, "{}", mode.label());
            assert!(r.latency.count() > 0, "{}", mode.label());
            assert!(r.ipc > 0.0, "{}", mode.label());
            assert_eq!(
                r.coupler.is_some(),
                matches!(mode, ModeSpec::Reciprocal { .. }),
                "{}: coupler stats come back iff the mode is reciprocal",
                mode.label()
            );
        }
    }

    #[test]
    fn reciprocal_run_returns_real_coupler_stats() {
        let target = small_target();
        let app = AppProfile::water();
        let r = RunSpec::new(&target, &app)
            .mode(ModeSpec::Reciprocal { quantum: 200, workers: 0, pipeline: false })
            .instructions(300)
            .budget(500_000)
            .seed(1)
            .run()
            .unwrap();
        let coupler = r.coupler.expect("reciprocal run carries coupler stats");
        assert_eq!(coupler.calibrations, r.calibrations);
        assert!(coupler.calibrations > 0);
        assert!(coupler.measured > 0);
    }

    #[test]
    fn pipelined_run_is_bit_identical_to_serial() {
        let target = small_target();
        for app in [AppProfile::water(), AppProfile::ocean()] {
            for seed in [1u64, 7, 42] {
                let run = |pipeline: bool| {
                    RunSpec::new(&target, &app)
                        .mode(ModeSpec::Reciprocal { quantum: 300, workers: 0, pipeline })
                        .instructions(400)
                        .budget(2_000_000)
                        .seed(seed)
                        .run()
                        .unwrap()
                };
                let serial = run(false);
                let piped = run(true);
                let label = format!("{} seed {seed}", app.name);
                assert_eq!(serial.cycles, piped.cycles, "{label}: cycles");
                assert_eq!(serial.messages, piped.messages, "{label}: messages");
                assert_eq!(serial.ipc.to_bits(), piped.ipc.to_bits(), "{label}: ipc");
                assert_eq!(
                    serial.latency.mean().to_bits(),
                    piped.latency.mean().to_bits(),
                    "{label}: avg latency"
                );
                for (s, p) in serial.class_latency.iter().zip(&piped.class_latency) {
                    assert_eq!(s.count(), p.count(), "{label}: class count");
                    assert_eq!(s.mean().to_bits(), p.mean().to_bits(), "{label}: class mean");
                }
                let sc = serial.coupler.unwrap();
                let pc = piped.coupler.unwrap();
                assert_eq!(sc.calibrations, pc.calibrations, "{label}: calibrations");
                assert_eq!(sc.measured, pc.measured, "{label}: measured");
                assert_eq!(
                    sc.drift.mean().to_bits(),
                    pc.drift.mean().to_bits(),
                    "{label}: drift"
                );
                assert_eq!(sc.spec_commits, 0, "{label}: serial never speculates");
                assert!(
                    pc.spec_commits + pc.spec_rollbacks > 0,
                    "{label}: pipelined run decided no speculation"
                );
            }
        }
    }

    #[test]
    fn pipelined_rollbacks_converge_to_serial() {
        // The first calibration always moves the model off its cold-start
        // fit, so an early speculative window diverges and rolls back; the
        // surviving timeline must still equal serial bit-for-bit.
        let target = small_target();
        let app = AppProfile::ocean();
        let run = |pipeline: bool| {
            RunSpec::new(&target, &app)
                .mode(ModeSpec::Reciprocal { quantum: 400, workers: 0, pipeline })
                .instructions(500)
                .budget(2_000_000)
                .seed(9)
                .run()
                .unwrap()
        };
        let serial = run(false);
        let piped = run(true);
        let pc = piped.coupler.as_ref().unwrap();
        assert!(pc.spec_rollbacks > 0, "loaded run must roll back at least once: {pc:?}");
        assert!(pc.spec_wasted_cycles > 0);
        assert_eq!(
            pc.spec_commits + pc.spec_rollbacks,
            pc.calibrations,
            "every calibrated window is decided exactly once"
        );
        assert_eq!(serial.cycles, piped.cycles);
        assert_eq!(serial.messages, piped.messages);
        assert_eq!(
            serial.latency.mean().to_bits(),
            piped.latency.mean().to_bits()
        );
    }

    #[test]
    fn calibrated_only_serves_from_the_fit_and_stays_deterministic() {
        let target = small_target();
        let app = AppProfile::ocean();
        let run = || {
            RunSpec::new(&target, &app)
                .mode(ModeSpec::Reciprocal { quantum: 300, workers: 0, pipeline: true })
                .instructions(300)
                .budget(2_000_000)
                .seed(5)
                .calibrated_only(true)
                .run()
                .unwrap()
        };
        let a = run();
        let b = run();
        assert_eq!(a.cycles, b.cycles, "calibrated tier must be deterministic");
        assert_eq!(a.messages, b.messages);
        assert_eq!(a.latency.mean().to_bits(), b.latency.mean().to_bits());
        let coupler = a.coupler.expect("still a reciprocal-mode run");
        assert!(coupler.detailed_abandoned, "detailed model abandoned from cycle zero");
        assert_eq!(a.calibrations, 0, "no detailed windows means no calibrations");
        assert_eq!(
            coupler.spec_commits + coupler.spec_rollbacks,
            0,
            "pipelining is inert without a detailed replay"
        );
        assert_eq!(a.mode, "reciprocal-pipe", "the spec's own mode label is kept");
        // The full run differs: degradation is a real fidelity change.
        let full = RunSpec::new(&target, &app)
            .mode(ModeSpec::Reciprocal { quantum: 300, workers: 0, pipeline: false })
            .instructions(300)
            .budget(2_000_000)
            .seed(5)
            .run()
            .unwrap();
        assert!(full.calibrations > 0);
    }

    #[test]
    fn cancel_flag_stops_a_run_spec_mid_flight() {
        use std::sync::atomic::Ordering;

        let target = small_target();
        let app = AppProfile::ocean();
        let cancel = Arc::new(AtomicBool::new(false));
        cancel.store(true, Ordering::Relaxed);
        let err = RunSpec::new(&target, &app)
            .mode(ModeSpec::Hop)
            .instructions(1_000_000)
            .budget(1_000_000_000)
            .seed(1)
            .cancel_flag(cancel)
            .run()
            .unwrap_err();
        assert!(
            matches!(err, SimError::Cancelled { .. }),
            "expected Cancelled, got {err:?}"
        );
    }

    #[test]
    fn reciprocal_is_closer_to_truth_than_hop_model() {
        // The headline property (A1) on a small instance: under a loaded
        // workload, the calibrated reciprocal model tracks the cycle-level
        // truth much better than the contention-free hop model.
        let target = small_target();
        let app = AppProfile::ocean();
        let run = |mode: ModeSpec| {
            RunSpec::new(&target, &app)
                .mode(mode)
                .instructions(400)
                .budget(2_000_000)
                .seed(3)
                .run()
                .unwrap()
        };
        let truth = run(ModeSpec::Lockstep);
        let hop = run(ModeSpec::Hop);
        let recip = run(ModeSpec::Reciprocal { quantum: 500, workers: 0, pipeline: false });
        let hop_err = percent_error(hop.avg_latency(), truth.avg_latency());
        let recip_err = percent_error(recip.avg_latency(), truth.avg_latency());
        assert!(
            recip_err < hop_err,
            "reciprocal error {recip_err:.1}% must beat hop error {hop_err:.1}% \
             (truth {:.1}, hop {:.1}, recip {:.1})",
            truth.avg_latency(),
            hop.avg_latency(),
            recip.avg_latency()
        );
    }
}
