//! Experiment driver: runs a full system under a chosen network
//! abstraction and reports the metrics the figures plot.

use std::time::{Duration, Instant};

use ra_fullsys::FullSystem;
use ra_netmodel::{AbstractNetwork, FixedLatency, HopLatency, HopMetric, QueueingLatency};
use ra_noc::{NocNetwork, TopologyKind};
use ra_sim::{MessageClass, Network, SimError, Summary};
use ra_workloads::{AppProfile, AppWorkload};

use crate::probe::LatencyProbe;
use crate::reciprocal::ReciprocalNetwork;
use crate::target::Target;

/// Which network abstraction a run uses.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ModeSpec {
    /// Constant-latency model (crudest baseline).
    Fixed(u64),
    /// Contention-free hop model — the paper's "abstract network model".
    Hop,
    /// Hop model with an analytic queueing term.
    Queueing,
    /// Reciprocal abstraction: calibrated model + detailed NoC in quanta.
    /// `workers == 0` runs the detailed model serially; `workers > 0` on
    /// the parallel engine.
    Reciprocal {
        /// Calibration quantum in cycles.
        quantum: u64,
        /// Parallel-engine workers (0 = serial).
        workers: usize,
    },
    /// Ground truth: the full system coupled to the cycle-level NoC for
    /// every message.
    Lockstep,
}

impl ModeSpec {
    /// Short label used in report rows.
    pub fn label(&self) -> String {
        match self {
            ModeSpec::Fixed(l) => format!("fixed({l})"),
            ModeSpec::Hop => "abstract-hop".into(),
            ModeSpec::Queueing => "abstract-queueing".into(),
            ModeSpec::Reciprocal { workers: 0, .. } => "reciprocal".into(),
            ModeSpec::Reciprocal { workers, .. } => format!("reciprocal-par{workers}"),
            ModeSpec::Lockstep => "lockstep-truth".into(),
        }
    }
}

/// Everything a single run measures.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Workload name.
    pub workload: String,
    /// Mode label.
    pub mode: String,
    /// Target execution time in cycles (full-system view).
    pub cycles: u64,
    /// Wall-clock time of the simulation.
    pub wall: Duration,
    /// Message latency the full system experienced.
    pub latency: Summary,
    /// Per-class experienced latency.
    pub class_latency: Vec<Summary>,
    /// Network messages the run generated.
    pub messages: u64,
    /// Whole-machine IPC.
    pub ipc: f64,
    /// Calibration updates (reciprocal modes only).
    pub calibrations: u64,
}

impl RunResult {
    /// Mean experienced latency in cycles.
    pub fn avg_latency(&self) -> f64 {
        self.latency.mean()
    }
}

/// Relative error of `value` against `truth`, in percent.
pub fn percent_error(value: f64, truth: f64) -> f64 {
    if truth == 0.0 {
        return 0.0;
    }
    ((value - truth) / truth).abs() * 100.0
}

/// A reciprocal run plus the coupler's internals (time decomposition for
/// the coprocessor experiments).
///
/// # Errors
///
/// Same failure modes as [`run_app`].
pub fn run_app_reciprocal(
    target: &Target,
    app: &ra_workloads::AppProfile,
    instructions: u64,
    budget: u64,
    seed: u64,
    quantum: u64,
    workers: usize,
) -> Result<(RunResult, crate::reciprocal::CouplerStats), SimError> {
    let coupler = ReciprocalNetwork::new(target.noc.clone(), quantum, workers)
        .map_err(SimError::Config)?;
    let net = LatencyProbe::new(coupler);
    let workload = AppWorkload::new(app.clone(), target.cores(), seed);
    let mut sys = FullSystem::new(target.fullsys.clone(), net, workload)
        .map_err(SimError::Config)?;
    let start = Instant::now();
    let cycles = sys.run_until_instructions(instructions, budget)?;
    let wall = start.elapsed();
    let stats = sys.stats();
    let probe = sys.network();
    let latency = *probe.latency();
    let class_latency = MessageClass::ALL
        .iter()
        .map(|c| *probe.class_latency(*c))
        .collect();
    let coupler_stats = probe.inner().stats().clone();
    let mode = ModeSpec::Reciprocal { quantum, workers };
    Ok((
        RunResult {
            workload: app.name.clone(),
            mode: mode.label(),
            cycles,
            wall,
            latency,
            class_latency,
            messages: stats.total_messages(),
            ipc: stats.ipc(),
            calibrations: coupler_stats.calibrations,
        },
        coupler_stats,
    ))
}

/// Builds the network for a mode over a target.
fn build_network(mode: ModeSpec, target: &Target) -> Result<Box<dyn Network>, SimError> {
    let shape = target.noc.shape;
    let metric = match target.noc.topology {
        TopologyKind::Mesh => HopMetric::Mesh(shape),
        TopologyKind::Torus => HopMetric::Torus(shape),
        TopologyKind::CMesh { concentration } => HopMetric::CMesh {
            shape,
            concentration,
        },
    };
    let flit_bytes = target.noc.flit_bytes;
    Ok(match mode {
        ModeSpec::Fixed(l) => Box::new(AbstractNetwork::new(FixedLatency::new(l), metric, flit_bytes)),
        ModeSpec::Hop => Box::new(AbstractNetwork::new(HopLatency::default(), metric, flit_bytes)),
        ModeSpec::Queueing => Box::new(AbstractNetwork::new(
            QueueingLatency::default(),
            metric,
            flit_bytes,
        )),
        ModeSpec::Reciprocal { quantum, workers } => {
            Box::new(ReciprocalNetwork::new(target.noc.clone(), quantum, workers)?)
        }
        ModeSpec::Lockstep => Box::new(NocNetwork::new(target.noc.clone())?),
    })
}

/// Runs `app` on `target` under `mode` until every core retires
/// `instructions` instructions.
///
/// # Errors
///
/// Propagates configuration errors and the full system's timeout/deadlock
/// watchdogs (`budget` caps the run length in cycles).
pub fn run_app(
    mode: ModeSpec,
    target: &Target,
    app: &AppProfile,
    instructions: u64,
    budget: u64,
    seed: u64,
) -> Result<RunResult, SimError> {
    let net = LatencyProbe::new(build_network(mode, target)?);
    let workload = AppWorkload::new(app.clone(), target.cores(), seed);
    let mut sys = FullSystem::new(target.fullsys.clone(), net, workload)
        .map_err(SimError::Config)?;
    let start = Instant::now();
    let cycles = sys.run_until_instructions(instructions, budget)?;
    let wall = start.elapsed();
    let stats = sys.stats();
    let probe = sys.network();
    let latency = *probe.latency();
    let class_latency = MessageClass::ALL
        .iter()
        .map(|c| *probe.class_latency(*c))
        .collect();
    let calibrations = 0; // patched below for reciprocal modes
    let mut result = RunResult {
        workload: app.name.clone(),
        mode: mode.label(),
        cycles,
        wall,
        latency,
        class_latency,
        messages: stats.total_messages(),
        ipc: stats.ipc(),
        calibrations,
    };
    // Recover coupler statistics if this was a reciprocal run.
    if let ModeSpec::Reciprocal { .. } = mode {
        // The probe wraps Box<dyn Network>; we cannot downcast through the
        // trait object, so couplers export their calibration count through
        // the run by construction: quantum boundaries per cycle count.
        if let ModeSpec::Reciprocal { quantum, .. } = mode {
            result.calibrations = cycles / quantum.max(1);
        }
    }
    Ok(result)
}

/// Formats a row of the standard report table.
pub fn format_row(r: &RunResult) -> String {
    format!(
        "{:<14} {:<18} {:>10} cyc  {:>8.2} avg-lat  {:>9} msgs  ipc {:>5.2}  {:>8.1?}",
        r.workload,
        r.mode,
        r.cycles,
        r.avg_latency(),
        r.messages,
        r.ipc,
        r.wall,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_target() -> Target {
        Target::cmp(4, 4)
    }

    #[test]
    fn percent_error_basics() {
        assert!((percent_error(110.0, 100.0) - 10.0).abs() < 1e-9);
        assert!((percent_error(90.0, 100.0) - 10.0).abs() < 1e-9);
        assert_eq!(percent_error(5.0, 0.0), 0.0);
    }

    #[test]
    fn mode_labels_are_distinct() {
        let labels: std::collections::HashSet<_> = [
            ModeSpec::Fixed(10),
            ModeSpec::Hop,
            ModeSpec::Queueing,
            ModeSpec::Reciprocal { quantum: 100, workers: 0 },
            ModeSpec::Reciprocal { quantum: 100, workers: 2 },
            ModeSpec::Lockstep,
        ]
        .iter()
        .map(ModeSpec::label)
        .collect();
        assert_eq!(labels.len(), 6);
    }

    #[test]
    fn all_modes_complete_a_small_run() {
        let target = small_target();
        let app = AppProfile::water();
        for mode in [
            ModeSpec::Fixed(12),
            ModeSpec::Hop,
            ModeSpec::Queueing,
            ModeSpec::Reciprocal { quantum: 200, workers: 0 },
            ModeSpec::Lockstep,
        ] {
            let r = run_app(mode, &target, &app, 300, 500_000, 1)
                .unwrap_or_else(|e| panic!("{}: {e}", mode.label()));
            assert!(r.cycles > 0, "{}", mode.label());
            assert!(r.latency.count() > 0, "{}", mode.label());
            assert!(r.ipc > 0.0, "{}", mode.label());
        }
    }

    #[test]
    fn reciprocal_is_closer_to_truth_than_hop_model() {
        // The headline property (A1) on a small instance: under a loaded
        // workload, the calibrated reciprocal model tracks the cycle-level
        // truth much better than the contention-free hop model.
        let target = small_target();
        let app = AppProfile::ocean();
        let truth = run_app(ModeSpec::Lockstep, &target, &app, 400, 2_000_000, 3).unwrap();
        let hop = run_app(ModeSpec::Hop, &target, &app, 400, 2_000_000, 3).unwrap();
        let recip = run_app(
            ModeSpec::Reciprocal { quantum: 500, workers: 0 },
            &target,
            &app,
            400,
            2_000_000,
            3,
        )
        .unwrap();
        let hop_err = percent_error(hop.avg_latency(), truth.avg_latency());
        let recip_err = percent_error(recip.avg_latency(), truth.avg_latency());
        assert!(
            recip_err < hop_err,
            "reciprocal error {recip_err:.1}% must beat hop error {hop_err:.1}% \
             (truth {:.1}, hop {:.1}, recip {:.1})",
            truth.avg_latency(),
            hop.avg_latency(),
            recip.avg_latency()
        );
    }
}
