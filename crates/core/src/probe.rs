//! Latency probe: measures the message latency a full system experiences.

use std::collections::HashMap;

use ra_sim::{Cycle, Delivery, MessageClass, NetMessage, Network, Summary};

/// Transparent [`Network`] wrapper recording the latency of every message
/// as the wrapped network delivers it.
///
/// Every co-simulation mode is run behind a probe, so the "average packet
/// latency" the accuracy figures compare is measured identically regardless
/// of which abstraction produced it.
///
/// # Example
///
/// ```
/// use ra_cosim::LatencyProbe;
/// use ra_netmodel::{AbstractNetwork, FixedLatency, HopMetric};
/// use ra_sim::{Cycle, MessageClass, MeshShape, NetMessage, Network, NodeId};
///
/// let inner = AbstractNetwork::new(
///     FixedLatency::new(9),
///     HopMetric::Mesh(MeshShape::new(4, 4)?),
///     16,
/// );
/// let mut probe = LatencyProbe::new(inner);
/// probe.inject(
///     NetMessage::new(0, NodeId(0), NodeId(5), MessageClass::Request, 8),
///     Cycle(0),
/// );
/// probe.tick(Cycle(50));
/// probe.drain_delivered(Cycle(50));
/// assert_eq!(probe.latency().count(), 1);
/// assert!((probe.latency().mean() - 9.0).abs() < 1e-12);
/// # Ok::<(), ra_sim::ConfigError>(())
/// ```
#[derive(Debug, Clone)]
pub struct LatencyProbe<N> {
    inner: N,
    inject_times: HashMap<u64, u64>,
    latency: Summary,
    per_class: Vec<Summary>,
}

impl<N: Network> LatencyProbe<N> {
    /// Wraps a network.
    pub fn new(inner: N) -> Self {
        LatencyProbe {
            inner,
            inject_times: HashMap::new(),
            latency: Summary::new(),
            per_class: vec![Summary::new(); MessageClass::COUNT],
        }
    }

    /// The wrapped network.
    pub fn inner(&self) -> &N {
        &self.inner
    }

    /// Mutable access to the wrapped network.
    pub fn inner_mut(&mut self) -> &mut N {
        &mut self.inner
    }

    /// Consumes the probe, returning the wrapped network.
    pub fn into_inner(self) -> N {
        self.inner
    }

    /// Observed latency distribution over all delivered messages.
    pub fn latency(&self) -> &Summary {
        &self.latency
    }

    /// Observed latency per message class.
    pub fn class_latency(&self, class: MessageClass) -> &Summary {
        &self.per_class[class.vnet()]
    }

    /// Checkpoints the probe's own measurement state (not the wrapped
    /// network). Part of the speculative-pipelining checkpoint set.
    pub fn snapshot(&self) -> ProbeSnapshot {
        ProbeSnapshot {
            inject_times: self.inject_times.clone(),
            latency: self.latency,
            per_class: self.per_class.clone(),
        }
    }

    /// Rewinds the measurement state to `snap`, leaving the wrapped
    /// network alone (the caller rewinds it separately).
    pub fn restore(&mut self, snap: &ProbeSnapshot) {
        self.inject_times.clone_from(&snap.inject_times);
        self.latency = snap.latency;
        self.per_class.clone_from(&snap.per_class);
    }
}

/// A [`LatencyProbe`] measurement checkpoint (see [`LatencyProbe::snapshot`]).
#[derive(Debug, Clone)]
pub struct ProbeSnapshot {
    inject_times: HashMap<u64, u64>,
    latency: Summary,
    per_class: Vec<Summary>,
}

impl<N: Network> Network for LatencyProbe<N> {
    fn inject(&mut self, msg: NetMessage, now: Cycle) {
        self.inject_times.insert(msg.id, now.0);
        self.inner.inject(msg, now);
    }

    fn tick(&mut self, now: Cycle) {
        self.inner.tick(now);
    }

    fn drain_delivered(&mut self, now: Cycle) -> Vec<Delivery> {
        let delivered = self.inner.drain_delivered(now);
        for d in &delivered {
            if let Some(injected) = self.inject_times.remove(&d.msg.id) {
                let latency = d.at.0.saturating_sub(injected) as f64;
                self.latency.record(latency);
                self.per_class[d.msg.class.vnet()].record(latency);
            }
        }
        delivered
    }

    fn in_flight(&self) -> usize {
        self.inner.in_flight()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ra_netmodel::{AbstractNetwork, HopLatency, HopMetric};
    use ra_sim::{MeshShape, NodeId};

    #[test]
    fn probe_separates_classes() {
        let inner = AbstractNetwork::new(
            HopLatency::default(),
            HopMetric::Mesh(MeshShape::new(4, 4).unwrap()),
            16,
        );
        let mut probe = LatencyProbe::new(inner);
        probe.inject(
            NetMessage::new(0, NodeId(0), NodeId(1), MessageClass::Request, 8),
            Cycle(0),
        );
        probe.inject(
            NetMessage::new(1, NodeId(0), NodeId(15), MessageClass::Response, 72),
            Cycle(0),
        );
        probe.tick(Cycle(100));
        let out = probe.drain_delivered(Cycle(100));
        assert_eq!(out.len(), 2);
        assert_eq!(probe.class_latency(MessageClass::Request).count(), 1);
        assert_eq!(probe.class_latency(MessageClass::Response).count(), 1);
        assert!(
            probe.class_latency(MessageClass::Response).mean()
                > probe.class_latency(MessageClass::Request).mean()
        );
        assert_eq!(probe.class_latency(MessageClass::Coherence).count(), 0);
    }

    #[test]
    fn probe_is_transparent() {
        let inner = AbstractNetwork::new(
            HopLatency::default(),
            HopMetric::Mesh(MeshShape::new(4, 4).unwrap()),
            16,
        );
        let mut probe = LatencyProbe::new(inner);
        probe.inject(
            NetMessage::new(7, NodeId(2), NodeId(3), MessageClass::Request, 8),
            Cycle(5),
        );
        assert_eq!(probe.in_flight(), 1);
        probe.tick(Cycle(50));
        let out = probe.drain_delivered(Cycle(50));
        assert_eq!(out[0].msg.id, 7);
        assert_eq!(probe.in_flight(), 0);
    }
}
