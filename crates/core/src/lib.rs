//! Reciprocal abstraction for computer architecture co-simulation.
//!
//! This crate is the paper's primary contribution: a framework that couples
//! a coarse-grain full-system simulator (`ra-fullsys`) with a cycle-level
//! NoC simulator (`ra-noc`) such that each side sees an *abstraction of the
//! other*:
//!
//! * the detailed NoC receives the full system's **real message stream**
//!   instead of synthetic traffic (fixing the in-vacuum evaluation problem);
//! * the full system consults a **continuously re-calibrated latency
//!   model** ([`ra_netmodel::CalibratedModel`]) instead of paying
//!   cycle-level cost on every message.
//!
//! The coupling lives in [`ReciprocalNetwork`]. The crate also provides the
//! mode ladder the evaluation compares ([`ModeSpec`]): static abstract
//! models, reciprocal abstraction (serial or on the data-parallel engine),
//! and lock-step detailed co-simulation as ground truth — plus the
//! [`driver`] used by every experiment binary and the [`Target`]
//! machine presets.
//!
//! # Quick start
//!
//! ```
//! use ra_cosim::{ModeSpec, RunSpec, Target};
//! use ra_workloads::AppProfile;
//!
//! let target = Target::cmp(4, 4);
//! let app = AppProfile::water();
//! let result = RunSpec::new(&target, &app)
//!     .mode(ModeSpec::Reciprocal { quantum: 500, workers: 0, pipeline: false })
//!     .instructions(200) // per core
//!     .budget(500_000)   // cycle cap
//!     .seed(1)
//!     .run()?;
//! assert!(result.cycles > 0);
//! assert!(result.coupler.expect("reciprocal run").calibrations > 0);
//! # Ok::<(), ra_sim::SimError>(())
//! ```

pub mod driver;
pub mod probe;
pub mod record;
pub mod reciprocal;
pub mod target;

pub use driver::{format_row, percent_error, ModeSpec, ParseModeError, RunResult, RunSpec};
pub use probe::{LatencyProbe, ProbeSnapshot};
pub use record::{replay_into, RecordedMessage, TrafficRecord};
pub use reciprocal::{
    AdaptiveQuantum, CouplerStats, FallbackPolicy, ReciprocalNetwork, SpecState, TripRecord,
    TRIP_HISTORY,
};
pub use target::{Target, STANDARD_CORE_COUNTS};

// Chiplet vocabulary, re-exported so layers above the driver (the job
// service, bench bins) can name interposer classes without depending on
// the NoC crate directly.
pub use ra_noc::{ChipletSpec, InterposerClass};
